"""Accuracy metrics and overhead accounting for estimator comparisons."""

from repro.analysis.metrics import (
    AccuracyReport,
    compare_estimates,
    error_cdf,
    mean_absolute_error,
    quantile_error,
    root_mean_square_error,
)
from repro.analysis.energy import EnergyReport, RadioEnergyModel, energy_report
from repro.analysis.detection import (
    DetectionReport,
    bad_links_from_truth,
    detection_metrics,
)
from repro.analysis.overhead import OverheadSummary, summarize_overhead
from repro.analysis.timeseries import EvaluationPoint, PeriodicEvaluator

__all__ = [
    "EnergyReport",
    "RadioEnergyModel",
    "energy_report",
    "DetectionReport",
    "bad_links_from_truth",
    "detection_metrics",
    "EvaluationPoint",
    "PeriodicEvaluator",
    "AccuracyReport",
    "compare_estimates",
    "error_cdf",
    "mean_absolute_error",
    "quantile_error",
    "root_mean_square_error",
    "OverheadSummary",
    "summarize_overhead",
]
