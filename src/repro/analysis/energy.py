"""Radio-energy accounting (extension).

WSN designers minimize *energy*, not bits; the paper motivates compact
annotations through transmission overhead. This module converts a run's
transmission counts and a method's measurement bits into radio energy
using a CC2420-style first-order model (default constants from its data
sheet ballpark: ~0.23 µJ/bit transmit, ~0.17 µJ/bit receive at 250 kbps),
and expresses each measurement approach's cost as extra energy per
delivered packet and as a fraction of the network's data-plane energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.simulation import SimulationResult
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["RadioEnergyModel", "EnergyReport", "energy_report"]

#: Default frame payload (bits) a data packet carries besides annotations.
DEFAULT_DATA_FRAME_BITS = 28 * 8


@dataclass(frozen=True)
class RadioEnergyModel:
    """First-order per-bit radio energy model."""

    tx_joules_per_bit: float = 0.23e-6
    rx_joules_per_bit: float = 0.17e-6

    def __post_init__(self) -> None:
        check_positive(self.tx_joules_per_bit, "tx_joules_per_bit")
        check_positive(self.rx_joules_per_bit, "rx_joules_per_bit")

    @property
    def joules_per_link_bit(self) -> float:
        """One bit over one link costs a transmit plus a receive."""
        return self.tx_joules_per_bit + self.rx_joules_per_bit


@dataclass(frozen=True)
class EnergyReport:
    """Energy cost breakdown for one measurement approach on one run."""

    #: Data-plane energy: every frame actually transmitted (incl. retries).
    data_joules: float
    #: Annotation bits riding in those frames.
    annotation_joules: float
    #: Control-plane bits (model dissemination / topology snapshots).
    control_joules: float
    delivered_packets: int

    @property
    def measurement_joules(self) -> float:
        return self.annotation_joules + self.control_joules

    @property
    def overhead_fraction(self) -> float:
        """Measurement energy relative to the data plane."""
        if self.data_joules <= 0:
            return 0.0
        return self.measurement_joules / self.data_joules

    @property
    def microjoules_per_delivered_packet(self) -> float:
        if self.delivered_packets == 0:
            return 0.0
        return 1e6 * self.measurement_joules / self.delivered_packets


def energy_report(
    result: SimulationResult,
    *,
    annotation_bits_total: int,
    control_bits_total: int = 0,
    annotation_frames: Optional[int] = None,
    model: Optional[RadioEnergyModel] = None,
    data_frame_bits: int = DEFAULT_DATA_FRAME_BITS,
) -> EnergyReport:
    """Energy breakdown for a measurement approach.

    ``annotation_bits_total`` — sum of annotation payload bits over
    delivered packets (each annotation bit is retransmitted with its
    frame, so it is scaled by the network's realized frames-per-exchange
    ratio). ``control_bits_total`` — dissemination/snapshot bits (already
    network-wide totals; charged one tx+rx each).
    """
    check_non_negative(annotation_bits_total, "annotation_bits_total")
    check_non_negative(control_bits_total, "control_bits_total")
    model = model or RadioEnergyModel()
    total_frames = sum(
        usage.frames_sent for usage in result.ground_truth.link_usage.values()
    )
    total_exchanges = sum(
        usage.exchanges for usage in result.ground_truth.link_usage.values()
    )
    retx_factor = total_frames / total_exchanges if total_exchanges else 1.0
    per_bit = model.joules_per_link_bit
    data_joules = total_frames * data_frame_bits * per_bit
    annotation_joules = annotation_bits_total * retx_factor * per_bit
    control_joules = control_bits_total * per_bit
    return EnergyReport(
        data_joules=data_joules,
        annotation_joules=annotation_joules,
        control_joules=control_joules,
        delivered_packets=result.ground_truth.packets_delivered,
    )
