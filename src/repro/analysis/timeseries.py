"""In-run evaluation time series.

:class:`PeriodicEvaluator` is a simulation observer that, every
``period`` seconds, snapshots the estimates of a set of measurement
approaches and scores them against the ground truth accumulated *so
far* — producing the convergence curves (accuracy vs elapsed time)
within a single run, rather than across runs of different lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.metrics import compare_estimates
from repro.net.simulation import CollectionSimulation, NullObserver
from repro.utils.validation import check_positive

__all__ = ["EvaluationPoint", "PeriodicEvaluator"]

Link = Tuple[int, int]
#: Supplies {link: loss} estimates on demand (e.g. lambda: dophy-derived map).
EstimateSource = Callable[[], Dict[Link, float]]
#: Time-aware variant: receives the evaluation time (sliding windows).
TimedEstimateSource = Callable[[float], Dict[Link, float]]


@dataclass(frozen=True)
class EvaluationPoint:
    """One snapshot of one method's accuracy."""

    time: float
    method: str
    mae: Optional[float]
    p90: Optional[float]
    links_compared: int
    coverage: float


class PeriodicEvaluator(NullObserver):
    """Scores registered estimate sources on a fixed schedule."""

    def __init__(self, period: float, *, truth_kind: str = "empirical",
                 min_support: int = 0) -> None:
        check_positive(period, "period")
        self.period = period
        self.truth_kind = truth_kind
        self.min_support = min_support
        self._sources: Dict[str, EstimateSource] = {}
        self._supports: Dict[str, Optional[Callable[[], Dict[Link, int]]]] = {}
        self._timed_sources: Dict[str, TimedEstimateSource] = {}
        self._timed_supports: Dict[str, Optional[Callable[[float], Dict[Link, int]]]] = {}
        self._simulation: Optional[CollectionSimulation] = None
        self.history: List[EvaluationPoint] = []

    def add_source(
        self,
        name: str,
        source: EstimateSource,
        support: Optional[Callable[[], Dict[Link, int]]] = None,
    ) -> None:
        """Register an estimate provider under ``name``.

        ``support`` optionally provides per-link sample counts for
        ``min_support`` filtering.
        """
        if name in self._sources or name in self._timed_sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = source
        self._supports[name] = support

    def add_timed_source(
        self,
        name: str,
        source: TimedEstimateSource,
        support: Optional[Callable[[float], Dict[Link, int]]] = None,
    ) -> None:
        """Register an estimate provider that depends on the evaluation
        time (a sliding-window estimator's "loss around now")."""
        if name in self._sources or name in self._timed_sources:
            raise ValueError(f"source {name!r} already registered")
        self._timed_sources[name] = source
        self._timed_supports[name] = support

    def add_dophy(self, name: str, dophy) -> None:
        """Convenience: register a :class:`DophySystem`'s live estimates."""
        self.add_source(
            name,
            lambda: {l: e.loss for l, e in dophy.estimator.estimates().items()},
            lambda: {l: dophy.estimator.n_samples(l) for l in dophy.estimator.links()},
        )

    def add_sliding(self, name: str, sliding) -> None:
        """Convenience: register a :class:`SlidingLinkEstimator`'s windowed
        estimates; each tick scores the trailing window ending at that tick
        (one batched solve across links)."""
        self.add_timed_source(
            name,
            lambda now: {l: e.loss for l, e in sliding.estimates(now).items()},
            lambda now: {l: sliding.n_samples(l, now) for l in sliding.links()},
        )

    # -- simulation wiring ------------------------------------------------------

    def attach(self, simulation: CollectionSimulation) -> None:
        self._simulation = simulation
        simulation.sim.every(self.period, self._evaluate)

    def _evaluate(self) -> None:
        sim = self._simulation
        assert sim is not None
        now = sim.sim.now
        truth = sim.ground_truth.true_loss_map(kind=self.truth_kind)
        scored: List[Tuple[str, Dict[Link, float], Optional[Dict[Link, int]]]] = []
        for name, source in self._sources.items():
            support_fn = self._supports[name]
            scored.append((name, source(), support_fn() if support_fn else None))
        for name, timed in self._timed_sources.items():
            timed_support = self._timed_supports[name]
            scored.append((name, timed(now), timed_support(now) if timed_support else None))
        for name, estimates, support in scored:
            report = compare_estimates(
                estimates,
                truth,
                method=name,
                min_support=self.min_support,
                support=support,
            )
            self.history.append(
                EvaluationPoint(
                    time=now,
                    method=name,
                    mae=report.mae,
                    p90=report.p90_error,
                    links_compared=report.n_links_compared,
                    coverage=report.coverage,
                )
            )

    # -- results ------------------------------------------------------------------

    def curve(self, method: str) -> List[Tuple[float, Optional[float]]]:
        """(time, MAE) series for one method."""
        return [(p.time, p.mae) for p in self.history if p.method == method]

    def methods(self) -> List[str]:
        return sorted(list(self._sources) + list(self._timed_sources))

    def final_point(self, method: str) -> Optional[EvaluationPoint]:
        points = [p for p in self.history if p.method == method]
        return points[-1] if points else None
