"""Accuracy metrics: estimated vs ground-truth per-link loss ratios.

Every estimator in this package ultimately produces a mapping
``directed link -> loss ratio``; the simulator's ground truth provides
the reference. :func:`compare_estimates` pairs them up (over the links
both know about) and produces the error statistics the paper's accuracy
figures report: mean/RMS absolute error, error percentiles, the full
error CDF, and coverage (how much of the network the method could see).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "mean_absolute_error",
    "root_mean_square_error",
    "quantile_error",
    "error_cdf",
    "AccuracyReport",
    "compare_estimates",
]

Link = Tuple[int, int]


def _paired_errors(
    estimates: Dict[Link, float], truth: Dict[Link, float]
) -> List[float]:
    return [abs(estimates[l] - truth[l]) for l in estimates.keys() & truth.keys()]


def mean_absolute_error(
    estimates: Dict[Link, float], truth: Dict[Link, float]
) -> Optional[float]:
    """Mean |estimate - truth| over links present in both maps."""
    errs = _paired_errors(estimates, truth)
    if not errs:
        return None
    return float(np.mean(errs))


def root_mean_square_error(
    estimates: Dict[Link, float], truth: Dict[Link, float]
) -> Optional[float]:
    errs = _paired_errors(estimates, truth)
    if not errs:
        return None
    return float(math.sqrt(np.mean(np.square(errs))))


def quantile_error(
    estimates: Dict[Link, float], truth: Dict[Link, float], q: float
) -> Optional[float]:
    """The q-quantile (0..1) of absolute errors."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    errs = _paired_errors(estimates, truth)
    if not errs:
        return None
    return float(np.quantile(errs, q))


def error_cdf(
    estimates: Dict[Link, float],
    truth: Dict[Link, float],
    points: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
) -> Dict[float, float]:
    """P(|error| <= x) at each requested x — the paper's CDF figures."""
    errs = _paired_errors(estimates, truth)
    if not errs:
        return {float(x): float("nan") for x in points}
    arr = np.asarray(errs)
    return {float(x): float(np.mean(arr <= x)) for x in points}


@dataclass
class AccuracyReport:
    """Everything the accuracy figures need, for one method on one run."""

    method: str
    n_links_compared: int
    n_links_truth: int
    mae: Optional[float]
    rmse: Optional[float]
    median_error: Optional[float]
    p90_error: Optional[float]
    max_error: Optional[float]
    cdf: Dict[float, float] = field(default_factory=dict)
    per_link_errors: Dict[Link, float] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        """Fraction of ground-truth links the method produced estimates for."""
        if self.n_links_truth == 0:
            return 0.0
        return self.n_links_compared / self.n_links_truth


def compare_estimates(
    estimates: Dict[Link, float],
    truth: Dict[Link, float],
    *,
    method: str = "",
    min_support: int = 0,
    support: Optional[Dict[Link, int]] = None,
    cdf_points: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.5),
) -> AccuracyReport:
    """Score ``estimates`` against ``truth``.

    ``min_support``/``support`` restrict the comparison to links informed
    by at least that many observations (accuracy figures conventionally
    exclude links a method barely saw).
    """
    usable = dict(estimates)
    if min_support > 0 and support is not None:
        usable = {
            l: v for l, v in usable.items() if support.get(l, 0) >= min_support
        }
    common = usable.keys() & truth.keys()
    errors = {l: abs(usable[l] - truth[l]) for l in common}
    values = list(errors.values())
    if values:
        arr = np.asarray(values)
        mae = float(arr.mean())
        rmse = float(math.sqrt(np.mean(arr**2)))
        median = float(np.quantile(arr, 0.5))
        p90 = float(np.quantile(arr, 0.9))
        mx = float(arr.max())
        cdf = {float(x): float(np.mean(arr <= x)) for x in cdf_points}
    else:
        mae = rmse = median = p90 = mx = None
        cdf = {float(x): float("nan") for x in cdf_points}
    return AccuracyReport(
        method=method,
        n_links_compared=len(common),
        n_links_truth=len(truth),
        mae=mae,
        rmse=rmse,
        median_error=median,
        p90_error=p90,
        max_error=mx,
        cdf=cdf,
        per_link_errors=errors,
    )
