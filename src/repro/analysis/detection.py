"""Bad-link detection metrics (precision / recall / F1).

Scores a set of *flagged* links against the ground-truth set of links
whose realized loss exceeds a threshold — the evaluation axis Boolean
tomography and operational monitoring care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set, Tuple

from repro.utils.validation import check_probability

__all__ = ["DetectionReport", "detection_metrics", "bad_links_from_truth"]

Link = Tuple[int, int]


@dataclass(frozen=True)
class DetectionReport:
    """Confusion-matrix summary of a bad-link detector."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 1.0


def bad_links_from_truth(
    truth: Dict[Link, float], loss_threshold: float
) -> Set[Link]:
    """Links whose ground-truth loss exceeds the threshold."""
    check_probability(loss_threshold, "loss_threshold")
    return {link for link, loss in truth.items() if loss > loss_threshold}


def detection_metrics(
    flagged: Iterable[Link],
    truth: Dict[Link, float],
    *,
    loss_threshold: float,
    universe: Iterable[Link] | None = None,
) -> DetectionReport:
    """Score ``flagged`` against truth over ``universe`` (default: truth's links).

    Flags outside the universe are counted as false positives (claiming a
    link nobody used is still a wrong claim).
    """
    flagged_set = set(flagged)
    links = set(universe) if universe is not None else set(truth.keys())
    links |= flagged_set
    bad = bad_links_from_truth(truth, loss_threshold)
    tp = fp = fn = tn = 0
    for link in links:
        is_bad = link in bad
        is_flagged = link in flagged_set
        if is_bad and is_flagged:
            tp += 1
        elif is_bad:
            fn += 1
        elif is_flagged:
            fp += 1
        else:
            tn += 1
    return DetectionReport(tp, fp, fn, tn)
