"""Overhead accounting: what a measurement approach costs the network.

All approaches in this package report their costs as exact bit counts:
per-packet annotation bits (Dophy, path measurement) and control-plane
bits (Dophy's model dissemination, the classical methods' topology
snapshots). :func:`summarize_overhead` normalizes them into the figures
the paper's overhead plots use — mean bytes per packet, bits per hop,
and overhead relative to a typical data payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence

__all__ = ["OverheadSummary", "summarize_overhead"]

#: TinyOS CTP data frames commonly carry ~28 bytes of payload+headers;
#: used to express annotation overhead as a fraction of the frame.
DEFAULT_FRAME_PAYLOAD_BITS = 28 * 8


class _ReportLike(Protocol):
    """Duck type shared by DophyReport and PathMeasurementReport."""

    annotation_bits: List[int]
    annotation_hops: List[int]


@dataclass(frozen=True)
class OverheadSummary:
    """Normalized overhead figures for one method on one run."""

    method: str
    packets: int
    total_annotation_bits: int
    control_bits: int
    mean_bits_per_packet: float
    p95_bits_per_packet: float
    mean_bits_per_hop: float
    #: Annotation size as a fraction of a typical data frame.
    frame_fraction: float

    @property
    def total_bits(self) -> int:
        return self.total_annotation_bits + self.control_bits

    @property
    def mean_bytes_per_packet(self) -> float:
        return self.mean_bits_per_packet / 8.0


def summarize_overhead(
    report: _ReportLike,
    *,
    method: str = "",
    control_bits: int = 0,
    frame_payload_bits: int = DEFAULT_FRAME_PAYLOAD_BITS,
) -> OverheadSummary:
    """Build an :class:`OverheadSummary` from a measurement report."""
    bits: Sequence[int] = report.annotation_bits
    hops: Sequence[int] = report.annotation_hops
    packets = len(bits)
    total = sum(bits)
    total_hops = sum(hops)
    if packets:
        sorted_bits = sorted(bits)
        p95 = float(sorted_bits[min(packets - 1, int(0.95 * packets))])
        mean_pkt = total / packets
    else:
        p95 = 0.0
        mean_pkt = 0.0
    return OverheadSummary(
        method=method,
        packets=packets,
        total_annotation_bits=total,
        control_bits=control_bits,
        mean_bits_per_packet=mean_pkt,
        p95_bits_per_packet=p95,
        mean_bits_per_hop=(total / total_hops) if total_hops else 0.0,
        frame_fraction=(mean_pkt / frame_payload_bits) if frame_payload_bits else 0.0,
    )
