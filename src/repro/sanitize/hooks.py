"""The sanitizer's activation point — deliberately tiny.

Instrumented modules (``repro.utils.rng``, ``repro.net.sim``, the
``repro.stream`` effect primitives) import this module and check
``hooks.ACTIVE`` at *object-creation or effect time*, never per draw:

* ``derive_rng``/``RngRegistry.get`` wrap the Generator they hand out
  when a sanitizer is active — when none is, the check is one global
  read at stream creation and the returned object is the raw numpy
  Generator, so the off state has **zero per-draw overhead**;
* ``Simulator`` caches ``ACTIVE`` at construction, so the event loop
  pays one attribute test per pop only while tracing.

Activation is either explicit (:func:`repro.sanitize.sanitize_run`) or
environment-driven: importing this module with ``REPRO_SANITIZE=1`` set
installs a process-global sanitizer, which is how whole CLI runs are
fingerprinted without code changes.

This module must stay import-light (no numpy) — it is imported by
``repro.utils.rng`` which everything else imports.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sanitize.tracer import Sanitizer

__all__ = ["ACTIVE", "activate", "deactivate", "get_active", "activate_from_env"]

#: The installed sanitizer, or None (the default: tracing off).
ACTIVE: Optional["Sanitizer"] = None


def activate(sanitizer: "Sanitizer") -> Optional["Sanitizer"]:
    """Install ``sanitizer`` globally; returns the previous one (if any)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = sanitizer
    return previous


def deactivate() -> Optional["Sanitizer"]:
    """Remove the installed sanitizer; returns it (if any)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = None
    return previous


def get_active() -> Optional["Sanitizer"]:
    return ACTIVE


def activate_from_env() -> Optional["Sanitizer"]:
    """Install a sanitizer when ``REPRO_SANITIZE=1`` (idempotent)."""
    if ACTIVE is None and os.environ.get("REPRO_SANITIZE") == "1":
        from repro.sanitize.tracer import Sanitizer

        activate(Sanitizer(label=os.environ.get("REPRO_SANITIZE_LABEL", "env")))
    return ACTIVE


# Environment-driven activation: REPRO_SANITIZE=1 traces the whole
# process from the first stream created after this import.
activate_from_env()
