"""Runtime RNG/ordering sanitizer — the dynamic half of reprolint.

The static rules (RPL001–RPL010) flag code *shapes* that can break
determinism; this package observes the *run* itself. With a sanitizer
active, every seeded RNG stream is wrapped in a recording proxy at
creation, the simulator logs its event-queue pop order, and the
streaming sink logs its durability effects. The resulting
:class:`~repro.sanitize.fingerprint.Fingerprint` is a complete,
bit-exact trace of everything that must match between two runs that
claim to be identical — and when they are not,
:func:`~repro.sanitize.differ.diff_fingerprints` names the first
divergent draw as a ``file:line`` call site with its stream name and
draw index.

Activation:

* ``REPRO_SANITIZE=1`` in the environment traces a whole process (the
  CLI writes the fingerprint to ``REPRO_SANITIZE_OUT`` if set);
* :func:`sanitize_run` scopes tracing to a ``with`` block in tests.

Off is the default and costs nothing per draw: instrumented code checks
one module global at stream-creation/effect time and hands out raw
numpy Generators when it is ``None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.sanitize import hooks
from repro.sanitize.differ import Divergence, diff_fingerprints, verify_effect_protocol
from repro.sanitize.fingerprint import DrawRecord, EffectRecord, Fingerprint
from repro.sanitize.tracer import Sanitizer, TracedGenerator, value_bits

__all__ = [
    "Sanitizer",
    "TracedGenerator",
    "Fingerprint",
    "DrawRecord",
    "EffectRecord",
    "Divergence",
    "diff_fingerprints",
    "verify_effect_protocol",
    "value_bits",
    "sanitize_run",
    "hooks",
]


@contextmanager
def sanitize_run(label: str = "run") -> Iterator[Sanitizer]:
    """Trace everything inside the block under a fresh :class:`Sanitizer`.

    Restores the previously active sanitizer (usually none) on exit, so
    nested/sequential contexts compose::

        with sanitize_run("event") as san_a:
            run_scenario(engine="event")
        with sanitize_run("array") as san_b:
            run_scenario(engine="array")
        assert diff_fingerprints(san_a.fingerprint(), san_b.fingerprint()) == []
    """
    sanitizer = Sanitizer(label=label)
    previous = hooks.activate(sanitizer)
    try:
        yield sanitizer
    finally:
        if previous is None:
            hooks.deactivate()
        else:
            hooks.activate(previous)
