"""The runtime half of the determinism toolchain.

:class:`Sanitizer` collects a :class:`~repro.sanitize.fingerprint.Fingerprint`
from a live run; :class:`TracedGenerator` is the transparent proxy it
wraps around every seeded ``numpy.random.Generator`` the moment the
stream is derived (see :func:`repro.utils.rng.derive_rng`).

Every draw is recorded with

* the stream name (the ``derive_rng`` key, joined with ``/``),
* its index within that stream,
* the drawn values as exact 64-bit patterns, and
* the *call site*: the nearest stack frame outside this package and
  outside numpy, formatted ``file:line in func`` — this is what lets
  the differ name the first divergent draw as a source location.

The proxy records *after* delegating, so the wrapped generator advances
exactly as the raw one would: tracing never perturbs the stream, and
bit-identity suites pass unchanged under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import os
import sys
import zlib
from pathlib import PurePath
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.sanitize.fingerprint import Detail, DrawRecord, EffectRecord, Fingerprint

__all__ = ["Sanitizer", "TracedGenerator", "value_bits"]

_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: This package's directory: its own frames are never the blamed site.
_PKG_DIR = os.path.dirname(os.path.abspath(__file__)) + os.sep

#: Path fragments whose frames are skipped during site attribution.
_SKIP_FRAGMENTS = (os.sep + "numpy" + os.sep,)

#: filename -> display form; filenames repeat for every draw, so the
#: cwd-relativization is computed once per file, not once per draw.
_DISPLAY_CACHE: Dict[str, str] = {}


def _display_path(filename: str) -> str:
    shown = _DISPLAY_CACHE.get(filename)
    if shown is None:
        try:
            shown = PurePath(filename).relative_to(os.getcwd()).as_posix()
        except ValueError:
            shown = filename
        _DISPLAY_CACHE[filename] = shown
    return shown


def value_bits(value: Any) -> Tuple[int, ...]:
    """Exact 64-bit patterns for a draw result.

    Floats are reinterpreted as their IEEE-754 bit patterns (so ``-0.0``
    differs from ``0.0`` and NaN payloads are preserved); ints are
    masked to 64 bits; anything else falls back to a CRC32 of its bytes
    or repr. Bit patterns make the comparison in the differ exact — no
    tolerance, no formatting round-trips.
    """
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            as64 = value.astype(np.float64, copy=False)
            return tuple(int(b) for b in as64.view(np.uint64).ravel())
        if value.dtype.kind in "iub":
            return tuple(int(v) & _U64_MASK for v in value.ravel().tolist())
        return (zlib.crc32(value.tobytes()),)
    if isinstance(value, (float, np.floating)):
        return (int(np.float64(value).view(np.uint64)),)
    if isinstance(value, (bool, np.bool_)):
        return (int(bool(value)),)
    if isinstance(value, (int, np.integer)):
        return (int(value) & _U64_MASK,)
    if value is None:
        return ()
    return (zlib.crc32(repr(value).encode("utf-8")),)


def _call_site() -> str:
    """``file:line in func`` of the nearest frame outside sanitize/numpy."""
    frame = sys._getframe(1)
    while frame is not None:
        filename = frame.f_code.co_filename
        if not filename.startswith(_PKG_DIR) and not any(
            frag in filename for frag in _SKIP_FRAGMENTS
        ):
            shown = _display_path(filename)
            return f"{shown}:{frame.f_lineno} in {frame.f_code.co_name}"
        back = frame.f_back
        if back is None:
            break
        frame = back
    return "<unknown>"


class Sanitizer:
    """Collects draws, event-queue pops and durability effects."""

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self._draws: List[DrawRecord] = []
        self._counts: Dict[str, int] = {}
        self._pops: List[Tuple[float, int]] = []
        self._effects: List[EffectRecord] = []
        self._pop_profile = "event"

    def set_pop_profile(self, profile: str) -> None:
        """Tag this run's event-pop discipline (see Fingerprint.pop_profile).

        Called by runs whose schedulers intentionally elide or reorder
        pops (batched forwarding); the differ then restricts pop-sequence
        comparison to same-profile pairs.
        """
        self._pop_profile = profile

    # ----------------------------------------------------------------- wiring
    def wrap(self, gen: np.random.Generator, key: Tuple[Any, ...]) -> "TracedGenerator":
        """Wrap a freshly derived generator under its stream name."""
        stream = "/".join(str(part) for part in key) or "<anonymous>"
        return TracedGenerator(gen, stream, self)

    # -------------------------------------------------------------- recording
    def record_draw(self, stream: str, method: str, result: Any) -> None:
        values = value_bits(result)
        start = self._counts.get(stream, 0)
        self._counts[stream] = start + len(values)
        self._draws.append(
            DrawRecord(
                stream=stream,
                method=method,
                site=_call_site(),
                start=start,
                values=values,
            )
        )

    def record_pop(self, time: float, seq: int) -> None:
        self._pops.append((float(time), int(seq)))

    def record_effect(self, kind: str, key: str, detail: Detail) -> None:
        self._effects.append(EffectRecord(kind=kind, key=key, detail=detail))

    # ---------------------------------------------------------------- results
    def fingerprint(self) -> Fingerprint:
        return Fingerprint(
            label=self.label,
            draws=list(self._draws),
            pops=list(self._pops),
            effects=list(self._effects),
            pop_profile=self._pop_profile,
        )


class TracedGenerator:
    """Transparent recording proxy over :class:`numpy.random.Generator`.

    Draw methods delegate first, then record the result's bit patterns;
    everything else (``bit_generator``, ``spawn``, ...) falls through
    via ``__getattr__``. The in-place mutators (``shuffle``) record the
    post-state of the mutated buffer, which captures order divergences
    the return value cannot.
    """

    def __init__(
        self, gen: np.random.Generator, stream: str, sanitizer: Sanitizer
    ) -> None:
        self._gen = gen
        self._stream = stream
        self._san = sanitizer

    @property
    def stream_name(self) -> str:
        return self._stream

    @property
    def wrapped(self) -> np.random.Generator:
        return self._gen

    def _rec(self, method: str, result: Any) -> Any:
        self._san.record_draw(self._stream, method, result)
        return result

    # --------------------------------------------------------- draw wrappers
    def random(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("random", self._gen.random(*args, **kwargs))

    def uniform(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("uniform", self._gen.uniform(*args, **kwargs))

    def normal(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("normal", self._gen.normal(*args, **kwargs))

    def standard_normal(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("standard_normal", self._gen.standard_normal(*args, **kwargs))

    def integers(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("integers", self._gen.integers(*args, **kwargs))

    def exponential(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("exponential", self._gen.exponential(*args, **kwargs))

    def standard_exponential(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec(
            "standard_exponential", self._gen.standard_exponential(*args, **kwargs)
        )

    def geometric(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("geometric", self._gen.geometric(*args, **kwargs))

    def poisson(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("poisson", self._gen.poisson(*args, **kwargs))

    def binomial(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("binomial", self._gen.binomial(*args, **kwargs))

    def gamma(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("gamma", self._gen.gamma(*args, **kwargs))

    def beta(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("beta", self._gen.beta(*args, **kwargs))

    def lognormal(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("lognormal", self._gen.lognormal(*args, **kwargs))

    def choice(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("choice", self._gen.choice(*args, **kwargs))

    def permutation(self, *args: Any, **kwargs: Any) -> Any:
        return self._rec("permutation", self._gen.permutation(*args, **kwargs))

    def bytes(self, *args: Any, **kwargs: Any) -> Any:
        result = self._gen.bytes(*args, **kwargs)
        self._san.record_draw(self._stream, "bytes", zlib.crc32(result))
        return result

    def shuffle(self, x: Any, *args: Any, **kwargs: Any) -> None:
        self._gen.shuffle(x, *args, **kwargs)
        self._san.record_draw(self._stream, "shuffle", x)

    # ------------------------------------------------------------ passthrough
    def __getattr__(self, name: str) -> Any:
        return getattr(self._gen, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TracedGenerator(stream={self._stream!r}, {self._gen!r})"
