"""Fingerprint comparison: name the *first* divergent draw.

Two sanitized runs that should be bit-identical (same seed on two
engines, one run before and after a refactor, jobs=1 vs jobs=N) are
compared here. The differ's contract is precision of blame: the first
:class:`Divergence` names the stream, the draw index within it, and the
``file:line`` call sites that produced the differing value on each
side — so a regression report reads "draw #3072 of stream
``arq/2/7``: ``src/repro/net/fastsim.py:214`` vs
``src/repro/net/sim.py:188``", not "arrays differ".

Two comparison modes:

* ``stream`` (default) — per-stream flattened value sequences. This is
  the cross-engine mode: the array kernel batches draws (one 256-value
  block call replaces 256 scalar calls), so call shapes legitimately
  differ while the value sequence must not. A longer run's surplus is
  tolerated only when it is a *block tail*: every extra value lies in
  the longer run's final call record for that stream, and that record
  overlaps the compared prefix — i.e. the last batched block was simply
  not fully consumed. A surplus produced by an additional call is a
  divergence.
* ``global`` — strict call-record interleaving (stream, method, count
  and values per call, in global order). This is the same-engine mode:
  any reordering or reshaping of draws is a divergence even when the
  per-stream values happen to match.

Event-queue pop order and durability effects are compared exactly in
both modes. :func:`verify_effect_protocol` separately checks the
crash-safety ordering invariants (WAL append before apply; manifest
before checkpoint) within a single fingerprint, which is what the
kill-restore suites assert — a restore legitimately changes the effect
log, but never the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sanitize.fingerprint import DrawRecord, Fingerprint

__all__ = ["Divergence", "diff_fingerprints", "verify_effect_protocol"]


@dataclass(frozen=True)
class Divergence:
    """One observed difference between two fingerprints."""

    kind: str  #: "draw" | "draw-count" | "call" | "pop" | "pop-count" | "effect"
    message: str
    stream: Optional[str] = None
    index: Optional[int] = None
    site_a: Optional[str] = None
    site_b: Optional[str] = None

    def describe(self) -> str:
        parts = [self.message]
        if self.site_a or self.site_b:
            parts.append(f"  A: {self.site_a or '<absent>'}")
            parts.append(f"  B: {self.site_b or '<absent>'}")
        return "\n".join(parts)


def _site_at(fp: Fingerprint, stream: str, index: int) -> Optional[str]:
    rec = fp.record_at(stream, index)
    return rec.site if rec is not None else None


def _diff_stream_values(
    a: Fingerprint, b: Fingerprint, stream: str
) -> Optional[Divergence]:
    va = a.stream_values(stream)
    vb = b.stream_values(stream)
    common = min(len(va), len(vb))
    for i in range(common):
        if va[i] != vb[i]:
            return Divergence(
                kind="draw",
                stream=stream,
                index=i,
                site_a=_site_at(a, stream, i),
                site_b=_site_at(b, stream, i),
                message=(
                    f"stream `{stream}`: first divergent draw at index {i} "
                    f"(A={va[i]:#018x}, B={vb[i]:#018x})"
                ),
            )
    if len(va) == len(vb):
        return None
    longer, shorter = (a, b) if len(va) > len(vb) else (b, a)
    long_n, short_n = max(len(va), len(vb)), common
    records = longer.stream_records(stream)
    tail: Optional[DrawRecord] = records[-1] if records else None
    # Block-tail allowance: the surplus is benign only if it is entirely
    # the unconsumed remainder of the longer run's final (batched) call,
    # and that call started inside the compared prefix — an *extra call*
    # after the prefix is a real divergence.
    if tail is not None and tail.start < short_n and tail.end == long_n:
        return None
    surplus_site = _site_at(longer, stream, short_n)
    a_longer = longer is a
    return Divergence(
        kind="draw-count",
        stream=stream,
        index=short_n,
        site_a=surplus_site if a_longer else None,
        site_b=None if a_longer else surplus_site,
        message=(
            f"stream `{stream}`: {'A' if a_longer else 'B'} drew "
            f"{long_n - short_n} extra value(s) beyond index {short_n - 1 if short_n else 0} "
            f"({short_n} vs {long_n} draws); first extra draw at index {short_n}"
        ),
    )


def _diff_streams(a: Fingerprint, b: Fingerprint) -> List[Divergence]:
    out: List[Divergence] = []
    names = list(a.stream_names())
    for name in b.stream_names():
        if name not in names:
            names.append(name)
    for stream in names:
        na, nb = len(a.stream_values(stream)), len(b.stream_values(stream))
        if na == 0 or nb == 0:
            if na == nb:
                continue
            absent = "B" if nb == 0 else "A"
            present_fp = a if nb == 0 else b
            out.append(
                Divergence(
                    kind="draw-count",
                    stream=stream,
                    index=0,
                    site_a=_site_at(a, stream, 0),
                    site_b=_site_at(b, stream, 0),
                    message=(
                        f"stream `{stream}`: {absent} never drew from it "
                        f"({present_fp.label or 'other side'} drew {max(na, nb)})"
                    ),
                )
            )
            continue
        div = _diff_stream_values(a, b, stream)
        if div is not None:
            out.append(div)
    return out


def _diff_global(a: Fingerprint, b: Fingerprint) -> List[Divergence]:
    out: List[Divergence] = []
    for i, (ra, rb) in enumerate(zip(a.draws, b.draws)):
        if (ra.stream, ra.method, ra.values) != (rb.stream, rb.method, rb.values):
            what = (
                "stream" if ra.stream != rb.stream
                else "method" if ra.method != rb.method
                else "values"
            )
            out.append(
                Divergence(
                    kind="call",
                    stream=ra.stream if ra.stream == rb.stream else None,
                    index=i,
                    site_a=ra.site,
                    site_b=rb.site,
                    message=(
                        f"draw call #{i}: {what} differ — "
                        f"A `{ra.stream}`.{ra.method} x{ra.count} vs "
                        f"B `{rb.stream}`.{rb.method} x{rb.count}"
                    ),
                )
            )
            return out
    if len(a.draws) != len(b.draws):
        longer = a if len(a.draws) > len(b.draws) else b
        i = min(len(a.draws), len(b.draws))
        extra = longer.draws[i]
        out.append(
            Divergence(
                kind="call",
                stream=extra.stream,
                index=i,
                site_a=extra.site if longer is a else None,
                site_b=None if longer is a else extra.site,
                message=(
                    f"draw call #{i}: {'A' if longer is a else 'B'} made "
                    f"{abs(len(a.draws) - len(b.draws))} extra call(s), first on "
                    f"stream `{extra.stream}` ({extra.method} x{extra.count})"
                ),
            )
        )
    return out


def _diff_pops(a: Fingerprint, b: Fingerprint, mode: str) -> List[Divergence]:
    if mode == "stream" and (not a.pops or not b.pops):
        # Cross-engine comparison: the array kernel has no event queue,
        # so a side with *no* pop log at all is a different engine, not
        # a divergence. (Both-sides-present pop logs still must match.)
        return []
    if mode == "stream" and a.pop_profile != b.pop_profile:
        # Different pop disciplines (e.g. batched forwarding elides and
        # reorders pops by design): the sequences are incomparable, while
        # the draw streams and effects above remain strictly compared.
        # Global mode stays strict — same-engine runs must match pops.
        return []
    for i, (pa, pb) in enumerate(zip(a.pops, b.pops)):
        if pa != pb:
            return [
                Divergence(
                    kind="pop",
                    index=i,
                    message=(
                        f"event-queue pop #{i} differs: "
                        f"A=(t={pa[0]!r}, seq={pa[1]}) vs B=(t={pb[0]!r}, seq={pb[1]})"
                    ),
                )
            ]
    if len(a.pops) != len(b.pops):
        return [
            Divergence(
                kind="pop-count",
                index=min(len(a.pops), len(b.pops)),
                message=(
                    f"event-queue pop counts differ: A={len(a.pops)} vs B={len(b.pops)}"
                ),
            )
        ]
    return []


def _diff_effects(a: Fingerprint, b: Fingerprint) -> List[Divergence]:
    for i, (ea, eb) in enumerate(zip(a.effects, b.effects)):
        if ea != eb:
            return [
                Divergence(
                    kind="effect",
                    index=i,
                    message=(
                        f"effect #{i} differs: A=({ea.kind}, {ea.key}, {ea.detail!r}) "
                        f"vs B=({eb.kind}, {eb.key}, {eb.detail!r})"
                    ),
                )
            ]
    if len(a.effects) != len(b.effects):
        return [
            Divergence(
                kind="effect",
                index=min(len(a.effects), len(b.effects)),
                message=(
                    f"effect counts differ: A={len(a.effects)} vs B={len(b.effects)}"
                ),
            )
        ]
    return []


def diff_fingerprints(
    a: Fingerprint, b: Fingerprint, mode: str = "stream"
) -> List[Divergence]:
    """Compare two fingerprints; an empty list means equivalent.

    ``mode="stream"`` compares per-stream value sequences (cross-engine,
    batching-tolerant); ``mode="global"`` compares strict call-record
    interleaving (same-engine). Pops and effects are exact in both.
    """
    if mode not in ("stream", "global"):
        raise ValueError(f"unknown diff mode {mode!r} (use 'stream' or 'global')")
    out: List[Divergence] = []
    if mode == "stream":
        out.extend(_diff_streams(a, b))
    else:
        out.extend(_diff_global(a, b))
    out.extend(_diff_pops(a, b, mode))
    out.extend(_diff_effects(a, b))
    return out


# ---------------------------------------------------------------------------
# Effect-protocol verification (single fingerprint)
# ---------------------------------------------------------------------------

WAL_APPEND_KIND = "wal-append"
APPLY_KIND = "apply"
MANIFEST_KIND = "manifest-write"
CHECKPOINT_KIND = "checkpoint-write"


def verify_effect_protocol(fp: Fingerprint) -> List[str]:
    """Check the stream-layer crash-safety ordering within one run.

    Invariants (the runtime twins of lint rule RPL008):

    1. *WAL append dominates apply*: an apply that advances a shard's
       ``seq_applied`` watermark to ``n`` requires the records it
       absorbed (sequences ``<= n``; sequences are 1-based counts) to be
       durable — so at apply time the same WAL must already hold appends
       up to at least seq ``n``.
    2. *Manifest dominates checkpoint*: a checkpoint covering applied
       state ``<= n`` requires a manifest write after every same-WAL
       append with sequence ``<= n`` — otherwise resume reads shard
       state the manifest does not describe.

    Returns human-readable violation strings; empty means the protocol
    held. Restores are invisible here (replay records no effects), so
    kill-restore runs verify clean while their raw effect logs differ.
    """
    problems: List[str] = []
    max_appended: Dict[str, int] = {}  # wal name -> highest appended seq
    # wal name -> highest appended seq NOT yet covered by a manifest write
    unmanifested: Dict[str, int] = {}
    saw_manifest = False
    for i, eff in enumerate(fp.effects):
        if eff.kind == WAL_APPEND_KIND:
            seq = int(eff.detail) if not isinstance(eff.detail, str) else -1
            prev = max_appended.get(eff.key, -1)
            max_appended[eff.key] = max(prev, seq)
            unmanifested[eff.key] = max(unmanifested.get(eff.key, -1), seq)
        elif eff.kind == APPLY_KIND:
            # Sequences are 1-based counts (seq_logged increments before
            # append), so watermark n requires an append with seq >= n.
            watermark = int(eff.detail) if not isinstance(eff.detail, str) else 0
            durable = max_appended.get(eff.key, -1)
            if watermark > durable:
                problems.append(
                    f"effect #{i}: apply advanced `{eff.key}` watermark to "
                    f"{watermark} but only seq <= {durable} is durable in the "
                    "WAL — apply precedes the append (RPL008 runtime twin)"
                )
        elif eff.kind == MANIFEST_KIND:
            saw_manifest = True
            unmanifested.clear()
        elif eff.kind == CHECKPOINT_KIND:
            covered = int(eff.detail) if not isinstance(eff.detail, str) else 0
            if not saw_manifest:
                problems.append(
                    f"effect #{i}: checkpoint of `{eff.key}` (state <= {covered}) "
                    "with no prior manifest write — resume cannot locate it "
                    "(RPL008 runtime twin)"
                )
                continue
            pending = unmanifested.get(eff.key, -1)
            if 0 <= pending <= covered:
                problems.append(
                    f"effect #{i}: checkpoint of `{eff.key}` covers applied "
                    f"state <= {covered}, but append seq {pending} on the same "
                    "WAL postdates the last manifest write — the manifest "
                    "does not describe this checkpoint (RPL008 runtime twin)"
                )
    return problems
