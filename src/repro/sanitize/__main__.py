"""CLI for determinism fingerprints.

Usage::

    python -m repro.sanitize diff A.json B.json [--mode stream|global]
    python -m repro.sanitize show FP.json
    python -m repro.sanitize verify FP.json

Exit codes mirror reprolint's: 0 — equivalent / protocol holds, 1 —
divergence or protocol violation found, 2 — usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.sanitize.differ import diff_fingerprints, verify_effect_protocol
from repro.sanitize.fingerprint import Fingerprint

__all__ = ["main"]


def _load(path: str) -> Fingerprint:
    try:
        return Fingerprint.load(path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"error: cannot load fingerprint {path}: {exc}")


def _cmd_diff(args: argparse.Namespace) -> int:
    a, b = _load(args.a), _load(args.b)
    divergences = diff_fingerprints(a, b, mode=args.mode)
    if not divergences:
        print(
            f"fingerprints equivalent ({args.mode} mode): "
            f"{a.total_draws()} draws, {len(a.pops)} pops, "
            f"{len(a.effects)} effects"
        )
        return 0
    print(f"{len(divergences)} divergence(s) ({args.mode} mode):")
    for div in divergences:
        print(div.describe())
    return 1


def _cmd_show(args: argparse.Namespace) -> int:
    fp = _load(args.fingerprint)
    print(f"fingerprint `{fp.label}` (version {fp.version})")
    print(f"  draws: {fp.total_draws()} across {len(fp.stream_names())} stream(s)")
    for stream in fp.stream_names():
        records = fp.stream_records(stream)
        print(f"    {stream}: {sum(r.count for r in records)} values "
              f"in {len(records)} call(s)")
    print(f"  pops: {len(fp.pops)}")
    print(f"  effects: {len(fp.effects)}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    fp = _load(args.fingerprint)
    problems = verify_effect_protocol(fp)
    if not problems:
        print(f"effect protocol holds ({len(fp.effects)} effects)")
        return 0
    print(f"{len(problems)} protocol violation(s):")
    for problem in problems:
        print(f"  {problem}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Compare and inspect determinism fingerprints.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    diff = sub.add_parser("diff", help="compare two fingerprints")
    diff.add_argument("a")
    diff.add_argument("b")
    diff.add_argument(
        "--mode", choices=("stream", "global"), default="stream",
        help="stream: per-stream values (cross-engine, batching-tolerant); "
             "global: strict call interleaving (same-engine)",
    )
    diff.set_defaults(func=_cmd_diff)

    show = sub.add_parser("show", help="summarize one fingerprint")
    show.add_argument("fingerprint")
    show.set_defaults(func=_cmd_show)

    verify = sub.add_parser("verify", help="check effect-ordering protocol")
    verify.add_argument("fingerprint")
    verify.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except SystemExit as exc:  # from _load
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise
    except BrokenPipeError:  # pragma: no cover - e.g. piped into `head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
