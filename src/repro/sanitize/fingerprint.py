"""Determinism fingerprints: the sanitizer's serializable trace.

A :class:`Fingerprint` is everything the runtime sanitizer observed in
one labelled run:

* every RNG draw, as a :class:`DrawRecord` — stream name, method,
  attributed call site (``file:line in func``), the start index within
  the stream and the drawn values as exact 64-bit patterns (float64
  bits / masked ints), so comparison is bit-exact with no tolerance;
* the event-queue pop order, as ``(time, seq)`` pairs;
* the durability effects (WAL appends, estimator applies, manifest and
  checkpoint writes), as ``(kind, key, detail)`` triples keyed so the
  protocol checker in :mod:`repro.sanitize.differ` can correlate them.

Fingerprints serialize to a versioned JSON document (``save``/``load``)
so two runs — different processes, different engines, different machines
— can be diffed offline with ``python -m repro.sanitize diff``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

__all__ = ["FORMAT_VERSION", "DrawRecord", "EffectRecord", "Fingerprint"]

FORMAT_VERSION = 1

#: Effect detail payload: a sequence number or a short free-form note.
Detail = Union[int, str]


@dataclass(frozen=True)
class DrawRecord:
    """One draw call on one named RNG stream."""

    stream: str
    method: str
    site: str
    start: int  #: index of the first value within the stream
    values: Tuple[int, ...]  #: exact 64-bit patterns of the drawn values

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def end(self) -> int:
        """One past the index of the last value (``start`` if empty)."""
        return self.start + len(self.values)

    def to_json(self) -> Dict[str, Any]:
        return {
            "stream": self.stream,
            "method": self.method,
            "site": self.site,
            "start": self.start,
            "values": list(self.values),
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "DrawRecord":
        return cls(
            stream=data["stream"],
            method=data["method"],
            site=data["site"],
            start=int(data["start"]),
            values=tuple(int(v) for v in data["values"]),
        )


@dataclass(frozen=True)
class EffectRecord:
    """One durability effect: ``kind`` ∈ {wal-append, apply,
    manifest-write, checkpoint-write}, ``key`` correlates related effects
    (the WAL blob name, or the manifest name), ``detail`` is the sequence
    number / watermark involved."""

    kind: str
    key: str
    detail: Detail

    def to_json(self) -> List[Any]:
        return [self.kind, self.key, self.detail]

    @classmethod
    def from_json(cls, data: List[Any]) -> "EffectRecord":
        kind, key, detail = data
        return cls(kind=str(kind), key=str(key), detail=detail)


@dataclass
class Fingerprint:
    """The full observable trace of one sanitized run."""

    label: str
    version: int = FORMAT_VERSION
    draws: List[DrawRecord] = field(default_factory=list)
    pops: List[Tuple[float, int]] = field(default_factory=list)
    effects: List[EffectRecord] = field(default_factory=list)
    #: Which event-pop discipline produced ``pops``. ``"event"`` is the
    #: reference one-event-per-protocol-step schedule; the array engine's
    #: batched forwarding elides and reorders pops by design and tags its
    #: runs ``"batched-forwarding"``. Stream-mode diffs only compare pop
    #: sequences between runs with matching profiles — draws and effects
    #: stay strictly comparable across profiles.
    pop_profile: str = "event"

    # ------------------------------------------------------------------ views
    def stream_names(self) -> List[str]:
        """Stream names in first-draw order."""
        seen: Dict[str, None] = {}
        for rec in self.draws:
            seen.setdefault(rec.stream, None)
        return list(seen)

    def stream_records(self, stream: str) -> List[DrawRecord]:
        return [r for r in self.draws if r.stream == stream]

    def stream_values(self, stream: str) -> List[int]:
        """Flattened value patterns of one stream, in draw order."""
        out: List[int] = []
        for rec in self.draws:
            if rec.stream == stream:
                out.extend(rec.values)
        return out

    def record_at(self, stream: str, index: int) -> Union[DrawRecord, None]:
        """The draw record containing value ``index`` of ``stream``."""
        for rec in self.draws:
            if rec.stream == stream and rec.start <= index < rec.end:
                return rec
        return None

    def total_draws(self) -> int:
        return sum(r.count for r in self.draws)

    # -------------------------------------------------------------- serialize
    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "label": self.label,
            "draws": [r.to_json() for r in self.draws],
            "pops": [[t, s] for t, s in self.pops],
            "effects": [e.to_json() for e in self.effects],
            "pop_profile": self.pop_profile,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Fingerprint":
        version = int(data.get("version", 0))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported fingerprint version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        return cls(
            label=str(data.get("label", "")),
            version=version,
            draws=[DrawRecord.from_json(d) for d in data["draws"]],
            pops=[(float(t), int(s)) for t, s in data["pops"]],
            effects=[EffectRecord.from_json(e) for e in data["effects"]],
            # Absent in documents written before the field existed; those
            # all predate batched forwarding, hence the "event" profile.
            pop_profile=str(data.get("pop_profile", "event")),
        )

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Fingerprint":
        return cls.from_json(json.loads(Path(path).read_text(encoding="utf-8")))
