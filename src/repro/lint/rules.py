"""The RPL rule set: AST checks behind ``python -m repro.lint``.

Each rule is a module-level class with a ``rule_id``, a one-line
``summary`` and a ``check(tree, ctx)`` generator yielding
:class:`~repro.lint.violation.Violation`. Rules are deliberately
*syntactic*: they flag the patterns that have actually bitten this repo
(see DESIGN.md §"Static guarantees"), not everything a sound
whole-program analysis could prove. False positives are handled with
``# reprolint: disable=RPLxxx`` at the offending line.

The import-resolution helper tracks ``import x as y`` aliases and
``from x import y`` bindings per module, so ``np.random.seed`` is caught
under any spelling (``numpy.random.seed``, ``from numpy import random``,
``from numpy.random import seed``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.lint.violation import Violation

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.lint.callgraph import ModuleInfo, Project

__all__ = ["ALL_RULES", "RULE_DOCS", "LintContext", "Rule"]

#: Path segments that mark a file as simulation-path code for RPL002.
SIM_PATH_SEGMENTS = frozenset({"core", "net", "workloads", "exec", "stream"})

# ``random`` module functions that mutate/consume the hidden global stream.
_PY_RANDOM_GLOBAL = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "getstate", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

# Legacy ``numpy.random`` module-level functions backed by global state.
_NP_RANDOM_GLOBAL = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
        "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
        "multinomial", "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "normal", "pareto",
        "permutation", "poisson", "power", "rand", "randint", "randn",
        "random", "random_integers", "random_sample", "ranf", "rayleigh",
        "sample", "seed", "set_state", "shuffle", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_normal",
        "standard_t", "triangular", "uniform", "vonmises", "wald",
        "weibull", "zipf",
    }
)

# ``numpy.random`` constructors that are deterministic only when seeded.
_NP_SEEDED_CTORS = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "MT19937", "PCG64",
     "PCG64DXSM", "Philox", "SFC64"}
)

# Host-clock callables (module -> banned attribute names) for RPL002.
_CLOCK_FNS: Dict[str, frozenset] = {
    "time": frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
         "perf_counter_ns", "process_time", "process_time_ns",
         "clock_gettime", "clock_gettime_ns"}
    ),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
}

# Callees whose arguments cross the ParallelRunner process boundary or
# land in stable cache keys (RPL003).
_BOUNDARY_CALLEES = frozenset(
    {
        "Scenario", "ApproachSpec", "ComparisonTask",
        "run_comparison", "run_replicated", "run_comparisons",
        "register_scenario", "register_approach",
        "stable_describe", "stable_digest", "key_for",
    }
)

# Module-level names whose dict values are scenario/approach registries.
_REGISTRY_NAME_HINTS = ("scenario", "registr", "factor", "approach", "method")

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray", "defaultdict",
                            "Counter", "OrderedDict", "deque"})


@dataclass
class LintContext:
    """Where a module lives, and what that implies for scoped rules.

    ``project``/``module`` carry the whole-program view the flow rules
    (RPL006–009) need; the engine always populates them, but rules must
    degrade to silence when invoked standalone without one.
    """

    path: str
    in_sim_path: bool = False
    project: Optional["Project"] = None
    module: Optional["ModuleInfo"] = None


@dataclass
class _Imports:
    """Name-resolution snapshot for one module."""

    #: local alias -> fully dotted module name (``np`` -> ``numpy``).
    modules: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name) for ``from`` imports.
    names: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def collect(cls, tree: ast.AST) -> "_Imports":
        imp = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imp.modules[local] = alias.name if alias.asname else alias.name.split(".")[0]
                    if alias.asname is None and "." in alias.name:
                        # ``import numpy.random`` binds ``numpy``.
                        imp.modules[local] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    imp.names[local] = (node.module, alias.name)
        return imp

    def resolve_module(self, node: ast.expr) -> Optional[str]:
        """Dotted module path an expression refers to, if any.

        ``np`` -> ``numpy``; ``np.random`` -> ``numpy.random``; a name
        bound by ``from numpy import random`` -> ``numpy.random``.
        """
        if isinstance(node, ast.Name):
            if node.id in self.modules:
                return self.modules[node.id]
            if node.id in self.names:
                mod, orig = self.names[node.id]
                # Heuristic: ``from numpy import random`` imports a module.
                return f"{mod}.{orig}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve_module(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


def _callee_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _violation(ctx: LintContext, node: ast.AST, rule: str, message: str) -> Violation:
    return Violation(
        path=ctx.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule=rule,
        message=message,
    )


class Rule:
    """Base class; subclasses define ``rule_id``/``summary``/``check``."""

    rule_id: str = "RPL000"
    summary: str = ""

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError


class GlobalRngRule(Rule):
    """RPL001 — global or unseeded RNG use.

    Every stochastic draw must come from a ``numpy.random.Generator``
    threaded in as a parameter (``repro.utils.rng.derive_rng`` /
    ``RngRegistry``); hidden module-level streams make results depend on
    call order across the whole process, which breaks replicate
    independence and the jobs=N ≡ jobs=1 contract.
    """

    rule_id = "RPL001"
    summary = "global or unseeded RNG use (thread a seeded Generator instead)"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        imports = _Imports.collect(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            # Module-attribute spellings: random.X(...), np.random.X(...).
            if isinstance(func, ast.Attribute):
                base = imports.resolve_module(func.value)
                if base == "random" and func.attr in _PY_RANDOM_GLOBAL:
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`random.{func.attr}` draws from the process-global "
                        "stream; accept a seeded `numpy.random.Generator` "
                        "parameter instead (see repro.utils.rng)",
                    )
                elif base == "random" and func.attr == "Random" and not node.args:
                    yield _violation(
                        ctx, node, self.rule_id,
                        "`random.Random()` without a seed is entropy-seeded; "
                        "pass an explicit seed or thread a Generator in",
                    )
                elif base == "numpy.random":
                    if func.attr in _NP_RANDOM_GLOBAL:
                        yield _violation(
                            ctx, node, self.rule_id,
                            f"`np.random.{func.attr}` uses numpy's legacy "
                            "global state; use a seeded Generator "
                            "(repro.utils.rng.derive_rng) instead",
                        )
                    elif (
                        func.attr in _NP_SEEDED_CTORS
                        and not node.args
                        and not node.keywords
                    ):
                        yield _violation(
                            ctx, node, self.rule_id,
                            f"`np.random.{func.attr}()` without a seed is "
                            "entropy-seeded and unreproducible; pass an "
                            "explicit seed",
                        )
            # ``from random import randint`` / ``from numpy.random import rand``.
            elif isinstance(func, ast.Name) and func.id in imports.names:
                mod, orig = imports.names[func.id]
                if mod == "random" and orig in _PY_RANDOM_GLOBAL:
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{orig}` (from random) draws from the process-global "
                        "stream; thread a seeded Generator in instead",
                    )
                elif mod == "random" and orig == "Random" and not node.args:
                    yield _violation(
                        ctx, node, self.rule_id,
                        "`Random()` without a seed is entropy-seeded; pass an "
                        "explicit seed",
                    )
                elif mod == "numpy.random" and orig in _NP_RANDOM_GLOBAL:
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{orig}` (from numpy.random) uses legacy global "
                        "state; use a seeded Generator instead",
                    )
                elif (
                    mod == "numpy.random"
                    and orig in _NP_SEEDED_CTORS
                    and not node.args
                    and not node.keywords
                ):
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{orig}()` without a seed is entropy-seeded and "
                        "unreproducible; pass an explicit seed",
                    )


class WallClockRule(Rule):
    """RPL002 — host clocks / entropy inside the simulation paths.

    Simulated time is ``sim.now``; anything derived from the host clock
    (or OS entropy) differs run to run and poisons traces, cache keys
    and golden outputs. Only enforced under ``core/``, ``net/``,
    ``workloads/`` and ``exec/`` — benches may legitimately time
    themselves (and suppress the one line that does).
    """

    rule_id = "RPL002"
    summary = "wall-clock/entropy source in a simulation path (use sim.now / seeded rng)"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.in_sim_path:
            return
        imports = _Imports.collect(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = imports.resolve_module(func.value)
                banned = _CLOCK_FNS.get(base or "")
                if banned is not None and func.attr in banned:
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{base}.{func.attr}` reads host wall-clock/entropy "
                        "inside a simulation path; use sim.now (event time) "
                        "or a seeded rng",
                    )
                    continue
                if base == "secrets" or (base or "").startswith("secrets."):
                    yield _violation(
                        ctx, node, self.rule_id,
                        "`secrets.*` is an OS-entropy source; simulation "
                        "paths must be deterministic",
                    )
                    continue
                if func.attr in {"now", "utcnow", "today"} and self._is_datetime(
                    func.value, imports
                ):
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`datetime …{func.attr}()` reads the host clock "
                        "inside a simulation path; pass timestamps in "
                        "explicitly or use sim.now",
                    )
            elif isinstance(func, ast.Name) and func.id in imports.names:
                mod, orig = imports.names[func.id]
                banned = _CLOCK_FNS.get(mod)
                if banned is not None and orig in banned:
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{orig}` (from {mod}) reads host wall-clock/entropy "
                        "inside a simulation path; use sim.now or a seeded rng",
                    )
                elif mod == "secrets":
                    yield _violation(
                        ctx, node, self.rule_id,
                        "`secrets.*` is an OS-entropy source; simulation "
                        "paths must be deterministic",
                    )
                elif mod == "datetime" and orig in {"datetime", "date"}:
                    # Covered via the Attribute branch when methods are
                    # called on it; a bare ``datetime(...)`` call is fine.
                    pass

    @staticmethod
    def _is_datetime(value: ast.expr, imports: _Imports) -> bool:
        """Does ``value`` denote ``datetime.datetime`` / ``datetime.date``?"""
        if isinstance(value, ast.Name) and value.id in imports.names:
            mod, orig = imports.names[value.id]
            return mod == "datetime" and orig in {"datetime", "date"}
        if isinstance(value, ast.Attribute):
            base = imports.resolve_module(value.value)
            return base == "datetime" and value.attr in {"datetime", "date"}
        return False


class UnpicklableCallableRule(Rule):
    """RPL003 — lambdas/closures crossing the process boundary.

    ``ParallelRunner`` pickles every task to its workers, and
    ``stable_describe`` keys cache entries by a callable's qualified
    name. A lambda or a function defined inside another function does
    neither: pickling fails (or worse, silently resolves to the wrong
    object), and ``<locals>`` qualnames are not stable keys. Anything
    stored in a Scenario, ApproachSpec, ComparisonTask or a
    scenario/approach registry must be a module-level callable, a
    ``functools.partial`` of one, or a frozen dataclass instance.
    """

    rule_id = "RPL003"
    summary = "lambda/closure handed to a registry, factory or process boundary"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        yield from self._walk_scope(tree, ctx, local_defs=frozenset())

    def _walk_scope(
        self,
        scope: ast.AST,
        ctx: LintContext,
        local_defs: frozenset,
    ) -> Iterator[Violation]:
        body = getattr(scope, "body", [])
        is_function = isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_function:
            # Functions defined directly in this function's body are
            # closures from any caller's point of view.
            local_defs = local_defs | {
                stmt.name
                for stmt in body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._walk_scope(stmt, ctx, local_defs)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._walk_scope(stmt, ctx, local_defs)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    yield from self._check_call(node, ctx, local_defs)
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    yield from self._check_registry_assign(node, ctx, local_defs)

    def _check_call(
        self, node: ast.Call, ctx: LintContext, local_defs: frozenset
    ) -> Iterator[Violation]:
        callee = _callee_name(node.func)
        if callee == "partial":
            values: Sequence[ast.expr] = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for value in values:
                yield from self._flag_value(
                    value, ctx, local_defs,
                    where="inside functools.partial (the partial itself must "
                          "pickle)",
                )
            return
        if callee not in _BOUNDARY_CALLEES:
            return
        for value in list(node.args) + [kw.value for kw in node.keywords]:
            yield from self._flag_value(
                value, ctx, local_defs, where=f"passed to `{callee}`"
            )

    def _check_registry_assign(
        self,
        node: ast.stmt,
        ctx: LintContext,
        local_defs: frozenset,
    ) -> Iterator[Violation]:
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            if node.value is None:
                return
            targets, value = [node.target], node.value
        names = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                names.append(target.value.id)
        if not any(self._is_registry_name(n) for n in names):
            return
        if isinstance(value, ast.Dict):
            for v in value.values:
                if v is not None:
                    yield from self._flag_value(
                        v, ctx, local_defs,
                        where=f"stored in registry `{names[0]}`",
                    )
        else:
            yield from self._flag_value(
                value, ctx, local_defs, where=f"stored in registry `{names[0]}`"
            )

    @staticmethod
    def _is_registry_name(name: str) -> bool:
        lowered = name.lower()
        return any(hint in lowered for hint in _REGISTRY_NAME_HINTS)

    @staticmethod
    def _flag_value(
        value: ast.expr,
        ctx: LintContext,
        local_defs: frozenset,
        *,
        where: str,
    ) -> Iterator[Violation]:
        if isinstance(value, ast.Lambda):
            yield _violation(
                ctx, value, UnpicklableCallableRule.rule_id,
                f"lambda {where}: lambdas neither pickle to pool workers nor "
                "have stable cache-key qualnames; use a module-level function "
                "or functools.partial of one",
            )
        elif isinstance(value, ast.Name) and value.id in local_defs:
            yield _violation(
                ctx, value, UnpicklableCallableRule.rule_id,
                f"locally-defined function `{value.id}` {where}: its "
                "`<locals>` qualname neither pickles nor forms a stable "
                "cache key; move it to module level",
            )


class UnorderedMaterializationRule(Rule):
    """RPL004 — set contents materialised into an ordered sequence.

    ``set``/``frozenset`` iteration order depends on insertion history
    and per-type hash layout; once that order is frozen into a ``list``,
    tuple, joined string or list-comprehension it can leak into trace
    files, cache descriptions and reports. ``stable_describe`` sorts the
    sets it is given — the danger is materialising *before* it (or any
    other hashing/serialisation) sees the data. Wrap the set in
    ``sorted(...)`` instead.
    """

    rule_id = "RPL004"
    summary = "unordered set materialised without sorted()"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                callee = _callee_name(node.func)
                if (
                    callee in {"list", "tuple", "enumerate"}
                    and isinstance(node.func, ast.Name)
                    and len(node.args) == 1
                    and self._is_setish(node.args[0])
                ):
                    yield _violation(
                        ctx, node, self.rule_id,
                        f"`{callee}(...)` freezes a set's arbitrary iteration "
                        "order into a sequence; use `sorted(...)` so the "
                        "order is deterministic",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and len(node.args) == 1
                    and self._is_setish(node.args[0])
                ):
                    yield _violation(
                        ctx, node, self.rule_id,
                        "joining a set concatenates in arbitrary order; join "
                        "`sorted(...)` of it instead",
                    )
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if self._is_setish(gen.iter):
                        yield _violation(
                            ctx, node, self.rule_id,
                            "list comprehension over a set freezes its "
                            "arbitrary iteration order; iterate "
                            "`sorted(...)` of it instead",
                        )
                        break

    @staticmethod
    def _is_setish(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False


class MutableDefaultRule(Rule):
    """RPL005 — mutable defaults (arguments, and dataclass fields).

    A mutable default argument is shared across every call — replicate
    N's state bleeds into replicate N+1, the classic way paired runs
    stop being independent. On a frozen dataclass, a mutable
    class-level default is shared across every *instance*, defeating
    both frozenness and hashability; use
    ``field(default_factory=...)``.
    """

    rule_id = "RPL005"
    summary = "mutable default argument / mutable dataclass field default"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for default in list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]:
                    if self._is_mutable(default):
                        yield _violation(
                            ctx, default, self.rule_id,
                            "mutable default argument is shared across calls; "
                            "default to None (or use a frozen/immutable value)",
                        )
            elif isinstance(node, ast.ClassDef) and self._is_frozen_dataclass(node):
                yield from self._check_dataclass_body(node, ctx)

    def _check_dataclass_body(
        self, node: ast.ClassDef, ctx: LintContext
    ) -> Iterator[Violation]:
        for stmt in node.body:
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.AnnAssign):
                value = stmt.value
            elif isinstance(stmt, ast.Assign):
                value = stmt.value
            if value is None:
                continue
            if self._is_mutable(value):
                yield _violation(
                    ctx, value, self.rule_id,
                    "mutable default on a frozen dataclass field is shared "
                    "across instances; use field(default_factory=...)",
                )
            elif isinstance(value, ast.Call) and _callee_name(value.func) == "field":
                for kw in value.keywords:
                    if kw.arg == "default" and self._is_mutable(kw.value):
                        yield _violation(
                            ctx, kw.value, self.rule_id,
                            "field(default=<mutable>) is shared across "
                            "instances; use field(default_factory=...)",
                        )

    @staticmethod
    def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and _callee_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            callee = _callee_name(node.func)
            return callee in _MUTABLE_CTORS
        return False


#: The per-file syntactic rules defined in this module.
SYNTACTIC_RULES: Tuple[Type[Rule], ...] = (
    GlobalRngRule,
    WallClockRule,
    UnpicklableCallableRule,
    UnorderedMaterializationRule,
    MutableDefaultRule,
)


def _assemble_rules() -> Tuple[Type[Rule], ...]:
    # Imported lazily: flow_rules subclasses Rule and uses LintContext,
    # so a module-level import here would be circular.
    from repro.lint.flow_rules import (
        CacheWriteDisciplineRule,
        EffectOrderRule,
        RngAliasRule,
        SwallowedEvidenceRule,
        UnorderedRngFlowRule,
    )

    return SYNTACTIC_RULES + (
        RngAliasRule,
        UnorderedRngFlowRule,
        EffectOrderRule,
        SwallowedEvidenceRule,
        CacheWriteDisciplineRule,
    )


if TYPE_CHECKING:  # pragma: no cover - the lazy __getattr__ serves these
    ALL_RULES: Tuple[Type[Rule], ...]
    RULE_DOCS: Dict[str, str]


def __getattr__(name: str) -> object:
    """Lazy ``ALL_RULES``/``RULE_DOCS`` (PEP 562), cached after first use."""
    if name == "ALL_RULES":
        rules = _assemble_rules()
        globals()["ALL_RULES"] = rules
        return rules
    if name == "RULE_DOCS":
        docs = {r.rule_id: r.summary for r in _assemble_rules()}
        globals()["RULE_DOCS"] = docs
        return docs
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
