"""Flow-sensitive determinism rules RPL006–RPL010.

These rules run over the project-wide :class:`~repro.lint.callgraph.Project`
the engine attaches to :class:`~repro.lint.rules.LintContext`; with no
project attached (a rule invoked standalone on a bare tree) they emit
nothing rather than guess.

Each has a runtime twin: the fixture that trips the static rule also
produces a divergence or protocol violation under the
:mod:`repro.sanitize` sanitizer (``tests/sanitize/test_rule_runtime_pin.py``),
pinning the static analysis to observable misbehaviour.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Tuple

from repro.lint.callgraph import FunctionInfo
from repro.lint.dataflow import (
    APPLY,
    CACHE_FSYNC,
    CACHE_REPLACE,
    CHECKPOINT,
    MANIFEST,
    WAL_APPEND,
    _is_float_accumulation,
    _is_unordered_value,
    _local_unordered_names,
    _rng_names,
    cache_statement_effects,
    draw_calls,
    order_sensitive_params,
    rng_module_globals,
    statement_effects,
    unordered_iter_reason,
)
from repro.lint.rules import LintContext, Rule, _violation
from repro.lint.violation import Violation

__all__ = [
    "RngAliasRule",
    "UnorderedRngFlowRule",
    "EffectOrderRule",
    "SwallowedEvidenceRule",
    "CacheWriteDisciplineRule",
]


def _sequences(body: List[ast.stmt]) -> Iterator[List[ast.stmt]]:
    """Straight-line statement sequences: the body itself plus every
    compound-statement block, recursively (each loop/branch body is
    checked as its own sequence)."""
    yield body
    for stmt in body:
        for block in _blocks(stmt):
            yield from _sequences(block)


def _blocks(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
            yield block
    for handler in getattr(stmt, "handlers", []):
        yield list(handler.body)


class RngAliasRule(Rule):
    """RPL006 — one RNG stream aliased across multiple consumers.

    A module-level RNG instance reachable from more than one function is
    a shared stream: whichever consumer draws first shifts every later
    draw of the others. When the consumers are an event-path and an
    array-path (or a fast path and its scalar fallback), draw-order
    parity between them is load-bearing and *cannot* hold — the exact
    failure the two-engine differential suite exists to catch. Thread a
    dedicated ``derive_rng`` substream into each consumer instead.
    """

    rule_id = "RPL006"
    summary = "module-level RNG stream consumed by multiple functions (aliasing)"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        if ctx.project is None or ctx.module is None:
            return
        module = ctx.module
        for name, value in rng_module_globals(module).items():
            consumers = ctx.project.global_consumers(module.name, name)
            if len(consumers) < 2:
                continue
            shown = ", ".join(f"`{f.qualname}`" for f in consumers[:4])
            extra = "" if len(consumers) <= 4 else f" (+{len(consumers) - 4} more)"
            yield _violation(
                ctx, value, self.rule_id,
                f"module-level RNG stream `{name}` is consumed by "
                f"{len(consumers)} functions ({shown}{extra}); a shared "
                "stream couples their draw orders, so engine/fallback "
                "parity cannot hold — derive one substream per consumer "
                "(repro.utils.rng.derive_rng)",
            )


class UnorderedRngFlowRule(Rule):
    """RPL007 — RNG draws / float accumulation under unordered iteration.

    Iterating a set, ``glob`` result or ``os.listdir`` listing fixes no
    order; drawing from an RNG (or accumulating floats, which do not
    reassociate) inside such a loop makes the result depend on hash
    layout or the filesystem. The flow-sensitive half: a function that
    iterates a *parameter* order-sensitively taints its call sites, so
    passing a set literal to it is flagged at the call.
    """

    rule_id = "RPL007"
    summary = "RNG draw or float accumulation inside unordered iteration"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        if ctx.project is None or ctx.module is None:
            return
        module = ctx.module
        for info in module.functions.values():
            yield from self._check_direct_loops(info, ctx)
            yield from self._check_call_sites(info, ctx)

    def _check_direct_loops(
        self, info: FunctionInfo, ctx: LintContext
    ) -> Iterator[Violation]:
        module = info.module
        rng = _rng_names(info)
        local_unordered = _local_unordered_names(info.node, module.imports)
        for node in ast.walk(info.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            reason = unordered_iter_reason(node.iter, module.imports, local_unordered)
            if reason is None:
                continue
            body = ast.Module(body=list(node.body), type_ignores=[])
            draw = next(draw_calls(body, rng), None)
            if draw is not None:
                yield _violation(
                    ctx, draw, self.rule_id,
                    f"RNG draw inside iteration over {reason}: the stream "
                    "is consumed in an unstable order, so identical seeds "
                    "yield different results; iterate `sorted(...)`",
                )
                continue
            accum = next(
                (n for n in ast.walk(body) if _is_float_accumulation(n)), None
            )
            if accum is not None:
                yield _violation(
                    ctx, accum, self.rule_id,
                    f"float accumulation inside iteration over {reason}: "
                    "float sums do not reassociate, so the total depends "
                    "on hash/filesystem order; iterate `sorted(...)`",
                )

    def _check_call_sites(
        self, info: FunctionInfo, ctx: LintContext
    ) -> Iterator[Violation]:
        assert ctx.project is not None
        module = info.module
        local_unordered = _local_unordered_names(info.node, module.imports)
        for site in info.calls:
            if site.target is None or site.target not in ctx.project.functions:
                continue
            callee = ctx.project.functions[site.target]
            if callee is info:
                continue
            sensitive = order_sensitive_params(callee)
            if not sensitive:
                continue
            for param, arg in self._bind_args(callee, site.node):
                if param not in sensitive:
                    continue
                if _is_unordered_value(arg, module.imports, local_unordered):
                    yield _violation(
                        ctx, site.node, self.rule_id,
                        f"unordered argument for parameter `{param}` of "
                        f"`{callee.qualname}`, which draws RNG values or "
                        "accumulates floats while iterating it; pass "
                        "`sorted(...)` so the draw order is fixed",
                    )

    @staticmethod
    def _bind_args(
        callee: FunctionInfo, call: ast.Call
    ) -> Iterator[Tuple[str, ast.expr]]:
        params = [
            a.arg
            for a in list(callee.node.args.posonlyargs) + list(callee.node.args.args)
        ]
        if callee.class_name is not None and params and params[0] == "self":
            params = params[1:]
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                yield params[i], arg
        for kw in call.keywords:
            if kw.arg is not None:
                yield kw.arg, kw.value


class EffectOrderRule(Rule):
    """RPL008 — stream effect ordering (must-precede edges).

    The crash-safety argument of ``repro.stream`` (DESIGN §11) rests on
    two dominance relations: a WAL append must precede the estimator
    apply it makes durable (or a crash between them double-counts
    evidence on replay), and the manifest write must precede the shard
    checkpoints it indexes (or resume sees checkpoints the manifest
    does not describe). The rule computes each statement's transitive
    effect set over the call graph and flags straight-line sequences
    that perform the dependent effect before its prerequisite.
    """

    rule_id = "RPL008"
    summary = "stream effect order: WAL append before apply; manifest before checkpoint"

    #: (late effect, required-earlier effect, explanation)
    _PAIRS: Tuple[Tuple[str, str, str], ...] = (
        (
            APPLY, WAL_APPEND,
            "estimator apply precedes the WAL append that makes the "
            "evidence durable; a crash between them double-counts on "
            "replay — log first, then apply",
        ),
        (
            CHECKPOINT, MANIFEST,
            "checkpoint write precedes the manifest write that indexes "
            "it; resume would see shard state the manifest does not "
            "describe — write the manifest first",
        ),
    )

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        if ctx.project is None or ctx.module is None:
            return
        if "stream" not in Path(ctx.path).parts:
            return
        for info in ctx.module.functions.values():
            for seq in _sequences(list(info.node.body)):
                yield from self._check_sequence(info, seq, ctx)

    def _check_sequence(
        self, info: FunctionInfo, seq: List[ast.stmt], ctx: LintContext
    ) -> Iterator[Violation]:
        assert ctx.project is not None
        effects = [statement_effects(ctx.project, info, stmt) for stmt in seq]
        if not any(effects):
            return
        for late, early, why in self._PAIRS:
            for i, eff_i in enumerate(effects):
                if late not in eff_i or early in eff_i:
                    continue
                if any(early in effects[j] for j in range(i + 1, len(effects))):
                    yield _violation(
                        ctx, seq[i], self.rule_id,
                        f"in `{info.qualname}`: {why}",
                    )
                    break


class SwallowedEvidenceRule(Rule):
    """RPL009 — handlers that swallow evidence without counting it.

    In the stream/exec layers every packet, record and task is
    *evidence*: the estimator's loss counts, the sink's drop stats and
    the supervisor's retry budget all assume nothing disappears
    silently. An ``except`` whose body neither re-raises nor does any
    real work (a bare ``pass``/``continue``) deletes evidence from the
    stats — crash-recovery accounting and the A8-style drop audits stop
    balancing. Count the failure or re-raise; genuinely benign cleanup
    races get a documented pragma.
    """

    rule_id = "RPL009"
    summary = "exception handler in stream/exec swallows evidence without counting"

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        parts = set(Path(ctx.path).parts)
        if not parts & {"stream", "exec"}:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_silent(node.body):
                caught = (
                    ast.unparse(node.type) if node.type is not None else "Exception"
                )
                yield _violation(
                    ctx, node, self.rule_id,
                    f"`except {caught}` swallows the failure without "
                    "counting it; evidence accounting (drop stats, retry "
                    "budgets, WAL replay) must balance — increment a "
                    "counter, re-raise, or document the benign race with "
                    "a pragma",
                )

    @staticmethod
    def _is_silent(body: List[ast.stmt]) -> bool:
        """True when the handler does nothing observable.

        ``break`` is deliberately not silent: it transfers control to a
        fallback path after the loop, which is handling, not swallowing.
        ``continue`` *is* silent — it skips the record entirely.
        """
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring / ellipsis
            return False
        return True


class CacheWriteDisciplineRule(Rule):
    """RPL010 — cache-entry write discipline.

    The content-addressed stores (``exec/cache.py``, ``workloads/
    scenario_cache.py``) promise readers that every entry they can open
    is complete and immutable: loads never lock, racing writers converge
    on identical bytes, and a crash can only lose an entry, never corrupt
    one. Two code shapes break that promise:

    * publishing the entry (``os.replace``/``os.rename``) *before*
      fsyncing its bytes — a crash shortly after the rename can surface
      a truncated entry under the final name;
    * opening an entry for in-place update (``"r+"``, ``"a"``, ``"w"``
      on an existing path) — read-modify-write makes concurrent readers
      see half-rewritten files and breaks the racing-writers-converge
      argument. Entries are write-once: build a temp file, fsync it,
      then ``os.replace`` into place.

    The ordering half reuses the RPL008 machinery over cache-write
    effect summaries; the mode half is syntactic. Scoped to cache-layer
    files (any path segment containing ``cache``).
    """

    rule_id = "RPL010"
    summary = "cache write discipline: fsync before rename-publish; entries immutable"

    #: ``open``/``Path.open`` mode strings that update an entry in place.
    _INPLACE_MARKS = ("+", "a")

    def check(self, tree: ast.Module, ctx: LintContext) -> Iterator[Violation]:
        if not any("cache" in part.lower() for part in Path(ctx.path).parts):
            return
        yield from self._in_place_opens(tree, ctx)
        if ctx.project is None or ctx.module is None:
            return
        for info in ctx.module.functions.values():
            for seq in _sequences(list(info.node.body)):
                yield from self._check_sequence(info, seq, ctx)

    def _in_place_opens(
        self, tree: ast.Module, ctx: LintContext
    ) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            mode = self._open_mode(node)
            if mode is None:
                continue
            if any(mark in mode for mark in self._INPLACE_MARKS):
                yield _violation(
                    ctx, node, self.rule_id,
                    f"cache entry opened {mode!r} for in-place update; "
                    "entries are immutable once published (readers never "
                    "lock, racing writers must converge) — write a temp "
                    "file, fsync, then os.replace into place",
                )

    @staticmethod
    def _open_mode(call: ast.Call) -> "str | None":
        """The constant mode string of an ``open``-style call, if any."""
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            args, mode_pos = call.args, 1
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            args, mode_pos = call.args, 0
        else:
            return None
        mode: "ast.expr | None" = None
        if len(args) > mode_pos:
            mode = args[mode_pos]
        else:
            mode = next(
                (kw.value for kw in call.keywords if kw.arg == "mode"), None
            )
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def _check_sequence(
        self, info: FunctionInfo, seq: List[ast.stmt], ctx: LintContext
    ) -> Iterator[Violation]:
        assert ctx.project is not None
        effects = [cache_statement_effects(ctx.project, info, stmt) for stmt in seq]
        if not any(effects):
            return
        for i, eff_i in enumerate(effects):
            if CACHE_REPLACE not in eff_i or CACHE_FSYNC in eff_i:
                continue
            if any(CACHE_FSYNC in effects[j] for j in range(i + 1, len(effects))):
                yield _violation(
                    ctx, seq[i], self.rule_id,
                    f"in `{info.qualname}`: entry publish (os.replace) "
                    "precedes the fsync that makes its bytes durable; a "
                    "crash in between surfaces a truncated entry under "
                    "the final name — fsync the temp file, then rename",
                )
                break
