"""Baseline support: adopt reprolint on a legacy tree without churn.

A baseline file records, per ``(path, rule)``, how many violations are
*accepted* — typically the pre-existing findings of a tree the linter is
being turned on for (``tests/`` keeps its intentionally-bad rule
fixtures, for instance). ``--baseline FILE`` then subtracts the
recorded allowance: a scan fails only when some file accumulates *more*
violations of a rule than the baseline grants, and only the overflow is
reported. The ratchet is one-way — fixing a baselined violation never
breaks the build, introducing a new one is flagged immediately.

Counts are keyed by ``(posix path, rule)`` rather than exact
``(line, message)`` so unrelated edits that shift line numbers do not
invalidate the baseline; the trade-off (a new violation of an already-
baselined rule in the same file masks a fixed old one) is the standard
one and keeps the file diff-stable.

``--update-baseline FILE`` rewrites the file from the current scan.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Dict, List, Sequence, Tuple

from repro.lint.engine import LintError
from repro.lint.violation import Violation

__all__ = [
    "FORMAT_VERSION",
    "baseline_from_violations",
    "filter_with_baseline",
    "load_baseline",
    "save_baseline",
]

FORMAT_VERSION = 1

#: ``{posix path: {rule: accepted count}}``
Baseline = Dict[str, Dict[str, int]]


def _norm(path: str) -> str:
    return PurePath(path).as_posix()


def baseline_from_violations(violations: Sequence[Violation]) -> Baseline:
    baseline: Baseline = {}
    for violation in violations:
        per_file = baseline.setdefault(_norm(violation.path), {})
        per_file[violation.rule] = per_file.get(violation.rule, 0) + 1
    return baseline


def filter_with_baseline(
    violations: Sequence[Violation], baseline: Baseline
) -> Tuple[List[Violation], int]:
    """Split a scan against its baseline.

    Returns ``(new_violations, suppressed_count)``. Within one
    ``(path, rule)`` bucket the allowance is spent on the earliest
    violations (source order), so the reported overflow points at the
    bottom-most findings — most likely the freshly added ones.
    """
    spent: Dict[Tuple[str, str], int] = {}
    fresh: List[Violation] = []
    suppressed = 0
    for violation in sorted(violations):
        key = (_norm(violation.path), violation.rule)
        allowed = baseline.get(key[0], {}).get(key[1], 0)
        used = spent.get(key, 0)
        if used < allowed:
            spent[key] = used + 1
            suppressed += 1
        else:
            fresh.append(violation)
    return fresh, suppressed


def load_baseline(path: str) -> Baseline:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
        raise LintError(
            f"baseline {path}: unsupported format "
            f"(expected version {FORMAT_VERSION})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        raise LintError(f"baseline {path}: missing `entries` mapping")
    baseline: Baseline = {}
    for file_path, rules in entries.items():
        if not isinstance(rules, dict):
            raise LintError(f"baseline {path}: entry for {file_path!r} is not a mapping")
        baseline[_norm(str(file_path))] = {
            str(rule): int(count) for rule, count in rules.items()
        }
    return baseline


def save_baseline(path: str, baseline: Baseline) -> None:
    payload = {
        "version": FORMAT_VERSION,
        "entries": {
            file_path: dict(sorted(rules.items()))
            for file_path, rules in sorted(baseline.items())
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
