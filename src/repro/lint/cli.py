"""Command-line front end: ``python -m repro.lint [paths...]``.

Exit status: 0 — clean; 1 — violations reported; 2 — usage, I/O or
syntax error (a file the linter cannot even parse is a build problem,
not a determinism finding).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import (
    baseline_from_violations,
    filter_with_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import LintError, lint_paths
from repro.lint.rules import RULE_DOCS

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="reprolint: static determinism/picklability checks "
        "(rules RPL001-RPL010; see DESIGN.md §'Static guarantees').",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. `src benchmarks`)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract accepted per-(path, rule) counts recorded in FILE; "
        "only violations beyond the baseline fail the lint",
    )
    parser.add_argument(
        "--update-baseline",
        metavar="FILE",
        help="rewrite FILE from the current scan and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule_id, summary in sorted(RULE_DOCS.items()):
            print(f"{rule_id}  {summary}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (and --list-rules not requested)", file=sys.stderr)
        return 2
    try:
        violations, files_scanned = lint_paths(args.paths)
        if args.update_baseline:
            save_baseline(
                args.update_baseline, baseline_from_violations(violations)
            )
            print(
                f"reprolint: baseline written to {args.update_baseline} "
                f"({len(violations)} accepted violation(s))"
            )
            return 0
        suppressed = 0
        if args.baseline:
            violations, suppressed = filter_with_baseline(
                violations, load_baseline(args.baseline)
            )
    except LintError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        report = {
            "violations": [v.as_json() for v in violations],
            "files_scanned": files_scanned,
            "clean": not violations,
        }
        if args.baseline:
            report["baseline"] = args.baseline
            report["suppressed"] = suppressed
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        lines: List[str] = [v.render_text() for v in violations]
        for line in lines:
            print(line)
        status = "clean" if not violations else f"{len(violations)} violation(s)"
        if suppressed:
            status += f" ({suppressed} baselined)"
        print(f"reprolint: {files_scanned} file(s) scanned, {status}")
    return 1 if violations else 0
