"""Flow facts for the determinism rules: RNG values, iteration order,
stream effects.

Three families of facts are derived over the :class:`~repro.lint.callgraph.Project`:

* **RNG values** — which expressions denote a seeded RNG stream
  (constructor calls like ``derive_rng``/``default_rng``/``Random``,
  parameters named or annotated like generators) and which call sites
  *draw* from one.  RPL006 uses the constructor facts to find
  module-level streams; RPL007 uses the draw facts.
* **Iteration order** — which iterables are provably unordered (set
  literals/comprehensions/calls, set operations, ``glob``/``scandir``/
  ``listdir``/``iterdir`` results) after tracking simple local
  assignments.  Wrapping in ``sorted(...)`` launders the order.
* **Effects** — which stream-layer primitives a function (transitively)
  performs: WAL appends, estimator applies, manifest writes, checkpoint
  writes.  RPL008 checks must-precede edges over these summaries.

Like the call graph, everything here is best-effort and tuned for
precision over recall: a miss costs a lint gap, a false positive costs
developer trust, so every matcher is curated.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.lint.callgraph import FunctionInfo, ModuleInfo, Project
from repro.lint.rules import _Imports

__all__ = [
    "DRAW_METHODS",
    "EFFECTS",
    "rng_module_globals",
    "is_rng_parameter",
    "draw_calls",
    "unordered_iter_reason",
    "order_sensitive_params",
    "effects_of",
    "statement_effects",
    "cache_effects_of",
    "cache_statement_effects",
]

#: Methods that consume values from a Generator/Random stream. The
#: ``sample`` family is included because ``LinkModel.sample(rng, t)``
#: style helpers draw from the rng they are handed.
DRAW_METHODS: FrozenSet[str] = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "gauss", "geometric", "getrandbits",
        "integers", "laplace", "lognormal", "logseries", "multinomial",
        "normal", "normalvariate", "paretovariate", "permutation",
        "poisson", "randint", "random", "randrange", "sample", "shuffle",
        "standard_exponential", "standard_gamma", "standard_normal",
        "uniform", "vonmises", "weibull",
    }
)

#: Substrings that mark a name as RNG-flavoured for draw detection.
_RNG_NAME_HINTS = ("rng", "random", "gen")

#: Constructor callables that yield a seeded stream object.
_RNG_CTOR_NAMES = frozenset({"derive_rng", "default_rng", "Random", "RandomState", "Generator", "link_rng"})

#: Filesystem-enumeration callables whose result order is OS-dependent.
_FS_UNORDERED_FUNCS = frozenset({"listdir", "scandir"})
_FS_UNORDERED_METHODS = frozenset({"glob", "iglob", "rglob", "iterdir"})

#: Set-returning methods (receiver assumed set-ish when these appear).
_SET_OP_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

# --------------------------------------------------------------------------
# RNG facts
# --------------------------------------------------------------------------


def is_rng_ctor(call: ast.Call, imports: _Imports) -> bool:
    """Does this call construct a seeded RNG stream object?"""
    func = call.func
    name: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
        if name in imports.names:
            _, name = imports.names[name]
    elif isinstance(func, ast.Attribute):
        base = imports.resolve_module(func.value)
        if base in {"random", "numpy.random", "np.random"}:
            name = func.attr
        elif func.attr in {"derive_rng", "link_rng"}:
            name = func.attr
    return name in _RNG_CTOR_NAMES


def rng_module_globals(module: ModuleInfo) -> Dict[str, ast.expr]:
    """Module-level names bound to an RNG stream at import time."""
    out: Dict[str, ast.expr] = {}
    for name, value in module.module_assigns.items():
        if isinstance(value, ast.Call) and is_rng_ctor(value, module.imports):
            out[name] = value
    return out


def is_rng_parameter(arg: ast.arg) -> bool:
    """Parameter that, by name or annotation, carries an RNG stream."""
    lowered = arg.arg.lower()
    if lowered in {"rng", "gen", "generator", "rand"} or lowered.endswith("_rng"):
        return True
    ann = arg.annotation
    text: Optional[str] = None
    if isinstance(ann, ast.Name):
        text = ann.id
    elif isinstance(ann, ast.Attribute):
        text = ann.attr
    elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        text = ann.value
    return text in {"Generator", "Random", "RandomState"} if text else False


def _rng_names(info: FunctionInfo) -> Set[str]:
    """Names (params + locals) bound to an RNG stream in this function."""
    names: Set[str] = set()
    args = info.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if is_rng_parameter(arg):
            names.add(arg.arg)
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if is_rng_ctor(node.value, info.module.imports):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
    return names


def _names_in(expr: ast.expr) -> Iterator[str]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id


def draw_calls(scope: ast.AST, rng_names: Set[str]) -> Iterator[ast.Call]:
    """Call sites inside ``scope`` that consume RNG values.

    A call draws when (a) it is ``<rng-ish>.method(...)`` with a known
    draw method, or (b) any argument is a known RNG name (helpers like
    ``model.sample(rng, t)`` advance the stream they are handed).
    """
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in DRAW_METHODS:
            base = func.value
            if isinstance(base, ast.Name) and (
                base.id in rng_names
                or any(h in base.id.lower() for h in _RNG_NAME_HINTS)
            ):
                yield node
                continue
            if isinstance(base, ast.Attribute) and any(
                h in base.attr.lower() for h in _RNG_NAME_HINTS
            ):
                yield node
                continue
        if any(
            isinstance(a, ast.Name) and a.id in rng_names
            for a in list(node.args) + [kw.value for kw in node.keywords]
        ):
            yield node


# --------------------------------------------------------------------------
# Iteration-order facts
# --------------------------------------------------------------------------


def _local_unordered_names(scope: ast.AST, imports: _Imports) -> Set[str]:
    """Names assigned (in this scope) from a provably-unordered value."""
    names: Set[str] = set()
    for _ in range(2):  # one extra pass so x = s; y = x chains resolve
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                if _is_unordered_value(node.value, imports, names):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
    return names


def _is_unordered_value(
    expr: ast.expr, imports: _Imports, known: Set[str]
) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in known
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in {"set", "frozenset"}:
                return True
            if func.id in imports.names:
                mod, orig = imports.names[func.id]
                if mod in {"glob", "os"} and orig in (
                    {"glob", "iglob"} | _FS_UNORDERED_FUNCS
                ):
                    return True
            return False
        if isinstance(func, ast.Attribute):
            base = imports.resolve_module(func.value)
            if base == "glob" and func.attr in {"glob", "iglob"}:
                return True
            if base == "os" and func.attr in _FS_UNORDERED_FUNCS:
                return True
            if func.attr in _FS_UNORDERED_METHODS:
                return True
            if func.attr in _SET_OP_METHODS:
                return True
    return False


def unordered_iter_reason(
    iter_expr: ast.expr,
    imports: _Imports,
    local_unordered: Set[str],
) -> Optional[str]:
    """Why iterating ``iter_expr`` is order-unstable, or None if it isn't.

    ``sorted(...)`` (and ``list(sorted(...))``) launder the order and
    return None.
    """
    if isinstance(expr := iter_expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            return None
        if isinstance(func, ast.Name) and func.id in {"list", "tuple"}:
            if expr.args and isinstance(expr.args[0], ast.Call):
                inner = expr.args[0].func
                if isinstance(inner, ast.Name) and inner.id == "sorted":
                    return None
    if isinstance(iter_expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(iter_expr, ast.Name) and iter_expr.id in local_unordered:
        return f"`{iter_expr.id}` (assigned from an unordered value)"
    if _is_unordered_value(iter_expr, imports, local_unordered):
        if isinstance(iter_expr, ast.Call):
            func = iter_expr.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else "call"
            )
            return f"`{name}(...)` (unordered result)"
        return "an unordered value"
    return None


def order_sensitive_params(info: FunctionInfo) -> Set[str]:
    """Parameters this function iterates with RNG draws or float
    accumulation in the loop body (order-sensitivity summary).

    Callers passing a set-ish/glob-ish argument for such a parameter
    inherit the order instability — RPL007 flags those call sites.
    """
    params = {
        a.arg
        for a in list(info.node.args.posonlyargs)
        + list(info.node.args.args)
        + list(info.node.args.kwonlyargs)
    }
    rng = _rng_names(info)
    out: Set[str] = set()
    for node in ast.walk(info.node):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        if not (isinstance(node.iter, ast.Name) and node.iter.id in params):
            continue
        if _loop_body_order_sensitive(node, rng):
            out.add(node.iter.id)
    return out


def _loop_body_order_sensitive(
    loop: Union[ast.For, ast.AsyncFor], rng_names: Set[str]
) -> bool:
    body = ast.Module(body=list(loop.body), type_ignores=[])
    if next(draw_calls(body, rng_names), None) is not None:
        return True
    return any(_is_float_accumulation(n) for n in ast.walk(body))


def _is_float_accumulation(node: ast.AST) -> bool:
    """``x += <float-ish>`` — reassociating float sums changes bits."""
    if not isinstance(node, ast.AugAssign) or not isinstance(
        node.op, (ast.Add, ast.Sub)
    ):
        return False
    return not _provably_int(node.value)


def _provably_int(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant):
        return isinstance(expr.value, int) and not isinstance(expr.value, bool)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in {"len", "int", "ord"}
    if isinstance(expr, ast.UnaryOp):
        return _provably_int(expr.operand)
    return False


# --------------------------------------------------------------------------
# Effect summaries (RPL008)
# --------------------------------------------------------------------------

#: Effect kinds, in protocol order of mention.
WAL_APPEND = "wal-append"
APPLY = "estimator-apply"
MANIFEST = "manifest-write"
CHECKPOINT = "checkpoint-write"

EFFECTS: Tuple[str, ...] = (WAL_APPEND, APPLY, MANIFEST, CHECKPOINT)

#: Dotted-suffix -> effects. A match *overrides* (the designated
#: primitive's own body is not traversed further), so ``_save_manifest``
#: contributes only a manifest write even though it persists via
#: ``save_checkpoint`` internally.
_EFFECT_BASES: Tuple[Tuple[str, FrozenSet[str]], ...] = (
    ("WriteAheadLog.append", frozenset({WAL_APPEND})),
    ("ShardWorker.log", frozenset({WAL_APPEND})),
    ("ShardWorker.absorb", frozenset({APPLY})),
    ("shard_apply_task", frozenset({APPLY})),
    ("_save_manifest", frozenset({MANIFEST})),
    ("ShardWorker.checkpoint", frozenset({CHECKPOINT})),
    ("save_checkpoint", frozenset({CHECKPOINT})),
)

#: Bare attribute names distinctive enough to match unresolved calls
#: (``self.shards[i].log(...)`` defeats type inference). ``append`` is
#: deliberately absent: too generic (every list has one).
_RAW_ATTR_EFFECTS: Dict[str, FrozenSet[str]] = {
    "log": frozenset({WAL_APPEND}),
    "absorb": frozenset({APPLY}),
    "_save_manifest": frozenset({MANIFEST}),
    "checkpoint": frozenset({CHECKPOINT}),
}


def _manifest_override(site_node: ast.Call) -> bool:
    """``save_checkpoint(store, MANIFEST/"...manifest...", ...)`` writes
    the manifest blob, not a shard checkpoint."""
    if len(site_node.args) < 2:
        return False
    name = site_node.args[1]
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        return "manifest" in name.value
    if isinstance(name, ast.Name):
        return "MANIFEST" in name.id.upper()
    if isinstance(name, ast.Attribute):
        return "MANIFEST" in name.attr.upper()
    return False


def _base_effects(target: Optional[str], attr: str, node: ast.Call) -> Optional[FrozenSet[str]]:
    if target is not None:
        for suffix, effects in _EFFECT_BASES:
            if target == suffix or target.endswith("." + suffix):
                if suffix == "save_checkpoint" and _manifest_override(node):
                    return frozenset({MANIFEST})
                return effects
        # Resolved to a known non-effect callee (e.g. ``math.log``):
        # do NOT fall back to bare-name matching.
        return None
    if attr in _RAW_ATTR_EFFECTS:
        return _RAW_ATTR_EFFECTS[attr]
    if attr == "save_checkpoint" and _manifest_override(node):
        return frozenset({MANIFEST})
    return None


def effects_of(
    project: Project,
    info: FunctionInfo,
    _seen: Optional[Set[str]] = None,
) -> FrozenSet[str]:
    """Transitive effect set of one function over the call graph."""
    for suffix, effects in _EFFECT_BASES:
        if info.qualname == suffix or info.qualname.endswith("." + suffix):
            return effects
    seen = _seen if _seen is not None else set()
    if info.qualname in seen:
        return frozenset()
    seen.add(info.qualname)
    out: Set[str] = set()
    for site in info.calls:
        base = _base_effects(site.target, site.attr, site.node)
        if base is not None:
            out |= base
            continue
        if site.target is not None and site.target in project.functions:
            out |= effects_of(project, project.functions[site.target], seen)
    return frozenset(out)


def statement_effects(
    project: Project, info: FunctionInfo, stmt: ast.stmt
) -> FrozenSet[str]:
    """Effects one top-level statement of ``info`` performs (transitively)."""
    out: Set[str] = set()
    for site in info.calls_in(stmt):
        base = _base_effects(site.target, site.attr, site.node)
        if base is not None:
            out |= base
        elif site.target is not None and site.target in project.functions:
            out |= effects_of(project, project.functions[site.target], {info.qualname})
    return frozenset(out)


# --------------------------------------------------------------------------
# Cache-write effects (RPL010)
# --------------------------------------------------------------------------

#: Effect kinds of the content-addressed stores' write path.
CACHE_FSYNC = "cache-fsync"
CACHE_REPLACE = "cache-replace"

#: Resolved dotted callees -> cache-write effect. ``replace``/``rename``
#: deliberately require full resolution (``os.replace``): the bare attrs
#: collide with ``str.replace`` and ``Path.rename`` on arbitrary values.
_CACHE_EFFECT_TARGETS: Dict[str, FrozenSet[str]] = {
    "os.fsync": frozenset({CACHE_FSYNC}),
    "os.replace": frozenset({CACHE_REPLACE}),
    "os.rename": frozenset({CACHE_REPLACE}),
    "shutil.move": frozenset({CACHE_REPLACE}),
}

#: Bare attribute names distinctive enough to match unresolved calls.
_CACHE_RAW_ATTRS: Dict[str, FrozenSet[str]] = {
    "fsync": frozenset({CACHE_FSYNC}),
}


def _cache_base_effects(target: Optional[str], attr: str) -> Optional[FrozenSet[str]]:
    if target is not None:
        return _CACHE_EFFECT_TARGETS.get(target)
    return _CACHE_RAW_ATTRS.get(attr)


def cache_effects_of(
    project: Project,
    info: FunctionInfo,
    _seen: Optional[Set[str]] = None,
) -> FrozenSet[str]:
    """Transitive cache-write effect set of one function."""
    seen = _seen if _seen is not None else set()
    if info.qualname in seen:
        return frozenset()
    seen.add(info.qualname)
    out: Set[str] = set()
    for site in info.calls:
        base = _cache_base_effects(site.target, site.attr)
        if base is not None:
            out |= base
            continue
        if site.target is not None and site.target in project.functions:
            out |= cache_effects_of(project, project.functions[site.target], seen)
    return frozenset(out)


def cache_statement_effects(
    project: Project, info: FunctionInfo, stmt: ast.stmt
) -> FrozenSet[str]:
    """Cache-write effects one statement of ``info`` performs (transitively)."""
    out: Set[str] = set()
    for site in info.calls_in(stmt):
        base = _cache_base_effects(site.target, site.attr)
        if base is not None:
            out |= base
        elif site.target is not None and site.target in project.functions:
            out |= cache_effects_of(
                project, project.functions[site.target], {info.qualname}
            )
    return frozenset(out)
