"""The one datatype every reprolint layer exchanges."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One rule breach at one source location.

    Ordering is (path, line, col, rule) so reports and golden JSON files
    are stable whatever order the rules emitted them in.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
