"""File walking, suppression handling and rule dispatch for reprolint.

Since the flow rules (RPL006–009) need a whole-program view, linting is
a two-phase pass: every file is parsed once into a
:class:`~repro.lint.callgraph.Project` (symbol tables + call graph),
then each module is checked by every rule with the project attached to
its :class:`~repro.lint.rules.LintContext`.  Single-source entry points
(``lint_source``/``lint_file``) build a one-module project, so fixtures
and editor integrations keep working unchanged — cross-module facts are
simply absent.

Suppressions are pragma comments, parsed from real COMMENT tokens (via
:mod:`tokenize`) so the marker text inside a string literal never
disables anything:

* ``# reprolint: disable=RPL001`` — suppress the listed rule(s) on this
  line (comma-separated; bare ``disable`` suppresses every rule);
* ``# reprolint: disable-next-line=RPL002`` — same, for the following
  *logical statement* (chains: a stack of ``disable-next-line`` comments
  all apply to the first statement after them).  For a decorated
  ``def``/``class`` the suppression covers the decorators and the
  signature; for a multi-line statement it covers every line of the
  statement.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.callgraph import ModuleInfo, Project
from repro.lint.rules import ALL_RULES, SIM_PATH_SEGMENTS, LintContext
from repro.lint.violation import Violation

__all__ = ["LintError", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next-line)?)\s*(?:=\s*(?P<rules>[A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every rule" in a suppression set.
_ALL = "*"


class LintError(RuntimeError):
    """A file could not be linted (I/O or syntax error)."""


def _statement_extents(tree: ast.Module) -> List[Tuple[int, int]]:
    """``(start, end)`` line spans of every statement, decorators included.

    For function/class definitions the span stops at the signature (the
    line before the first body statement): a pragma on a ``def`` should
    cover its decorators, arguments and defaults, not the whole body.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, min(d.lineno for d in decorators))
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            end = node.body[0].lineno - 1 if node.body else node.lineno
            end = max(end, node.lineno)
        else:
            end = node.end_lineno or node.lineno
        extents.append((start, end))
    return extents


def _suppressions(source: str, tree: Optional[ast.Module] = None) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (or ``{"*"}``)."""
    out: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse
        return out  # ast.parse will raise a proper error for the caller
    anchors: Dict[int, Set[str]] = {}  # first-code-line -> pending rule ids
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            ids = (
                {r.strip() for r in rules.split(",") if r.strip()}
                if rules
                else {_ALL}
            )
            if match.group("kind") == "disable-next-line":
                pending |= ids
            else:
                out.setdefault(tok.start[0], set()).update(ids)
        elif tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                          tokenize.DEDENT):
            continue
        elif pending:
            # First code token after a disable-next-line stack.
            anchors.setdefault(tok.start[0], set()).update(pending)
            pending = set()
    if not anchors:
        return out
    extents = _statement_extents(tree) if tree is not None else []
    for anchor_line, ids in anchors.items():
        # Expand the anchor to the logical statement(s) starting there,
        # so the pragma covers decorated defs and multi-line statements.
        expanded = False
        for start, end in extents:
            if start == anchor_line:
                expanded = True
                for line in range(start, end + 1):
                    out.setdefault(line, set()).update(ids)
        if not expanded:
            out.setdefault(anchor_line, set()).update(ids)
    return out


def default_sim_path(path: Union[str, Path]) -> bool:
    """Is this file part of the simulation paths RPL002 protects?"""
    return not SIM_PATH_SEGMENTS.isdisjoint(Path(path).parts)


def _parse(source: str, path: str) -> ast.Module:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc.msg} (line {exc.lineno})") from exc


def _lint_module(
    project: Project,
    module: ModuleInfo,
    *,
    in_sim_path: Optional[bool] = None,
) -> List[Violation]:
    if in_sim_path is None:
        in_sim_path = default_sim_path(module.path)
    ctx = LintContext(
        path=module.path,
        in_sim_path=in_sim_path,
        project=project,
        module=module,
    )
    suppressed = _suppressions(module.source, module.tree)
    found: List[Violation] = []
    for rule_cls in ALL_RULES:
        for violation in rule_cls().check(module.tree, ctx):
            rules_off = suppressed.get(violation.line, ())
            if _ALL in rules_off or violation.rule in rules_off:
                continue
            found.append(violation)
    return sorted(found)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    in_sim_path: Optional[bool] = None,
) -> List[Violation]:
    """Lint one module's source text; returns sorted violations.

    ``in_sim_path`` defaults to a path-segment check (``core``, ``net``,
    ``workloads``, ``exec`` or ``stream`` anywhere in the path). The
    module is linted as a one-file project: flow rules see its own
    symbols but no cross-module facts.
    """
    tree = _parse(source, path)
    project = Project.build([(path, source, tree)])
    module = next(iter(project.modules.values()))
    return _lint_module(project, module, in_sim_path=in_sim_path)


def lint_file(path: Union[str, Path], display: Optional[str] = None) -> List[Violation]:
    """Lint one file (``display`` overrides the reported path)."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{p}: cannot read: {exc}") from exc
    return lint_source(source, display or str(p))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise LintError(f"{p}: no such file or directory")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(paths: Sequence[Union[str, Path]]) -> Tuple[List[Violation], int]:
    """Lint every ``.py`` under ``paths``; returns (violations, files seen).

    All files are parsed into one :class:`Project` first, so the flow
    rules see cross-module call edges and global reads across the whole
    invocation.
    """
    sources: List[Tuple[str, str, ast.Module]] = []
    for file_path in iter_python_files(paths):
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"{file_path}: cannot read: {exc}") from exc
        sources.append((str(file_path), text, _parse(text, str(file_path))))
    project = Project.build(sources)
    violations: List[Violation] = []
    for module in project.modules.values():
        violations.extend(_lint_module(project, module))
    return sorted(violations), len(sources)
