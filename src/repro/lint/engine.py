"""File walking, suppression handling and rule dispatch for reprolint.

Suppressions are pragma comments, parsed from real COMMENT tokens (via
:mod:`tokenize`) so the marker text inside a string literal never
disables anything:

* ``# reprolint: disable=RPL001`` — suppress the listed rule(s) on this
  line (comma-separated; bare ``disable`` suppresses every rule);
* ``# reprolint: disable-next-line=RPL002`` — same, for the following
  line (chains: a stack of ``disable-next-line`` comments all apply to
  the first non-comment line after them).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.rules import ALL_RULES, SIM_PATH_SEGMENTS, LintContext
from repro.lint.violation import Violation

__all__ = ["LintError", "lint_source", "lint_file", "lint_paths", "iter_python_files"]

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next-line)?)\s*(?:=\s*(?P<rules>[A-Z0-9,\s]+))?"
)

#: Sentinel meaning "every rule" in a suppression set.
_ALL = "*"


class LintError(RuntimeError):
    """A file could not be linted (I/O or syntax error)."""


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule ids (or ``{"*"}``)."""
    out: Dict[int, Set[str]] = {}
    pending: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse
        return out  # ast.parse will raise a proper error for the caller
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _PRAGMA.search(tok.string)
            if match is None:
                continue
            rules = match.group("rules")
            ids = (
                {r.strip() for r in rules.split(",") if r.strip()}
                if rules
                else {_ALL}
            )
            if match.group("kind") == "disable-next-line":
                pending |= ids
            else:
                out.setdefault(tok.start[0], set()).update(ids)
        elif tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                          tokenize.DEDENT):
            continue
        elif pending:
            # First code token after a disable-next-line stack.
            out.setdefault(tok.start[0], set()).update(pending)
            pending = set()
    return out


def default_sim_path(path: Union[str, Path]) -> bool:
    """Is this file part of the simulation paths RPL002 protects?"""
    return not SIM_PATH_SEGMENTS.isdisjoint(Path(path).parts)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    in_sim_path: Optional[bool] = None,
) -> List[Violation]:
    """Lint one module's source text; returns sorted violations.

    ``in_sim_path`` defaults to a path-segment check (``core``, ``net``,
    ``workloads`` or ``exec`` anywhere in the path).
    """
    if in_sim_path is None:
        in_sim_path = default_sim_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc.msg} (line {exc.lineno})") from exc
    ctx = LintContext(path=path, in_sim_path=in_sim_path)
    suppressed = _suppressions(source)
    found: List[Violation] = []
    for rule_cls in ALL_RULES:
        for violation in rule_cls().check(tree, ctx):
            rules_off = suppressed.get(violation.line, ())
            if _ALL in rules_off or violation.rule in rules_off:
                continue
            found.append(violation)
    return sorted(found)


def lint_file(path: Union[str, Path], display: Optional[str] = None) -> List[Violation]:
    """Lint one file (``display`` overrides the reported path)."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{p}: cannot read: {exc}") from exc
    return lint_source(source, display or str(p))


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterable[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.is_file():
            candidates = [p]
        else:
            raise LintError(f"{p}: no such file or directory")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(paths: Sequence[Union[str, Path]]) -> Tuple[List[Violation], int]:
    """Lint every ``.py`` under ``paths``; returns (violations, files seen)."""
    violations: List[Violation] = []
    count = 0
    for file_path in iter_python_files(paths):
        count += 1
        violations.extend(lint_file(file_path))
    return sorted(violations), count
