"""reprolint: static enforcement of the repo's determinism contract.

The parallel execution engine (PR 2) made bit-determinism a hard
contract: ``--jobs N`` output is byte-identical to ``--jobs 1`` and
cache keys are content-addressed through
:func:`repro.exec.hashing.stable_describe`. Golden traces catch a
violation only *after* a flaky diff has landed; this package catches the
usual causes at lint time, before a single simulation runs.

Rules (see DESIGN.md §"Static guarantees" for the full rationale):

* **RPL001** — global or unseeded RNG use (``random.*`` module state,
  ``np.random.*`` legacy global state, zero-argument ``default_rng()``).
  Randomness must be threaded in as a ``numpy.random.Generator``
  parameter (see :mod:`repro.utils.rng`).
* **RPL002** — wall-clock/entropy sources (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid4``, ...) inside the
  simulation paths (``core/``, ``net/``, ``workloads/``, ``exec/``).
  Simulated time is ``sim.now``; host time must never leak into it.
* **RPL003** — lambdas / closures / locally-defined functions handed to
  scenario registries, approach factories, or anything else that
  crosses the :class:`repro.exec.ParallelRunner` process boundary.
  Such callables neither pickle nor produce stable cache keys.
* **RPL004** — unordered ``set``/``frozenset`` contents materialised
  into an ordered sequence without ``sorted(...)``, which makes any
  downstream hashing or trace output order-dependent.
* **RPL005** — mutable default arguments, and mutable defaults on
  (frozen) dataclass fields: shared mutable state breaks both
  replicate independence and hashability.

The flow-sensitive rules (v2) ride on a project-wide symbol table and
call graph (:mod:`repro.lint.callgraph`) plus an intraprocedural
dataflow pass (:mod:`repro.lint.dataflow`) — ``lint_paths`` parses the
whole invocation into one project, so these see cross-module edges:

* **RPL006** — RNG-stream aliasing: a module-level stream consumed by
  more than one function couples the consumers' draw orders, so
  engine/fallback parity cannot hold; derive one substream per
  consumer (:func:`repro.utils.rng.derive_rng`).
* **RPL007** — RNG draws or float accumulation inside iteration over an
  unordered value (``set``/``frozenset``/``dict.keys``), including
  unordered arguments passed — possibly from another file — to a
  function whose parameter is iterated while drawing.
* **RPL008** — durability-effect ordering in ``stream/``: the WAL
  append must dominate the estimator apply, and the manifest write must
  dominate the checkpoint write it indexes.
* **RPL009** — ``except`` handlers in ``stream/``/``exec`` paths that
  swallow evidence without counting it: accounting (drop stats, retry
  budgets, WAL replay) must balance.
* **RPL010** — cache write discipline in cache paths
  (``exec/cache.py``, ``workloads/scenario_cache.py``): the ``fsync``
  must dominate the ``os.replace``/``os.rename`` that publishes an
  entry, and entries are immutable once published — no append or
  read-modify-write ``open`` modes.

Every RPL006–009 fixture has a runtime twin: the sanitizer
(:mod:`repro.sanitize`, ``REPRO_SANITIZE=1``) catches the same
violation as a divergent fingerprint or broken effect protocol when the
fixture actually runs (``tests/sanitize/test_rule_runtime_pin.py``).

Violations are suppressible per line::

    t = time.monotonic()  # reprolint: disable=RPL002
    # reprolint: disable-next-line=RPL001
    rng = np.random.default_rng()

(``disable-next-line`` covers the next *logical statement* — a
multi-line call, or a decorated ``def``'s decorators and signature.)

Run as ``python -m repro.lint src benchmarks`` (``--format json`` for
machine-readable output); exit status is 0 when clean, 1 when any
violation is reported, 2 on usage or parse errors. Legacy trees are
adopted with a ratchet: ``--update-baseline FILE`` records accepted
per-(path, rule) counts and ``--baseline FILE`` fails only on findings
beyond them (:mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from repro.lint.baseline import (
    filter_with_baseline,
    load_baseline,
    save_baseline,
)
from repro.lint.engine import (
    LintError,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES",
    "RULE_DOCS",
    "LintError",
    "Violation",
    "filter_with_baseline",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "save_baseline",
]
