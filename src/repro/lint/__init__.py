"""reprolint: static enforcement of the repo's determinism contract.

The parallel execution engine (PR 2) made bit-determinism a hard
contract: ``--jobs N`` output is byte-identical to ``--jobs 1`` and
cache keys are content-addressed through
:func:`repro.exec.hashing.stable_describe`. Golden traces catch a
violation only *after* a flaky diff has landed; this package catches the
usual causes at lint time, before a single simulation runs.

Rules (see DESIGN.md §"Static guarantees" for the full rationale):

* **RPL001** — global or unseeded RNG use (``random.*`` module state,
  ``np.random.*`` legacy global state, zero-argument ``default_rng()``).
  Randomness must be threaded in as a ``numpy.random.Generator``
  parameter (see :mod:`repro.utils.rng`).
* **RPL002** — wall-clock/entropy sources (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid4``, ...) inside the
  simulation paths (``core/``, ``net/``, ``workloads/``, ``exec/``).
  Simulated time is ``sim.now``; host time must never leak into it.
* **RPL003** — lambdas / closures / locally-defined functions handed to
  scenario registries, approach factories, or anything else that
  crosses the :class:`repro.exec.ParallelRunner` process boundary.
  Such callables neither pickle nor produce stable cache keys.
* **RPL004** — unordered ``set``/``frozenset`` contents materialised
  into an ordered sequence without ``sorted(...)``, which makes any
  downstream hashing or trace output order-dependent.
* **RPL005** — mutable default arguments, and mutable defaults on
  (frozen) dataclass fields: shared mutable state breaks both
  replicate independence and hashability.

Violations are suppressible per line::

    t = time.monotonic()  # reprolint: disable=RPL002
    # reprolint: disable-next-line=RPL001
    rng = np.random.default_rng()

Run as ``python -m repro.lint src benchmarks`` (``--format json`` for
machine-readable output); exit status is 0 when clean, 1 when any
violation is reported, 2 on usage or parse errors.
"""

from __future__ import annotations

from repro.lint.engine import (
    LintError,
    Violation,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES",
    "RULE_DOCS",
    "LintError",
    "Violation",
    "lint_file",
    "lint_paths",
    "lint_source",
]
