"""Project-wide symbol table and call graph for flow-sensitive rules.

The per-file rules (RPL001–005) are deliberately syntactic; the
determinism properties RPL006–009 protect are not.  Whether two
functions share one RNG stream, or a WAL append *dominates* the
estimator apply it guards, is a property of the whole project, so the
engine parses every file once into a :class:`Project` — a light symbol
table plus a best-effort call graph — and hands it to the rules via
:class:`~repro.lint.rules.LintContext`.

Resolution is intentionally pragmatic, tuned to this repo's idioms
rather than full type inference:

* module-level functions and classes are indexed under dotted qualnames
  (``repro.stream.shard.ShardWorker.log``);
* ``from x import y`` / ``import x as y`` aliases resolve through the
  same :class:`_Imports` tracker the syntactic rules use;
* ``self.attr`` types are inferred from ``self.attr = ClassName(...)``
  assignments anywhere in the class body, so ``self.wal.append(...)``
  resolves through the attribute to ``WriteAheadLog.append``;
* local variables assigned from a constructor call (``w = Worker(...)``)
  or annotated with a class name carry that type inside the function.

Anything unresolved keeps its bare attribute name (``CallSite.attr``)
so rules can fall back to curated name matches where that is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.rules import _Imports

__all__ = ["CallSite", "FunctionInfo", "ModuleInfo", "Project", "module_name_for"]


def module_name_for(path: Union[str, Path]) -> str:
    """Best-effort dotted module name for a source path.

    ``src/repro/stream/sink.py`` → ``repro.stream.sink``;
    ``tests/lint/fixtures/rpl006_bad.py`` → ``tests.lint.fixtures.rpl006_bad``.
    Non-path display names (``<string>``) hash to themselves so
    single-source linting still gets a stable, unique module identity.
    """
    text = str(path)
    if text.startswith("<"):
        return text.strip("<>") or "module"
    p = Path(text)
    parts = list(p.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    # Strip a leading source root so in-tree and installed spellings agree.
    while parts and parts[0] in {"src", ".", ".."}:
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part) or "module"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    ``target`` is the resolved dotted callee (project-internal qualname
    or imported dotted path) when resolution succeeded; ``attr`` is the
    bare attribute/function name, always present, for curated fallback
    matching.
    """

    node: ast.Call
    target: Optional[str]
    attr: str


@dataclass
class FunctionInfo:
    """One function or method, with its resolved outgoing edges."""

    qualname: str  # dotted: "<module>.<func>" or "<module>.<Class>.<method>"
    module: "ModuleInfo"
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    class_name: Optional[str] = None
    calls: List[CallSite] = field(default_factory=list)
    #: module-level globals this function reads: (module name, global name).
    global_reads: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def name(self) -> str:
        return self.node.name

    def statements(self) -> Sequence[ast.stmt]:
        """Top-level statements of the body (for per-statement effects)."""
        return self.node.body

    def calls_in(self, stmt: ast.stmt) -> Iterator[CallSite]:
        """Call sites lexically inside one statement of this function."""
        nested = {
            id(sub)
            for child in ast.walk(stmt)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
            for sub in ast.walk(child)
        }
        wanted = {
            id(node)
            for node in ast.walk(stmt)
            if isinstance(node, ast.Call) and id(node) not in nested
        }
        for site in self.calls:
            if id(site.node) in wanted:
                yield site


class ModuleInfo:
    """Symbol table for one parsed module."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        name: Optional[str] = None,
    ):
        self.path = path
        self.source = source
        self.tree = tree
        self.name = name if name is not None else module_name_for(path)
        self.imports = _Imports.collect(tree)
        self.functions: Dict[str, FunctionInfo] = {}  # local qualname -> info
        self.classes: Dict[str, ast.ClassDef] = {}
        #: (class name, attribute) -> dotted class name of the value.
        self.attr_types: Dict[Tuple[str, str], str] = {}
        #: module-level assigned names -> the value expression.
        self.module_assigns: Dict[str, ast.expr] = {}
        self._index()

    # -- construction ---------------------------------------------------

    def _index(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{self.name}.{stmt.name}", module=self, node=stmt
                )
                self.functions[stmt.name] = info
            elif isinstance(stmt, ast.ClassDef):
                self.classes[stmt.name] = stmt
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        local = f"{stmt.name}.{sub.name}"
                        self.functions[local] = FunctionInfo(
                            qualname=f"{self.name}.{local}",
                            module=self,
                            node=sub,
                            class_name=stmt.name,
                        )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_assigns[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self.module_assigns[stmt.target.id] = stmt.value
        for class_name, node in self.classes.items():
            self._infer_attr_types(class_name, node)

    def class_dotted(self, local_name: str) -> Optional[str]:
        """Dotted name of a class visible under ``local_name`` here."""
        if local_name in self.classes:
            return f"{self.name}.{local_name}"
        if local_name in self.imports.names:
            mod, orig = self.imports.names[local_name]
            return f"{mod}.{orig}"
        return None

    def _infer_attr_types(self, class_name: str, node: ast.ClassDef) -> None:
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Assign) or not isinstance(
                    sub.value, ast.Call
                ):
                    continue
                callee = sub.value.func
                if not isinstance(callee, ast.Name):
                    continue
                dotted = self.class_dotted(callee.id)
                if dotted is None:
                    continue
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.attr_types[(class_name, target.attr)] = dotted


class Project:
    """All modules under analysis, with call edges resolved across them."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.functions: Dict[str, FunctionInfo] = {}
        for mod in self.modules.values():
            for info in mod.functions.values():
                self.functions[info.qualname] = info
        for mod in self.modules.values():
            for info in mod.functions.values():
                self._link(info)

    @classmethod
    def build(cls, sources: Sequence[Tuple[str, str, ast.Module]]) -> "Project":
        """Build from ``(display path, source text, parsed tree)`` triples."""
        modules: List[ModuleInfo] = []
        taken: Set[str] = set()
        for path, text, tree in sources:
            name = module_name_for(path)
            while name in taken:  # duplicate display names must not shadow
                name += "_"
            taken.add(name)
            modules.append(ModuleInfo(path, text, tree, name=name))
        return cls(modules)

    # -- call/global-read edge construction -----------------------------

    def _link(self, info: FunctionInfo) -> None:
        mod = info.module
        var_types = self._local_types(info)
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = self._resolve_call(node.func, info, var_types)
                attr = self._bare_name(node.func)
                info.calls.append(CallSite(node=node, target=target, attr=attr))
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id in mod.module_assigns:
                    info.global_reads.add((mod.name, node.id))
                elif node.id in mod.imports.names:
                    src_mod, orig = mod.imports.names[node.id]
                    src = self.modules.get(src_mod)
                    if src is not None and orig in src.module_assigns:
                        info.global_reads.add((src_mod, orig))

    def _local_types(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> dotted class, from ctor assigns and annotations."""
        mod = info.module
        types: Dict[str, str] = {}
        args = info.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ann = arg.annotation
            if isinstance(ann, ast.Name):
                dotted = mod.class_dotted(ann.id)
                if dotted is not None:
                    types[arg.arg] = dotted
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
            ):
                dotted = mod.class_dotted(node.value.func.id)
                if dotted is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = dotted
        return types

    def _resolve_call(
        self,
        func: ast.expr,
        info: FunctionInfo,
        var_types: Dict[str, str],
    ) -> Optional[str]:
        mod = info.module
        if isinstance(func, ast.Name):
            if func.id in mod.functions:
                return mod.functions[func.id].qualname
            if func.id in mod.classes:
                return f"{mod.name}.{func.id}"
            if func.id in mod.imports.names:
                src_mod, orig = mod.imports.names[func.id]
                return f"{src_mod}.{orig}"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        # self.method(...) and self.attr.method(...)
        if info.class_name is not None:
            if isinstance(base, ast.Name) and base.id == "self":
                local = f"{info.class_name}.{func.attr}"
                if local in mod.functions:
                    return mod.functions[local].qualname
                return None
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                dotted = mod.attr_types.get((info.class_name, base.attr))
                if dotted is not None:
                    return self._method_on(dotted, func.attr)
        if isinstance(base, ast.Name) and base.id in var_types:
            return self._method_on(var_types[base.id], func.attr)
        dotted_mod = mod.imports.resolve_module(base)
        if dotted_mod is not None:
            return f"{dotted_mod}.{func.attr}"
        return None

    def _method_on(self, dotted_class: str, method: str) -> str:
        """Qualname of ``method`` on ``dotted_class`` (kept dotted even if
        the class is outside the project — rules match on suffixes)."""
        return f"{dotted_class}.{method}"

    @staticmethod
    def _bare_name(func: ast.expr) -> str:
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return "<expr>"

    # -- queries ---------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def callees(self, info: FunctionInfo) -> Iterator[FunctionInfo]:
        """Project-internal functions ``info`` calls directly."""
        seen: Set[str] = set()
        for site in info.calls:
            if site.target is not None and site.target in self.functions:
                if site.target not in seen:
                    seen.add(site.target)
                    yield self.functions[site.target]

    def global_consumers(self, module: str, name: str) -> List[FunctionInfo]:
        """Functions (project-wide) that read module-global ``name``."""
        out = [
            info
            for info in self.functions.values()
            if (module, name) in info.global_reads
        ]
        return sorted(out, key=lambda f: f.qualname)
