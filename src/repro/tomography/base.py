"""Shared machinery for the end-to-end tomography baselines.

End-to-end approaches see only (a) which packets each origin delivered
and (b) an *assumed* routing topology obtained from periodic snapshots —
they cannot see per-hop events. :class:`EndToEndObserver` collects those
observations inside the simulator; concrete estimators subclass it and
implement :meth:`solve`.

The snapshot staleness knob (:class:`PathSnapshotPolicy`) is the crux of
the paper's comparison: with ``period=None`` the estimator trusts the
topology captured at start-up forever; with a finite period the network
pays ``num_nodes * node_id_bits`` control bits per refresh for fresher
paths.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import DophyConfig
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, NullObserver

__all__ = [
    "PathSnapshotPolicy",
    "TomographyResult",
    "EndToEndObserver",
    "hop_success_to_frame_loss",
    "hop_success_to_frame_loss_array",
]


def hop_success_to_frame_loss(hop_success: float, max_attempts: int) -> float:
    """Convert hop-level (post-ARQ) success ``s = 1 - p^A`` back to frame loss ``p``.

    End-to-end methods estimate whether whole hops succeed after retries;
    the paper's metric is the per-frame loss ratio, so the retry cap must
    be inverted out.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    s = min(1.0, max(0.0, hop_success))
    return (1.0 - s) ** (1.0 / max_attempts)


def hop_success_to_frame_loss_array(
    hop_success: "np.ndarray", max_attempts: int
) -> "np.ndarray":
    """Vectorized :func:`hop_success_to_frame_loss` over a success vector."""
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    s = np.clip(hop_success, 0.0, 1.0)
    return (1.0 - s) ** (1.0 / max_attempts)


@dataclass(frozen=True)
class PathSnapshotPolicy:
    """How often the sink refreshes its view of the routing topology.

    ``period=None`` — a single snapshot when the run starts (the classic
    static-topology assumption). A finite period models periodic topology
    reports; each refresh costs every node one parent-pointer upload.
    """

    period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be > 0 or None")


@dataclass
class TomographyResult:
    """Per-link frame-loss estimates plus bookkeeping."""

    #: Directed link -> estimated frame loss ratio.
    losses: Dict[Tuple[int, int], float]
    #: Directed link -> number of end-to-end observations informing it.
    support: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Diagnostic: did the solver converge / have full rank.
    converged: bool = True
    method: str = ""


@dataclass
class _OriginStats:
    generated: int = 0
    delivered: int = 0
    dropped: int = 0

    @property
    def resolved(self) -> int:
        """Packets whose fate is known: delivered or dropped.

        Packets still in flight (pending) are excluded — counting them
        as resolved would bias mid-run delivery ratios low.
        """
        return self.delivered + self.dropped

    @property
    def delivery_ratio(self) -> Optional[float]:
        if self.resolved == 0:
            return None
        return self.delivered / self.resolved


class EndToEndObserver(NullObserver):
    """Collects end-to-end outcomes and assumed paths during a run."""

    def __init__(self, snapshot_policy: Optional[PathSnapshotPolicy] = None):
        self.snapshot_policy = snapshot_policy or PathSnapshotPolicy()
        self._stats: Dict[int, _OriginStats] = defaultdict(_OriginStats)
        #: Per-packet record: (origin, assumed path links, delivered, window idx).
        self._packet_obs: List[Tuple[int, Tuple[Tuple[int, int], ...], bool, int]] = []
        self._pending: Dict[Tuple[int, int], Tuple[int, Tuple[Tuple[int, int], ...], int]] = {}
        self._assumed_paths: Dict[int, Tuple[int, ...]] = {}
        self._snapshot_count = 0
        self._window = 0
        self._control_bits = 0
        self._sim: Optional[CollectionSimulation] = None
        self._max_attempts = 1

    # -- simulation wiring ----------------------------------------------------------

    def attach(self, simulation: CollectionSimulation) -> None:
        self._sim = simulation
        self._max_attempts = simulation.config.mac.max_attempts
        self._take_snapshot(simulation, charge=False)  # initial view is free-ish
        if self.snapshot_policy.period is not None:
            simulation.sim.every(
                self.snapshot_policy.period,
                lambda: self._refresh_snapshot(simulation),
            )

    def _refresh_snapshot(self, simulation: CollectionSimulation) -> None:
        self._take_snapshot(simulation, charge=True)
        self._window += 1

    def _take_snapshot(self, simulation: CollectionSimulation, *, charge: bool) -> None:
        """Capture every node's current path to the sink."""
        routing = simulation.routing
        topo = simulation.topology
        self._assumed_paths = {}
        for node in topo.nodes:
            if node == topo.sink:
                continue
            try:
                self._assumed_paths[node] = tuple(routing.path_to_sink(node))
            except RuntimeError:
                continue  # temporarily unroutable; no assumed path
        self._snapshot_count += 1
        if charge:
            id_bits = DophyConfig.node_id_bits(topo.num_nodes)
            self._control_bits += topo.num_nodes * id_bits

    def assumed_links(self, origin: int) -> Optional[Tuple[Tuple[int, int], ...]]:
        """The links origin's packets are *assumed* to traverse right now."""
        path = self._assumed_paths.get(origin)
        if path is None:
            return None
        return tuple(zip(path, path[1:]))

    # -- packet lifecycle --------------------------------------------------------------

    def on_packet_created(self, packet: Packet, time: float) -> None:
        links = self.assumed_links(packet.origin)
        if links is None:
            return  # cannot attribute this packet; skip it entirely
        stats = self._stats[packet.origin]
        stats.generated += 1
        self._pending[packet.key] = (packet.origin, links, self._window)

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        entry = self._pending.pop(packet.key, None)
        if entry is None:
            return
        origin, links, window = entry
        self._stats[origin].delivered += 1
        self._packet_obs.append((origin, links, True, window))

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        entry = self._pending.pop(packet.key, None)
        if entry is None:
            return
        origin, links, window = entry
        self._stats[origin].dropped += 1
        self._packet_obs.append((origin, links, False, window))

    def control_overhead_bits(self) -> int:
        return self._control_bits

    # -- data access for solvers ----------------------------------------------------------

    @property
    def max_attempts(self) -> int:
        return self._max_attempts

    @property
    def packet_observations(
        self,
    ) -> List[Tuple[int, Tuple[Tuple[int, int], ...], bool, int]]:
        """(origin, assumed links, delivered, snapshot window) per packet."""
        return self._packet_obs

    def delivery_ratios(self) -> Dict[int, float]:
        """Per-origin end-to-end delivery ratio over the whole run."""
        out = {}
        for origin, stats in self._stats.items():
            r = stats.delivery_ratio
            if r is not None:
                out[origin] = r
        return out

    def windowed_observations(
        self,
    ) -> Dict[int, List[Tuple[int, Tuple[Tuple[int, int], ...], bool]]]:
        """Observations grouped by snapshot window."""
        out: Dict[int, List[Tuple[int, Tuple[Tuple[int, int], ...], bool]]] = defaultdict(list)
        for origin, links, delivered, window in self._packet_obs:
            out[window].append((origin, links, delivered))
        return out

    @property
    def snapshots_taken(self) -> int:
        return self._snapshot_count

    # -- the estimator interface -----------------------------------------------------------

    def solve(self) -> TomographyResult:
        """Produce per-link frame-loss estimates (implemented by subclasses)."""
        raise NotImplementedError
