"""Loss-tomography baselines.

Classical approaches infer per-link loss from *end-to-end* delivery
ratios plus an assumed routing topology — exactly what breaks in dynamic
networks, where the assumed tree goes stale between snapshots:

* :class:`TreeRatioTomography` — the telescoping per-subtree ratio
  estimator for convergecast trees (the textbook "traditional" method);
* :class:`LinearTomography` — non-negative least squares over the
  log-delivery path equations, optionally stacked over snapshot windows;
* :class:`EMTomography` — per-packet EM attributing each end-to-end loss
  fractionally to the links of the packet's *assumed* path.

:class:`PathMeasurement` is the other extreme: per-hop counts carried in
every packet, encoded with a classical prefix code — Dophy-grade
accuracy at a (much) larger overhead, the upper-bound baseline for both
axes of the paper's comparison.
"""

from repro.tomography.boolean import BadLinkDiagnosis, BooleanTomography
from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    TomographyResult,
    hop_success_to_frame_loss,
)
from repro.tomography.em import EMTomography
from repro.tomography.linear import LinearTomography
from repro.tomography.mle_tree import TreeRatioTomography
from repro.tomography.path_measurement import PathMeasurement

__all__ = [
    "EndToEndObserver",
    "PathSnapshotPolicy",
    "TomographyResult",
    "hop_success_to_frame_loss",
    "TreeRatioTomography",
    "BooleanTomography",
    "BadLinkDiagnosis",
    "LinearTomography",
    "EMTomography",
    "PathMeasurement",
]
