"""EM loss tomography over per-packet end-to-end outcomes.

Treats each hop's success on each packet as a latent Bernoulli. For a
delivered packet every link of its (assumed) path succeeded; for a lost
packet, the failure happened at exactly one link — the E-step attributes
it fractionally according to the current hop-success estimates:

    P(failed at link j | lost) =
        s_1 ... s_{j-1} (1 - s_j) / (1 - s_1 ... s_L).

The M-step re-estimates each link's hop success from its fractional
success/failure tallies. Statistically the most efficient of the
end-to-end baselines — but it inherits their core weakness: the *assumed*
path comes from the latest topology snapshot, not the path the packet
actually took.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Tuple

import numpy as np

from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    TomographyResult,
    hop_success_to_frame_loss_array,
)

__all__ = ["EMTomography"]


class EMTomography(EndToEndObserver):
    """Expectation-maximization over assumed per-packet paths."""

    method_name = "em"

    def __init__(
        self,
        snapshot_policy: Optional[PathSnapshotPolicy] = None,
        *,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
    ):
        super().__init__(snapshot_policy)
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be > 0")
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def solve(self) -> TomographyResult:
        observations = self.packet_observations
        if not observations:
            return TomographyResult(losses={}, converged=False, method=self.method_name)
        # Aggregate identical (links, delivered) rows for speed.
        grouped: Dict[Tuple[Tuple[Tuple[int, int], ...], bool], int] = defaultdict(int)
        support: Dict[Tuple[int, int], int] = defaultdict(int)
        for _, links, delivered, _ in observations:
            if not links:
                continue
            grouped[(links, delivered)] += 1
            for link in links:
                support[link] += 1
        link_index: Dict[Tuple[int, int], int] = {}
        for (links, _), _ in grouped.items():
            for link in links:
                link_index.setdefault(link, len(link_index))
        k = len(link_index)
        if k == 0:
            return TomographyResult(losses={}, converged=False, method=self.method_name)
        s = np.full(k, 0.9)  # initial hop-success guess
        converged = False
        for _ in range(self.max_iterations):
            succ = np.zeros(k)
            fail = np.zeros(k)
            for (links, delivered), count in grouped.items():
                idx = [link_index[l] for l in links]
                if delivered:
                    for j in idx:
                        succ[j] += count
                    continue
                # E-step: attribute the loss across the path.
                path_s = s[idx]
                prefix = np.concatenate(([1.0], np.cumprod(path_s[:-1])))
                fail_probs = prefix * (1.0 - path_s)
                total = fail_probs.sum()
                if total <= 1e-12:
                    # Current estimates say loss was impossible; spread evenly.
                    fail_probs = np.full(len(idx), 1.0 / len(idx))
                    total = 1.0
                fail_probs = fail_probs / total
                # Link j succeeded on this packet iff the failure was later.
                succ_probs = np.concatenate((np.cumsum(fail_probs[1:][::-1])[::-1], [0.0]))
                for pos, j in enumerate(idx):
                    fail[j] += count * fail_probs[pos]
                    succ[j] += count * succ_probs[pos]
            new_s = np.where(succ + fail > 0, succ / np.maximum(succ + fail, 1e-12), s)
            new_s = np.clip(new_s, 1e-6, 1.0)
            if np.max(np.abs(new_s - s)) < self.tolerance:
                s = new_s
                converged = True
                break
            s = new_s
        frame_loss = hop_success_to_frame_loss_array(s, self.max_attempts)
        losses = {link: float(frame_loss[idx]) for link, idx in link_index.items()}
        return TomographyResult(
            losses=losses,
            support=dict(support),
            converged=converged,
            method=self.method_name,
        )
