"""Boolean loss tomography: identifying the *bad* links.

A large slice of the tomography literature asks a coarser question than
per-link ratios: *which links are lossy?* The classical Boolean approach
(smallest-consistent-failure-set, SCFS-style) reasons over path states:

1. an origin whose end-to-end delivery ratio is high has a **good path**
   — every link on it is exonerated;
2. every **bad path** must contain at least one bad link among the
   not-yet-exonerated candidates;
3. the diagnosis is a minimal candidate set covering all bad paths
   (greedy set cover here, the standard approximation).

Like every end-to-end method it trusts the snapshot topology, so
dynamics corrupt both the exoneration and the covering steps — the
detection-quality analogue of the paper's accuracy claim (bench A5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    TomographyResult,
)
from repro.utils.validation import check_probability

__all__ = ["BooleanTomography", "BadLinkDiagnosis"]

Link = Tuple[int, int]


@dataclass
class BadLinkDiagnosis:
    """Result of Boolean bad-link identification."""

    flagged: Set[Link] = field(default_factory=set)
    exonerated: Set[Link] = field(default_factory=set)
    #: Origins whose paths were classified bad but contained no candidate
    #: (inconsistent evidence — usually stale topology).
    unexplained_paths: int = 0
    good_paths: int = 0
    bad_paths: int = 0


class BooleanTomography(EndToEndObserver):
    """Greedy SCFS-style bad-link identification from end-to-end outcomes."""

    method_name = "boolean_scfs"

    def __init__(
        self,
        snapshot_policy: Optional[PathSnapshotPolicy] = None,
        *,
        good_path_delivery: float = 0.9,
        min_packets_per_origin: int = 10,
    ):
        """``good_path_delivery``: delivery ratio at/above which a path is
        deemed good (all its links exonerated)."""
        super().__init__(snapshot_policy)
        check_probability(good_path_delivery, "good_path_delivery")
        if min_packets_per_origin < 1:
            raise ValueError("min_packets_per_origin must be >= 1")
        self.good_path_delivery = good_path_delivery
        self.min_packets_per_origin = min_packets_per_origin

    def diagnose(self) -> BadLinkDiagnosis:
        """Run the exonerate-then-cover procedure."""
        per_origin: Dict[int, Tuple[int, int, Tuple[Link, ...]]] = {}
        counts: Dict[int, List[int]] = defaultdict(lambda: [0, 0])  # [delivered, total]
        links_of: Dict[int, Tuple[Link, ...]] = {}
        for origin, links, delivered, _ in self.packet_observations:
            c = counts[origin]
            c[1] += 1
            if delivered:
                c[0] += 1
            links_of[origin] = links  # latest assumed path
        diagnosis = BadLinkDiagnosis()
        bad_paths: List[FrozenSet[Link]] = []
        for origin, (delivered, total) in counts.items():
            if total < self.min_packets_per_origin:
                continue
            links = links_of.get(origin)
            if not links:
                continue
            ratio = delivered / total
            if ratio >= self.good_path_delivery:
                diagnosis.good_paths += 1
                diagnosis.exonerated.update(links)
            else:
                diagnosis.bad_paths += 1
                bad_paths.append(frozenset(links))
        # Candidates: links on bad paths that no good path exonerated.
        uncovered = []
        for path_links in bad_paths:
            candidates = path_links - diagnosis.exonerated
            if not candidates:
                diagnosis.unexplained_paths += 1
            else:
                uncovered.append(candidates)
        # Greedy set cover over the remaining bad paths.
        while uncovered:
            tally: Dict[Link, int] = defaultdict(int)
            for candidates in uncovered:
                for link in candidates:
                    tally[link] += 1
            best = max(sorted(tally), key=lambda l: tally[l])
            diagnosis.flagged.add(best)
            uncovered = [c for c in uncovered if best not in c]
        return diagnosis

    def solve(self) -> TomographyResult:
        """Ratio-style interface: flagged links get loss 1.0, exonerated 0.0.

        (Boolean methods don't produce ratios; this coarse mapping lets the
        common comparison harness run, but the A5 bench scores the method
        on its native detection metrics instead.)
        """
        diagnosis = self.diagnose()
        losses: Dict[Link, float] = {}
        for link in diagnosis.exonerated:
            losses[link] = 0.0
        for link in diagnosis.flagged:
            losses[link] = 1.0
        return TomographyResult(
            losses=losses,
            converged=diagnosis.unexplained_paths == 0,
            method=self.method_name,
        )
