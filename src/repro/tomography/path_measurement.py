"""Direct path measurement: per-hop counts in every packet, classically coded.

The accuracy upper bound among baselines — it carries exactly the same
per-hop evidence Dophy does, but encodes each retransmission count with
a conventional prefix code (fixed-width by default, or Elias/Rice). The
comparison against Dophy isolates what arithmetic coding with symbol
aggregation and model updates buys: same estimates, far fewer bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coding.baseline_codes import FixedWidthCode, IntegerCode
from repro.core.config import DophyConfig
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, NullObserver

__all__ = ["PathMeasurement", "PathMeasurementReport"]


@dataclass
class PathMeasurementReport:
    """Estimates plus overhead accounting for the direct-measurement baseline."""

    estimates: Dict[Tuple[int, int], LinkEstimate]
    annotation_bits: List[int] = field(default_factory=list)
    annotation_hops: List[int] = field(default_factory=list)
    code_name: str = ""

    @property
    def total_annotation_bits(self) -> int:
        return sum(self.annotation_bits)

    @property
    def mean_annotation_bits(self) -> float:
        if not self.annotation_bits:
            return 0.0
        return sum(self.annotation_bits) / len(self.annotation_bits)

    @property
    def mean_bits_per_hop(self) -> float:
        hops = sum(self.annotation_hops)
        if hops == 0:
            return 0.0
        return sum(self.annotation_bits) / hops

    @property
    def total_overhead_bits(self) -> int:
        return self.total_annotation_bits


@dataclass
class _Annotation:
    """In-flight per-packet record: (receiver, retransmission count) per hop."""

    hops: List[Tuple[int, int]] = field(default_factory=list)


class PathMeasurement(NullObserver):
    """Per-packet hop-by-hop measurement with a pluggable integer code."""

    def __init__(
        self,
        count_code: Optional[IntegerCode] = None,
        *,
        path_encoding: str = "explicit",
        hop_count_bits: int = 7,
    ):
        if path_encoding not in ("explicit", "assumed"):
            raise ValueError("path_encoding must be 'explicit' or 'assumed'")
        self._configured_code = count_code
        self.count_code: Optional[IntegerCode] = count_code
        self.path_encoding = path_encoding
        self.hop_count_bits = hop_count_bits
        self._estimator: Optional[PerLinkEstimator] = None
        self._node_id_bits = 0
        #: In-flight per-packet hop records, keyed by (origin, seqno).
        self._inflight: Dict[Tuple[int, int], _Annotation] = {}
        self._annotation_bits: List[int] = []
        self._annotation_hops: List[int] = []

    def attach(self, simulation: CollectionSimulation) -> None:
        max_attempts = simulation.config.mac.max_attempts
        self._estimator = PerLinkEstimator(max_attempts=max_attempts)
        if self._configured_code is None:
            # Fixed-width field just wide enough for any possible count.
            width = max(1, math.ceil(math.log2(max_attempts)))
            self.count_code = FixedWidthCode(width)
        self._node_id_bits = (
            DophyConfig.node_id_bits(simulation.topology.num_nodes)
            if self.path_encoding == "explicit"
            else 0
        )

    # -- packet lifecycle ---------------------------------------------------------

    def on_packet_created(self, packet: Packet, time: float) -> None:
        self._inflight[packet.key] = _Annotation()

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:
        self._inflight[packet.key].hops.append((receiver, first_attempt - 1))

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        self._inflight.pop(packet.key, None)

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        record = self._inflight.pop(packet.key)
        bits = self.hop_count_bits
        prev = packet.origin
        for receiver, count in record.hops:
            bits += self._node_id_bits
            bits += self.count_code.code_length(count)
            self._estimator.add_exact((prev, receiver), count, time)
            prev = receiver
        self._annotation_bits.append(bits)
        self._annotation_hops.append(len(record.hops))

    # -- results ----------------------------------------------------------------------

    @property
    def estimator(self) -> PerLinkEstimator:
        if self._estimator is None:
            raise RuntimeError("PathMeasurement not attached yet")
        return self._estimator

    def report(self) -> PathMeasurementReport:
        if self._estimator is None:
            raise RuntimeError("PathMeasurement not attached yet")
        return PathMeasurementReport(
            estimates=self._estimator.estimates(),
            annotation_bits=list(self._annotation_bits),
            annotation_hops=list(self._annotation_hops),
            code_name=self.count_code.name if self.count_code else "",
        )
