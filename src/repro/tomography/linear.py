"""Linear-algebraic loss tomography (NNLS over log-delivery equations).

Each origin contributes one equation per snapshot window:

    -log R_w(origin) = sum over links l of assumed path  x_l,
    x_l = -log s_l >= 0,

with ``R_w`` the origin's delivery ratio during window *w* and the path
taken from that window's topology snapshot. Solving the stacked system
with non-negative least squares yields hop successes ``s_l = exp(-x_l)``,
then frame losses via the ARQ inversion. Stacking windows lets the
method exploit snapshot refreshes; with a single stale snapshot it is
the classic static formulation.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import optimize

from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    TomographyResult,
    hop_success_to_frame_loss_array,
)

__all__ = ["LinearTomography"]

#: Delivery ratios below this are clamped (log of zero is unusable).
_MIN_RATIO = 1e-3


class LinearTomography(EndToEndObserver):
    """NNLS on the log-linear path-loss system."""

    method_name = "linear_nnls"

    def __init__(
        self,
        snapshot_policy: Optional[PathSnapshotPolicy] = None,
        *,
        min_packets_per_equation: int = 5,
    ):
        super().__init__(snapshot_policy)
        if min_packets_per_equation < 1:
            raise ValueError("min_packets_per_equation must be >= 1")
        self.min_packets_per_equation = min_packets_per_equation

    def solve(self) -> TomographyResult:
        # Build equations: one per (window, origin) with enough traffic.
        equations: List[Tuple[Tuple[Tuple[int, int], ...], float, int]] = []
        for window, obs in self.windowed_observations().items():
            per_origin: Dict[int, List[Tuple[Tuple[Tuple[int, int], ...], bool]]] = defaultdict(list)
            for origin, links, delivered in obs:
                per_origin[origin].append((links, delivered))
            for origin, rows in per_origin.items():
                n = len(rows)
                if n < self.min_packets_per_equation:
                    continue
                delivered = sum(1 for _, d in rows if d)
                ratio = max(_MIN_RATIO, delivered / n)
                # All rows in a window share the snapshot path; take the first.
                links = rows[0][0]
                if links:
                    equations.append((links, ratio, n))
        if not equations:
            return TomographyResult(losses={}, converged=False, method=self.method_name)

        link_index: Dict[Tuple[int, int], int] = {}
        for links, _, _ in equations:
            for link in links:
                link_index.setdefault(link, len(link_index))
        m, k = len(equations), len(link_index)
        A = np.zeros((m, k))
        b = np.zeros(m)
        weights = np.zeros(m)
        support: Dict[Tuple[int, int], int] = defaultdict(int)
        for i, (links, ratio, n) in enumerate(equations):
            for link in links:
                A[i, link_index[link]] = 1.0
                support[link] += n
            b[i] = -math.log(ratio)
            weights[i] = math.sqrt(n)  # weight by sample count
        Aw = A * weights[:, None]
        bw = b * weights
        x, residual = optimize.nnls(Aw, bw)
        # Rank check: links that appear in no independent equation are
        # unidentifiable; NNLS still returns a value — flag via converged.
        converged = bool(np.linalg.matrix_rank(A) == k)
        frame_loss = hop_success_to_frame_loss_array(np.exp(-x), self.max_attempts)
        losses: Dict[Tuple[int, int], float] = {
            link: float(frame_loss[idx]) for link, idx in link_index.items()
        }
        return TomographyResult(
            losses=losses,
            support=dict(support),
            converged=converged,
            method=self.method_name,
        )
