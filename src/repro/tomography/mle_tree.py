"""Traditional convergecast-tree loss tomography (telescoping ratios).

The textbook method for a static collection tree: every node originates
traffic, so the delivery ratio of node *u*'s own packets estimates the
product of hop successes along *u*'s path. For a node and its assumed
parent the path products telescope,

    s(u -> parent(u)) = R(u) / R(parent(u)),      R(sink) = 1,

giving every tree link's hop success from two measured ratios. It is the
fastest-converging classical estimator on a *static* tree — and the most
brittle under routing dynamics, because both R(u) and the attribution
tree go stale the moment parents change.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    TomographyResult,
    hop_success_to_frame_loss,
)

__all__ = ["TreeRatioTomography"]


class TreeRatioTomography(EndToEndObserver):
    """Telescoping-ratio estimator over the assumed collection tree."""

    method_name = "tree_ratio"

    def __init__(self, snapshot_policy: Optional[PathSnapshotPolicy] = None):
        super().__init__(snapshot_policy)

    def solve(self) -> TomographyResult:
        ratios = self.delivery_ratios()
        # Assumed parent of each origin = first hop of its assumed path at the
        # *latest* snapshot (the sink's best current knowledge).
        losses: Dict[Tuple[int, int], float] = {}
        support: Dict[Tuple[int, int], int] = {}
        converged = True
        for origin, r_origin in ratios.items():
            links = self.assumed_links(origin)
            if not links:
                continue
            first_link = links[0]
            parent = first_link[1]
            if parent in ratios:
                r_parent = ratios[parent]
            elif len(links) == 1:
                r_parent = 1.0  # parent is the sink
            else:
                converged = False
                continue
            if r_parent <= 0.0:
                # Parent delivers nothing: the ratio is undefined; attribute
                # total loss to the link (the conventional fallback).
                hop_success = 0.0
                converged = False
            else:
                hop_success = min(1.0, r_origin / r_parent)
            losses[first_link] = hop_success_to_frame_loss(
                hop_success, self.max_attempts
            )
            n = sum(
                1
                for o, lks, _, _ in self.packet_observations
                if o == origin
            )
            support[first_link] = n
        return TomographyResult(
            losses=losses, support=support, converged=converged, method=self.method_name
        )
