"""Command-line interface.

Runs the standard scenarios without writing any Python::

    python -m repro list-scenarios
    python -m repro run --scenario dynamic_rgg --nodes 60 --seed 7
    python -m repro compare --scenario dynamic_rgg --methods dophy,tree_ratio,em
    python -m repro serve --trace run.jsonl --shards 4 --state-dir state/
    python -m repro tail --events events.jsonl --follow

``run`` executes one Dophy deployment and prints the per-link loss
estimates; ``compare`` attaches several measurement approaches to one
shared run and prints the accuracy/overhead comparison table; ``serve``
drives the crash-tolerant streaming sink over a recorded trace (or a
fresh simulation) with supervised shard workers, checkpoint/restore and
backpressure; ``tail`` pretty-prints (and optionally follows) the event
log ``serve`` writes.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.scenario_cache import ScenarioCache

from repro.core import DophyConfig, DophySystem
from repro.sanitize import hooks as _sanitize_hooks
from repro.workloads import (
    ApproachSpec,
    Scenario,
    bursty_rgg_scenario,
    dophy_approach,
    huffman_dophy_approach,
    drifting_line_scenario,
    drifting_rgg_scenario,
    dynamic_rgg_scenario,
    em_approach,
    failing_rgg_scenario,
    interference_rgg_scenario,
    format_table,
    line_scenario,
    linear_approach,
    path_measurement_approach,
    run_comparison,
    static_grid_scenario,
    static_rgg_scenario,
    tree_ratio_approach,
)

__all__ = ["main", "build_parser", "SCENARIOS"]

#: name -> (factory accepting common kwargs, description)
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "line": line_scenario,
    "static_grid": static_grid_scenario,
    "static_rgg": static_rgg_scenario,
    "dynamic_rgg": dynamic_rgg_scenario,
    "bursty_rgg": bursty_rgg_scenario,
    "drifting_rgg": drifting_rgg_scenario,
    "drifting_line": drifting_line_scenario,
    "failing_rgg": failing_rgg_scenario,
    "interference_rgg": interference_rgg_scenario,
}

_METHOD_FACTORIES: Dict[str, Callable[[], ApproachSpec]] = {
    "dophy": dophy_approach,
    "dophy_huffman": huffman_dophy_approach,
    "direct": path_measurement_approach,
    "tree_ratio": tree_ratio_approach,
    "linear": linear_approach,
    "em": em_approach,
}


def _make_scenario(args: argparse.Namespace) -> Scenario:
    factory = SCENARIOS[args.scenario]
    kwargs = {}
    if args.nodes is not None:
        kwargs[
            "num_nodes" if args.scenario not in ("static_grid",) else "rows"
        ] = args.nodes
    scenario = factory(**kwargs)
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.traffic_period is not None:
        overrides["traffic_period"] = args.traffic_period
    if getattr(args, "engine", None) is not None:
        overrides["engine"] = args.engine
    if overrides:
        scenario = scenario.with_config(**overrides)
    return scenario


def _scenario_cache(args: argparse.Namespace) -> Optional["ScenarioCache"]:
    """The built-scenario cache selected by ``--scenario-cache``, if any."""
    path = getattr(args, "scenario_cache", None)
    if not path:
        return None
    from repro.workloads.scenario_cache import ScenarioCache

    return ScenarioCache(path)


def _cmd_list_scenarios(_args: argparse.Namespace) -> int:
    rows = []
    for name, factory in SCENARIOS.items():
        doc = (factory.__doc__ or "").strip().splitlines()[0]
        rows.append([name, doc])
    print(format_table(["scenario", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    faults = None
    if args.corruption_rate > 0:
        from repro.net.faults import FaultPlan

        faults = FaultPlan(seed=args.seed, corruption_rate=args.corruption_rate)
    dophy = DophySystem(
        DophyConfig(
            aggregation_threshold=args.aggregation_threshold,
            path_encoding=args.path_encoding,
            dissemination_loss=args.dissemination_loss,
        ),
        faults=faults,
    )
    sim = scenario.make_simulation(
        args.seed, [dophy], scenario_cache=_scenario_cache(args)
    )
    result = sim.run()
    report = dophy.report()
    truth = result.ground_truth.true_loss_map(kind="empirical")
    print(
        f"scenario {scenario.name}: {result.topology.num_nodes} nodes, "
        f"{result.ground_truth.packets_generated} packets, "
        f"delivery {result.delivery_ratio:.1%}, "
        f"churn {result.churn_rate * 60:.2f} changes/node/min"
    )
    print(
        f"dophy: {report.packets_decoded} annotations, "
        f"{report.mean_annotation_bits:.1f} bits/pkt "
        f"({report.mean_bits_per_hop:.1f} bits/hop), "
        f"{report.model_updates} model updates, "
        f"{report.decode_failures} decode failures"
    )
    if report.decode_failures or report.duplicate_deliveries:
        causes = report.decode_failure_causes
        parts = [f"{cause}={n}" for cause, n in sorted(causes.items()) if n]
        if report.sink_outage_discards:
            parts.append(f"sink_outage={report.sink_outage_discards}")
        if report.duplicate_deliveries:
            parts.append(f"duplicates={report.duplicate_deliveries}")
        if report.salvaged_packets:
            parts.append(
                f"salvaged={report.salvaged_packets}pkt/{report.salvaged_hops}hops"
            )
        print("decode-failure breakdown: " + ", ".join(parts))
    if report.dissemination_rounds:
        print(
            f"dissemination: {report.dissemination_rounds} broadcast + "
            f"{report.repair_rounds} repair rounds, "
            f"{report.stale_nodes} stale nodes at end"
        )
    rows = []
    for link, est in sorted(report.estimates.items()):
        if est.n_samples < args.min_samples:
            continue
        rows.append(
            [
                f"{link[0]}->{link[1]}",
                est.n_samples,
                est.loss,
                truth.get(link),
            ]
        )
    print()
    print(
        format_table(
            ["link", "samples", "estimated loss", "empirical truth"],
            rows,
            title=f"Per-link estimates (>= {args.min_samples} samples)",
            precision=3,
        )
    )
    if args.save_trace:
        from repro.net.tracefile import save_trace

        path = save_trace(result, args.save_trace)
        print(f"\ntrace written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    names = [m.strip() for m in args.methods.split(",") if m.strip()]
    unknown = [m for m in names if m not in _METHOD_FACTORIES]
    if unknown:
        print(
            f"unknown methods: {', '.join(unknown)} "
            f"(choose from {', '.join(_METHOD_FACTORIES)})",
            file=sys.stderr,
        )
        return 2
    approaches = [_METHOD_FACTORIES[m]() for m in names]
    if args.replicates > 1:
        return _compare_replicated(args, scenario, names, approaches)
    rows_by_name, result = run_comparison(
        scenario,
        approaches,
        seed=args.seed,
        min_support=args.min_samples,
        scenario_cache_dir=getattr(args, "scenario_cache", None),
    )
    rows = []
    for name in names:
        r = rows_by_name[name]
        rows.append(
            [
                name,
                r.accuracy.mae,
                r.accuracy.p90_error,
                f"{r.accuracy.coverage:.0%}",
                r.overhead.mean_bits_per_packet,
                r.overhead.control_bits / 1000.0,
            ]
        )
    print(
        format_table(
            ["method", "MAE", "p90 err", "coverage", "bits/pkt", "control kbits"],
            rows,
            title=(
                f"{scenario.name}: delivery {result.delivery_ratio:.1%}, "
                f"churn {result.churn_rate * 60:.2f} changes/node/min"
            ),
            precision=4,
        )
    )
    return 0


def _compare_replicated(
    args: argparse.Namespace,
    scenario: Scenario,
    names: List[str],
    approaches: List[ApproachSpec],
) -> int:
    from repro.exec import ParallelRunner
    from repro.workloads import run_replicated

    runner = ParallelRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        scenario_cache_dir=getattr(args, "scenario_cache", None),
    )
    rows_by_name = run_replicated(
        scenario,
        approaches,
        master_seed=args.seed,
        replicates=args.replicates,
        min_support=args.min_samples,
        runner=runner,
    )
    rows = []
    for name in names:
        r = rows_by_name[name]
        rows.append(
            [
                name,
                r.mae_mean,
                r.mae_std,
                r.p90_mean,
                f"{r.coverage_mean:.0%}",
                r.bits_per_packet_mean,
                r.control_bits_mean / 1000.0,
            ]
        )
    print(
        format_table(
            ["method", "MAE", "MAE std", "p90 err", "coverage", "bits/pkt", "control kbits"],
            rows,
            title=(
                f"{scenario.name}: {args.replicates} replicates "
                f"(master seed {args.seed}, jobs={args.jobs})"
            ),
            precision=4,
        )
    )
    print(f"execution: {runner.stats.describe()}")
    return 0


def _snapshot_events(snapshot) -> List[dict]:
    """JSONL event records for one sink snapshot (alerts first)."""
    events: List[dict] = [
        {
            "type": "alert",
            "round": alert.round_no,
            "stream_time": alert.stream_time,
            "link": list(alert.link),
            "loss": alert.loss,
            "n_samples": alert.n_samples,
        }
        for alert in snapshot.new_alerts
    ]
    events.append(
        {
            "type": "snapshot",
            "round": snapshot.round_no,
            "stream_time": snapshot.stream_time,
            "final": snapshot.final,
            "links": len(snapshot.estimates),
            "stale_links": len(snapshot.stale_links),
            "queue_depth": snapshot.queue_depth,
            "shards": list(snapshot.shard_states),
            "consumed": snapshot.stats.consumed,
            "crashes": snapshot.stats.crashes,
            "restores": snapshot.stats.restores,
            "shed": snapshot.queue_stats.shed,
        }
    )
    return events


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.stream import (
        AlertPolicy,
        DirectoryStore,
        MemoryStore,
        SinkConfig,
        StreamingSink,
        bundle_from_scenario,
        bundle_from_trace,
        feed_estimator,
    )
    from repro.stream.supervisor import RetryPolicy

    if args.trace:
        bundle = bundle_from_trace(args.trace)
        source_desc = f"trace {args.trace}"
    else:
        scenario = _make_scenario(args)
        bundle = bundle_from_scenario(scenario, args.seed)
        source_desc = f"scenario {scenario.name} (seed {args.seed})"
    store = DirectoryStore(args.state_dir) if args.state_dir else MemoryStore()
    faults = None
    if args.crash_rate > 0 or args.stall_rate > 0:
        from repro.net.faults import ShardFaultPlan

        faults = ShardFaultPlan(
            seed=args.fault_seed,
            crash_rate=args.crash_rate,
            stall_rate=args.stall_rate,
        )
    if args.resume:
        if not args.state_dir:
            print("--resume requires --state-dir", file=sys.stderr)
            return 2
        sink = StreamingSink.resume(store, faults=faults)
        print(
            f"resumed from manifest: round {sink.round_no}, "
            f"{sink.consumed} records already consumed"
        )
    else:
        config = SinkConfig(
            n_shards=args.shards,
            queue_capacity=args.queue_capacity,
            queue_policy=args.queue_policy,
            arrival_burst=args.arrival_burst,
            service_batch=args.service_batch,
            merge_every=args.merge_every,
            checkpoint_every=args.checkpoint_every,
            jobs=args.jobs,
            retry=RetryPolicy(max_restarts=args.max_restarts),
            alerts=AlertPolicy(
                loss_threshold=args.alert_threshold,
                min_samples=args.alert_min_samples,
            ),
        )
        sink = StreamingSink(bundle.max_attempts, store, config, faults=faults)
    print(
        f"serving {source_desc}: {len(bundle.records)} records, "
        f"{sink.config.n_shards} shards, queue {sink.config.queue_policy}"
        f"[{sink.config.queue_capacity}], jobs={sink.config.jobs}"
    )
    events_fh = open(args.events, "a", encoding="utf-8") if args.events else None
    try:
        final = None
        for snapshot in sink.run(bundle.records):
            final = snapshot
            for alert in snapshot.new_alerts:
                print(
                    f"  ALERT t={alert.stream_time:.1f}s "
                    f"{alert.link[0]}->{alert.link[1]} "
                    f"loss {alert.loss:.3f} ({alert.n_samples} samples)"
                )
            states = "".join(s[0].upper() for s in snapshot.shard_states)
            print(
                f"round {snapshot.round_no:4d} t={snapshot.stream_time:7.1f}s "
                f"links={len(snapshot.estimates):3d} "
                f"queue={snapshot.queue_depth:3d} shards={states}"
                + (f" stale={len(snapshot.stale_links)}" if snapshot.stale_links else "")
            )
            if events_fh is not None:
                for event in _snapshot_events(snapshot):
                    events_fh.write(json.dumps(event, sort_keys=True) + "\n")
                events_fh.flush()
    finally:
        if events_fh is not None:
            events_fh.close()
    assert final is not None  # run() always yields a final snapshot
    stale = set(final.stale_links)
    truth = bundle.true_losses
    rows = []
    for link in sorted(final.estimates):
        est = final.estimates[link]
        if est.n_samples < args.min_samples:
            continue
        rows.append(
            [
                f"{link[0]}->{link[1]}" + (" *" if link in stale else ""),
                est.n_samples,
                est.loss,
                truth.get(link),
            ]
        )
    print()
    print(
        format_table(
            ["link", "samples", "estimated loss", "true loss"],
            rows,
            title=(
                f"Final streaming estimates (>= {args.min_samples} samples"
                + (", * = stale)" if stale else ")")
            ),
            precision=3,
        )
    )
    stats = final.stats
    queue_stats = final.queue_stats
    print(
        f"\nsink: {stats.rounds} rounds, {stats.consumed} consumed, "
        f"{stats.dispatched} dispatched, {stats.crashes} crashes, "
        f"{stats.stalls} stalls, {stats.restores} restores, "
        f"{stats.dropped_quarantined} dropped (quarantine), "
        f"{queue_stats.shed} shed, {queue_stats.blocked} blocked rounds, "
        f"queue high-water {queue_stats.high_water}"
    )
    if args.verify_batch:
        from repro.core.estimator import PerLinkEstimator

        batch = PerLinkEstimator(
            bundle.max_attempts,
            truncation_correction=sink.truncation_correction,
        )
        feed_estimator(batch, bundle.records)
        batch_estimates = batch.estimates()
        mismatched = sorted(
            link
            for link in set(batch_estimates) | set(final.estimates)
            if (est := final.estimates.get(link)) is None
            or (ref := batch_estimates.get(link)) is None
            or (est.loss, est.stderr, est.n_exact, est.n_censored)
            != (ref.loss, ref.stderr, ref.n_exact, ref.n_censored)
        )
        if mismatched:
            print(
                f"verify-batch: MISMATCH on {len(mismatched)} links "
                f"(first: {mismatched[:5]})",
                file=sys.stderr,
            )
            return 1
        print(
            f"verify-batch: OK — {len(batch_estimates)} links bit-identical "
            f"to the batch estimator"
        )
    return 0


def _cmd_tail(args: argparse.Namespace) -> int:
    import json
    import pathlib
    import time

    path = pathlib.Path(args.events)
    printed = 0
    while True:
        lines = (
            path.read_text(encoding="utf-8").splitlines() if path.exists() else []
        )
        for line in lines[printed:]:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail of an in-progress append
            if event.get("type") == "alert":
                link = event.get("link", ["?", "?"])
                print(
                    f"ALERT t={event.get('stream_time', 0):.1f}s "
                    f"{link[0]}->{link[1]} loss {event.get('loss', 0):.3f} "
                    f"({event.get('n_samples', 0)} samples)"
                )
            elif event.get("type") == "snapshot":
                shards = "".join(str(s)[0].upper() for s in event.get("shards", []))
                print(
                    f"round {event.get('round', 0):4d} "
                    f"t={event.get('stream_time', 0):7.1f}s "
                    f"links={event.get('links', 0):3d} "
                    f"queue={event.get('queue_depth', 0):3d} "
                    f"shards={shards}"
                    + (" FINAL" if event.get("final") else "")
                )
                if event.get("final"):
                    return 0
        printed = len(lines)
        if not args.follow:
            return 0
        time.sleep(args.interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dophy loss tomography — run scenarios and comparisons.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-scenarios", help="list the available scenarios")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--scenario", choices=sorted(SCENARIOS), default="dynamic_rgg"
        )
        p.add_argument("--nodes", type=int, default=None, help="network size")
        p.add_argument("--duration", type=float, default=None, help="seconds")
        p.add_argument("--traffic-period", type=float, default=None)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--engine",
            choices=["event", "array"],
            default=None,
            help="simulation kernel; both produce bit-identical results "
            "(array is the vectorized fast path, event the reference)",
        )
        p.add_argument(
            "--min-samples",
            type=int,
            default=30,
            help="only report links with at least this many observations",
        )
        p.add_argument(
            "--scenario-cache",
            default=None,
            metavar="DIR",
            help="content-addressed built-scenario cache: reuse construction "
            "skeletons (topology, channel, routing bootstrap) across seeds "
            "and reruns; results are bit-identical with the cache cold, "
            "warm, or absent",
        )

    run_p = sub.add_parser("run", help="run Dophy on a scenario")
    add_common(run_p)
    run_p.add_argument("--aggregation-threshold", type=int, default=3)
    run_p.add_argument(
        "--path-encoding",
        choices=["explicit", "compressed", "assumed"],
        default="explicit",
    )
    run_p.add_argument(
        "--dissemination-loss",
        type=float,
        default=0.0,
        help="per-node loss of each model broadcast round (0 = idealized)",
    )
    run_p.add_argument(
        "--corruption-rate",
        type=float,
        default=0.0,
        help="per-annotation probability of CRC-escaping bit corruption",
    )
    run_p.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the run's packet-level trace (JSONL) for offline replay",
    )

    cmp_p = sub.add_parser("compare", help="compare measurement approaches")
    add_common(cmp_p)
    cmp_p.add_argument(
        "--methods",
        default="dophy,tree_ratio,linear,em",
        help="comma-separated subset of: " + ", ".join(_METHOD_FACTORIES),
    )
    cmp_p.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="average over this many replicate seeds derived from --seed "
        "(> 1 enables the replicated table and --jobs sharding)",
    )
    cmp_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for replicated runs; output is byte-identical "
        "to --jobs 1 regardless of N",
    )
    cmp_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache; reruns only compute replicates "
        "missing for this exact configuration and code version",
    )

    serve_p = sub.add_parser(
        "serve", help="stream a trace (or live run) through the resilient sink"
    )
    add_common(serve_p)
    serve_p.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="replay this recorded JSONL trace instead of simulating",
    )
    serve_p.add_argument("--shards", type=int, default=4)
    serve_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for shard apply; output is byte-identical "
        "to --jobs 1 regardless of N",
    )
    serve_p.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="durable checkpoint/WAL directory (in-memory when omitted)",
    )
    serve_p.add_argument(
        "--resume",
        action="store_true",
        help="resume from the manifest in --state-dir (pass the same source)",
    )
    serve_p.add_argument("--queue-capacity", type=int, default=256)
    serve_p.add_argument(
        "--queue-policy",
        choices=["block", "shed"],
        default="block",
        help="full-queue behaviour: pace the source, or drop the newest",
    )
    serve_p.add_argument("--arrival-burst", type=int, default=32)
    serve_p.add_argument("--service-batch", type=int, default=32)
    serve_p.add_argument("--merge-every", type=int, default=8)
    serve_p.add_argument("--checkpoint-every", type=int, default=2)
    serve_p.add_argument("--max-restarts", type=int, default=3)
    serve_p.add_argument("--alert-threshold", type=float, default=0.3)
    serve_p.add_argument("--alert-min-samples", type=int, default=20)
    serve_p.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        help="per-(shard, round) probability of killing a shard worker",
    )
    serve_p.add_argument(
        "--stall-rate",
        type=float,
        default=0.0,
        help="per-(shard, round) probability of hanging a shard worker",
    )
    serve_p.add_argument("--fault-seed", type=int, default=0)
    serve_p.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="append snapshot/alert events as JSONL (read with `repro tail`)",
    )
    serve_p.add_argument(
        "--verify-batch",
        action="store_true",
        help="exit 1 unless final estimates are bit-identical to the batch "
        "estimator fed the same records",
    )

    tail_p = sub.add_parser(
        "tail", help="pretty-print (and follow) a serve --events log"
    )
    tail_p.add_argument("--events", metavar="PATH", required=True)
    tail_p.add_argument(
        "--follow",
        action="store_true",
        help="keep polling for new events until a final snapshot arrives",
    )
    tail_p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="polling interval in seconds for --follow",
    )
    return parser


def _dump_sanitizer_fingerprint() -> None:
    """Write the process-global sanitizer's fingerprint if requested.

    With ``REPRO_SANITIZE=1`` the whole CLI run is traced (activation
    happens at import, see :mod:`repro.sanitize.hooks`); setting
    ``REPRO_SANITIZE_OUT=/path/fp.json`` saves the trace for offline
    diffing with ``python -m repro.sanitize diff``.
    """
    sanitizer = _sanitize_hooks.ACTIVE
    out = os.environ.get("REPRO_SANITIZE_OUT")
    if sanitizer is None or not out:
        return
    sanitizer.fingerprint().save(out)
    print(f"sanitizer fingerprint written to {out}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    _sanitize_hooks.activate_from_env()
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list-scenarios":
            return _cmd_list_scenarios(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "tail":
            return _cmd_tail(args)
    finally:
        _dump_sanitizer_fingerprint()
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover
