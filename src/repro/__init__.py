"""repro — a reproduction of Dophy (Cao et al., ICPP 2015).

Fine-grained loss tomography for dynamic wireless sensor networks:
per-hop retransmission counts are arithmetic-coded into compact packet
annotations, from which the sink estimates every link's loss ratio.

Subpackages
-----------
``repro.coding``
    Entropy-coding substrate (bit I/O, arithmetic coder, baseline codes).
``repro.net``
    Discrete-event WSN simulator (topology, links, ARQ MAC, CTP-style
    dynamic routing).
``repro.core``
    Dophy itself: annotation encoder/decoder, symbol aggregation,
    probability-model management, per-link loss estimator.
``repro.tomography``
    Classical loss-tomography baselines (tree MLE, linear, EM, direct
    path measurement).
``repro.analysis``
    Accuracy metrics and overhead accounting.
``repro.workloads``
    Reproducible evaluation scenarios and sweep runners.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
