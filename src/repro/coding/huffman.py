"""Canonical Huffman coding over a frequency table.

The strongest per-symbol prefix-code competitor to Dophy's arithmetic
annotation: given the *same* disseminated frequency table, Huffman is
the optimal prefix code — but it still pays at least one bit per symbol,
while arithmetic coding goes below a bit on skewed sources. Comparing
"Dophy with Huffman" against "Dophy with arithmetic" isolates exactly
what the arithmetic coder contributes (see the T1 bench).

Codes are *canonical* (sorted by length, then symbol), so a decoder can
reconstruct the codebook from code lengths alone — the property real
dissemination would exploit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coding.bitio import BitReader, BitWriter
from repro.coding.freq import FrequencyTable

__all__ = ["HuffmanCode"]


def _code_lengths(freqs: Sequence[int]) -> List[int]:
    """Huffman code lengths via the standard two-queue/heap construction."""
    n = len(freqs)
    if n == 1:
        return [1]
    heap: List[Tuple[int, int, Tuple[int, ...]]] = []
    counter = itertools.count()
    for sym, f in enumerate(freqs):
        heap.append((f, next(counter), (sym,)))
    heapq.heapify(heap)
    lengths = [0] * n
    while len(heap) > 1:
        fa, _, syms_a = heapq.heappop(heap)
        fb, _, syms_b = heapq.heappop(heap)
        for s in syms_a + syms_b:
            lengths[s] += 1
        heapq.heappush(heap, (fa + fb, next(counter), syms_a + syms_b))
    return lengths


class HuffmanCode:
    """Canonical Huffman encoder/decoder for symbols ``0..n-1``."""

    def __init__(self, table: FrequencyTable) -> None:
        self.table = table
        self.lengths = _code_lengths([table.frequency(s) for s in range(table.num_symbols)])
        # Canonical assignment: sort by (length, symbol).
        order = sorted(range(table.num_symbols), key=lambda s: (self.lengths[s], s))
        self._codes: Dict[int, Tuple[int, int]] = {}  # symbol -> (codeword, length)
        code = 0
        prev_len = 0
        for sym in order:
            length = self.lengths[sym]
            code <<= length - prev_len
            self._codes[sym] = (code, length)
            code += 1
            prev_len = length
        # Decode trie as a flat dict (prefix-free, so (len, bits) is unique).
        self._decode: Dict[Tuple[int, int], int] = {
            (length, bits): sym for sym, (bits, length) in self._codes.items()
        }
        self._max_len = max(self.lengths)

    @classmethod
    def from_probabilities(
        cls, probabilities: Sequence[float], *, precision: int = 4096
    ) -> "HuffmanCode":
        return cls(FrequencyTable.from_probabilities(probabilities, precision=precision))

    @property
    def num_symbols(self) -> int:
        return self.table.num_symbols

    def code_length(self, symbol: int) -> int:
        return self._codes[symbol][1]

    def expected_length(self, probabilities: Optional[Sequence[float]] = None) -> float:
        """Mean codeword length under ``probabilities`` (default: the table's)."""
        probs = probabilities if probabilities is not None else self.table.probabilities()
        if len(probs) != self.num_symbols:
            raise ValueError("distribution length mismatch")
        return sum(p * self.code_length(s) for s, p in enumerate(probs))

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        bits, length = self._codes[symbol]
        writer.write_uint(bits, length)

    def decode_symbol(self, reader: BitReader) -> int:
        bits = 0
        for length in range(1, self._max_len + 1):
            bits = (bits << 1) | reader.read_bit()
            sym = self._decode.get((length, bits))
            if sym is not None:
                return sym
        raise ValueError("invalid Huffman codeword")

    def encode_sequence(self, symbols: Sequence[int]) -> BitWriter:
        writer = BitWriter()
        for s in symbols:
            self.encode_symbol(writer, s)
        return writer

    def decode_sequence(self, reader: BitReader, count: int) -> List[int]:
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.decode_symbol(reader) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HuffmanCode(n={self.num_symbols}, max_len={self._max_len})"
