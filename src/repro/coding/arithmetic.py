"""Integer arithmetic coding (Witten–Neal–Cleary style, 32-bit registers).

Dophy's annotation is an arithmetic codeword built *incrementally*: every
forwarding node narrows the interval with its own retransmission-count
symbol, and the codeword is finalized only when the packet reaches the
sink. :class:`ArithmeticEncoder` therefore exposes exactly that life
cycle — ``encode_symbol`` any number of times, ``copy`` to fork the
in-flight state (for would-be-size probes), and ``finish`` once.

The model argument is duck-typed: anything with ``interval(symbol) ->
(cum_lo, cum_hi, total)`` and ``symbol_for(scaled) -> symbol`` works, so
static :class:`~repro.coding.freq.FrequencyTable` and adaptive tables are
interchangeable, and a *sequence* of models (one per hop position) can be
used for context modelling.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Tuple

from repro.coding.bitio import BitReader, BitWriter

__all__ = ["ArithmeticEncoder", "ArithmeticDecoder", "SymbolModel"]

_CODE_BITS = 32
_TOP = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = _HALF + _QUARTER
#: Models whose total exceeds this cannot guarantee a non-empty interval
#: for every symbol once the coder range shrinks to a quarter.
MAX_MODEL_TOTAL = 1 << (_CODE_BITS - 2)


class SymbolModel(Protocol):
    """Structural interface every frequency model implements."""

    @property
    def total(self) -> int: ...

    def interval(self, symbol: int) -> Tuple[int, int, int]: ...

    def symbol_for(self, scaled_value: int) -> int: ...


class ArithmeticEncoder:
    """Incremental arithmetic encoder.

    Bits are emitted into an internal :class:`BitWriter` as soon as they are
    determined, so ``bit_length`` during encoding reflects the bits a packet
    annotation already occupies in flight; ``finish()`` flushes the final
    disambiguation bits and returns the complete stream.
    """

    def __init__(self) -> None:
        self._low = 0
        self._high = _TOP
        self._pending = 0  # underflow bits awaiting the next resolved bit
        self._writer = BitWriter()
        self._finished = False
        self._symbols_encoded = 0

    # -- encoding ---------------------------------------------------------------

    def encode_symbol(self, model: SymbolModel, symbol: int) -> None:
        """Narrow the interval by ``symbol`` under ``model`` and emit resolved bits."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        cum_lo, cum_hi, total = model.interval(symbol)
        if total > MAX_MODEL_TOTAL:
            raise ValueError(
                f"model total {total} exceeds coder precision limit {MAX_MODEL_TOTAL}"
            )
        if cum_lo >= cum_hi:
            raise ValueError("symbol has empty interval (zero frequency)")
        span = self._high - self._low + 1
        self._high = self._low + (span * cum_hi) // total - 1
        self._low = self._low + (span * cum_lo) // total
        self._renormalize()
        self._symbols_encoded += 1

    def _renormalize(self) -> None:
        while True:
            if self._high < _HALF:
                self._emit(0)
            elif self._low >= _HALF:
                self._emit(1)
                self._low -= _HALF
                self._high -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._pending += 1
                self._low -= _QUARTER
                self._high -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1

    def _emit(self, bit: int) -> None:
        self._writer.write_bit(bit)
        inverse = 1 - bit
        for _ in range(self._pending):
            self._writer.write_bit(inverse)
        self._pending = 0

    def finish(self) -> Tuple[bytes, int]:
        """Flush terminal bits; return ``(payload_bytes, exact_bit_length)``."""
        if self._finished:
            raise RuntimeError("encoder already finished")
        self._finished = True
        # Two final bits pin the codeword inside [low, high].
        self._pending += 1
        if self._low < _QUARTER:
            self._emit(0)
        else:
            self._emit(1)
        return self._writer.getvalue(), self._writer.bit_length

    # -- inspection ---------------------------------------------------------------

    @property
    def bit_length(self) -> int:
        """Bits already emitted (excludes pending/terminal bits)."""
        return self._writer.bit_length

    @property
    def symbols_encoded(self) -> int:
        return self._symbols_encoded

    @property
    def finished(self) -> bool:
        return self._finished

    def finalized_bit_length(self) -> int:
        """Exact length the stream would have if finished now (non-destructive)."""
        if self._finished:
            return self._writer.bit_length
        return self.copy().finish()[1]

    def copy(self) -> "ArithmeticEncoder":
        """Deep copy of the in-flight coder state (used when packets fork/probe)."""
        clone = ArithmeticEncoder.__new__(ArithmeticEncoder)
        clone._low = self._low
        clone._high = self._high
        clone._pending = self._pending
        clone._writer = self._writer.copy()
        clone._finished = self._finished
        clone._symbols_encoded = self._symbols_encoded
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArithmeticEncoder(symbols={self._symbols_encoded},"
            f" bits={self._writer.bit_length}, finished={self._finished})"
        )


class ArithmeticDecoder:
    """Decoder counterpart; decodes symbols in encode order given the same models."""

    def __init__(self, data: bytes, bit_length: Optional[int] = None) -> None:
        self._reader = BitReader(data, bit_length)
        self._low = 0
        self._high = _TOP
        self._value = 0
        for _ in range(_CODE_BITS):
            self._value = (self._value << 1) | self._reader.read_bit()
        self._symbols_decoded = 0

    @classmethod
    def from_encoder_output(cls, payload: Tuple[bytes, int]) -> "ArithmeticDecoder":
        """Convenience: build from the tuple :meth:`ArithmeticEncoder.finish` returns."""
        data, bit_length = payload
        return cls(data, bit_length)

    def decode_symbol(self, model: SymbolModel) -> int:
        """Decode and return the next symbol under ``model``."""
        total = model.total
        if total > MAX_MODEL_TOTAL:
            raise ValueError(
                f"model total {total} exceeds coder precision limit {MAX_MODEL_TOTAL}"
            )
        span = self._high - self._low + 1
        scaled = ((self._value - self._low + 1) * total - 1) // span
        symbol = model.symbol_for(scaled)
        cum_lo, cum_hi, total = model.interval(symbol)
        self._high = self._low + (span * cum_hi) // total - 1
        self._low = self._low + (span * cum_lo) // total
        self._renormalize()
        self._symbols_decoded += 1
        return symbol

    def decode_sequence(self, model: SymbolModel, count: int) -> List[int]:
        """Decode ``count`` symbols under a single shared model."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.decode_symbol(model) for _ in range(count)]

    def _renormalize(self) -> None:
        while True:
            if self._high < _HALF:
                pass
            elif self._low >= _HALF:
                self._low -= _HALF
                self._high -= _HALF
                self._value -= _HALF
            elif self._low >= _QUARTER and self._high < _THREE_QUARTERS:
                self._low -= _QUARTER
                self._high -= _QUARTER
                self._value -= _QUARTER
            else:
                break
            self._low <<= 1
            self._high = (self._high << 1) | 1
            self._value = (self._value << 1) | self._reader.read_bit()

    @property
    def symbols_decoded(self) -> int:
        return self._symbols_decoded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ArithmeticDecoder(symbols={self._symbols_decoded})"
