"""Bit-level writer/reader primitives.

All entropy coders in :mod:`repro.coding` produce and consume streams of
individual bits. ``BitWriter`` accumulates bits most-significant-first into
a byte buffer; ``BitReader`` replays them in the same order. Both track the
exact bit length, which the overhead-accounting layer reports (a packet
annotation of 13 bits costs 13 bits in our accounting, even though a real
radio would pad to 2 bytes — byte-padded figures are derived views).
"""

from __future__ import annotations

from typing import Iterable, List

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates bits (MSB-first within each byte) into a growable buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0  # partial byte being filled
        self._nbits_in_current = 0
        self._total_bits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._nbits_in_current += 1
        self._total_bits += 1
        if self._nbits_in_current == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._nbits_in_current = 0

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append each bit from ``bits`` in order."""
        for bit in bits:
            self.write_bit(bit)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as a big-endian unsigned integer of ``width`` bits."""
        if width < 0:
            raise ValueError("width must be >= 0")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int) -> None:
        """Append ``value`` ones followed by a terminating zero."""
        if value < 0:
            raise ValueError("unary value must be >= 0")
        for _ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._total_bits

    @property
    def byte_length(self) -> int:
        """Bytes needed to hold the stream (last byte zero-padded)."""
        return (self._total_bits + 7) // 8

    def getvalue(self) -> bytes:
        """Return the stream as bytes, zero-padding the trailing partial byte."""
        out = bytearray(self._bytes)
        if self._nbits_in_current:
            out.append(self._current << (8 - self._nbits_in_current))
        return bytes(out)

    def to_bits(self) -> List[int]:
        """Return the exact bit sequence written (no padding)."""
        bits: List[int] = []
        for byte in self._bytes:
            for shift in range(7, -1, -1):
                bits.append((byte >> shift) & 1)
        for shift in range(self._nbits_in_current - 1, -1, -1):
            bits.append((self._current >> shift) & 1)
        return bits

    def copy(self) -> "BitWriter":
        """Deep copy — used when an in-flight encoder state must be forked."""
        clone = BitWriter.__new__(BitWriter)
        clone._bytes = bytearray(self._bytes)
        clone._current = self._current
        clone._nbits_in_current = self._nbits_in_current
        clone._total_bits = self._total_bits
        return clone

    def __len__(self) -> int:
        return self._total_bits

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitWriter(bits={self._total_bits})"


class BitReader:
    """Replays a bit stream produced by :class:`BitWriter`.

    Reading past the end returns 0 bits. Arithmetic decoding legitimately
    reads a few bits past the encoded payload (the decoder register is
    refilled beyond the final symbol), so this mirrors the classic
    implementation convention rather than raising.
    """

    def __init__(self, data: bytes, bit_length: int | None = None) -> None:
        self._data = bytes(data)
        self._bit_length = 8 * len(self._data) if bit_length is None else bit_length
        if self._bit_length > 8 * len(self._data):
            raise ValueError("bit_length exceeds available data")
        self._pos = 0

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitReader":
        """Build a reader directly from a sequence of bits."""
        writer = BitWriter()
        writer.write_bits(bits)
        return cls(writer.getvalue(), writer.bit_length)

    def read_bit(self) -> int:
        """Return the next bit, or 0 once the stream is exhausted."""
        if self._pos >= self._bit_length:
            self._pos += 1
            return 0
        byte = self._data[self._pos // 8]
        bit = (byte >> (7 - (self._pos % 8))) & 1
        self._pos += 1
        return bit

    def read_uint(self, width: int) -> int:
        """Read ``width`` bits as a big-endian unsigned integer."""
        if width < 0:
            raise ValueError("width must be >= 0")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self) -> int:
        """Read a unary-coded value (count of 1s before the first 0)."""
        count = 0
        while True:
            bit = self.read_bit()
            if bit == 0:
                return count
            count += 1
            if count > self._bit_length + 1:
                raise ValueError("malformed unary code: no terminator found")

    @property
    def bits_consumed(self) -> int:
        """Bits read so far (may exceed the stream length for arithmetic decode)."""
        return self._pos

    @property
    def bits_remaining(self) -> int:
        """Bits left before the reader starts returning padding zeros."""
        return max(0, self._bit_length - self._pos)

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._bit_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BitReader(pos={self._pos}, bit_length={self._bit_length})"
