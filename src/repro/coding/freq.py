"""Frequency models for the arithmetic coder.

A frequency model maps symbols ``0..n-1`` to integer frequencies and
answers two queries:

* encode side — the cumulative interval ``[cum_lo, cum_hi)`` of a symbol;
* decode side — which symbol owns a given scaled cumulative value.

Two implementations are provided. :class:`FrequencyTable` is immutable and
is what Dophy uses operationally: every node in an epoch encodes against
the *same* static table, so the single sink decoder stays synchronized
with the many encoders without per-packet state. The table is re-derived
periodically by the sink (see :mod:`repro.core.model`).
:class:`AdaptiveFrequencyTable` (Fenwick-tree backed, increment-on-encode)
exists for the single-stream setting and for the ablation comparing
per-packet-adaptive against Dophy's periodic static models.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["FrequencyTable", "AdaptiveFrequencyTable"]


class FrequencyTable:
    """Immutable integer frequency table over symbols ``0..n-1``.

    Frequencies must be strictly positive: a zero-frequency symbol would be
    unencodable, and Dophy guarantees decodability of any count sequence by
    smoothing the estimated distribution (see ``from_probabilities``).
    """

    def __init__(self, frequencies: Sequence[int]) -> None:
        freqs = [int(f) for f in frequencies]
        if not freqs:
            raise ValueError("frequency table must contain at least one symbol")
        if any(f <= 0 for f in freqs):
            raise ValueError("all frequencies must be > 0")
        self._freqs: Tuple[int, ...] = tuple(freqs)
        cumulative = [0]
        for f in freqs:
            cumulative.append(cumulative[-1] + f)
        self._cum: Tuple[int, ...] = tuple(cumulative)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def uniform(cls, num_symbols: int) -> "FrequencyTable":
        """Equal-frequency table over ``num_symbols`` symbols."""
        if num_symbols <= 0:
            raise ValueError("num_symbols must be > 0")
        return cls([1] * num_symbols)

    @classmethod
    def from_counts(
        cls, counts: Sequence[int], *, smoothing: int = 1
    ) -> "FrequencyTable":
        """Build from observed symbol counts with additive smoothing.

        ``smoothing >= 1`` guarantees every symbol stays encodable even if
        it was never observed in the estimation window.
        """
        if smoothing < 1:
            raise ValueError("smoothing must be >= 1 to keep all symbols encodable")
        return cls([int(c) + smoothing for c in counts])

    @classmethod
    def from_probabilities(
        cls,
        probabilities: Sequence[float],
        *,
        precision: int = 4096,
    ) -> "FrequencyTable":
        """Quantize a probability vector to integer frequencies.

        Each symbol receives at least frequency 1 (implicit smoothing), and
        the rest of the ``precision`` budget is distributed proportionally.
        """
        probs = [float(p) for p in probabilities]
        if not probs:
            raise ValueError("probabilities must be non-empty")
        if any(p < 0 or math.isnan(p) for p in probs):
            raise ValueError("probabilities must be non-negative")
        total = sum(probs)
        if total <= 0:
            return cls.uniform(len(probs))
        if precision < len(probs):
            raise ValueError("precision must be >= number of symbols")
        budget = precision - len(probs)
        freqs = [1 + int(round(budget * p / total)) for p in probs]
        return cls(freqs)

    # -- model interface -----------------------------------------------------

    @property
    def num_symbols(self) -> int:
        return len(self._freqs)

    @property
    def total(self) -> int:
        """Sum of all frequencies (the denominator of every interval)."""
        return self._cum[-1]

    def frequency(self, symbol: int) -> int:
        self._check_symbol(symbol)
        return self._freqs[symbol]

    def interval(self, symbol: int) -> Tuple[int, int, int]:
        """Return ``(cum_lo, cum_hi, total)`` for ``symbol``."""
        self._check_symbol(symbol)
        return self._cum[symbol], self._cum[symbol + 1], self._cum[-1]

    def symbol_for(self, scaled_value: int) -> int:
        """Return the symbol whose cumulative interval contains ``scaled_value``."""
        if not 0 <= scaled_value < self.total:
            raise ValueError(
                f"scaled_value {scaled_value} out of range [0, {self.total})"
            )
        # Binary search over the cumulative array.
        lo, hi = 0, len(self._freqs)
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self._cum[mid] <= scaled_value:
                lo = mid
            else:
                hi = mid
        return lo

    def probability(self, symbol: int) -> float:
        """The probability this table assigns to ``symbol``."""
        return self.frequency(symbol) / self.total

    def probabilities(self) -> List[float]:
        total = self.total
        return [f / total for f in self._freqs]

    def entropy_bits(self) -> float:
        """Shannon entropy (bits/symbol) of the table's distribution."""
        return -sum(p * math.log2(p) for p in self.probabilities() if p > 0)

    def expected_code_length(self, true_probabilities: Sequence[float]) -> float:
        """Cross-entropy (bits/symbol) of coding ``true_probabilities`` with this model.

        This is the asymptotic per-symbol cost an arithmetic coder pays when
        the source follows ``true_probabilities`` but the code uses this
        table — the quantity Dophy's periodic model updates minimize.
        """
        if len(true_probabilities) != self.num_symbols:
            raise ValueError("distribution length mismatch")
        model = self.probabilities()
        cost = 0.0
        for p_true, p_model in zip(true_probabilities, model):
            if p_true > 0:
                cost -= p_true * math.log2(p_model)
        return cost

    def serialized_size_bits(self, *, bits_per_frequency: int = 12) -> int:
        """Bits needed to disseminate this table to the network.

        Dophy broadcasts updated models; this is the payload cost counted by
        the overhead accounting (one quantized frequency per symbol plus a
        symbol-count byte).
        """
        return 8 + self.num_symbols * bits_per_frequency

    # -- misc ------------------------------------------------------------------

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < len(self._freqs):
            raise ValueError(
                f"symbol {symbol} out of range [0, {len(self._freqs)})"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FrequencyTable) and self._freqs == other._freqs

    def __hash__(self) -> int:
        return hash(self._freqs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrequencyTable(n={self.num_symbols}, total={self.total})"


class AdaptiveFrequencyTable:
    """Fenwick-tree-backed adaptive frequency model.

    Starts uniform and increments a symbol's frequency after each
    encode/decode, so encoder and decoder adapt in lockstep *within one
    stream*. Unsuitable for Dophy's many-encoders-one-decoder deployment
    (each node would adapt on its own packets only, desynchronizing from
    the sink) — included as the natural strawman for the model-management
    ablation and for single-stream compression uses.
    """

    def __init__(self, num_symbols: int, *, increment: int = 32, max_total: int = 1 << 24) -> None:
        if num_symbols <= 0:
            raise ValueError("num_symbols must be > 0")
        if increment <= 0:
            raise ValueError("increment must be > 0")
        self._n = num_symbols
        self._increment = increment
        self._max_total = max_total
        self._freqs = [1] * num_symbols
        self._tree = [0] * (num_symbols + 1)
        for i in range(num_symbols):
            self._tree_add(i, 1)
        self._total = num_symbols

    # Fenwick primitives -------------------------------------------------------

    def _tree_add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def _prefix_sum(self, index: int) -> int:
        """Sum of frequencies of symbols < index."""
        total = 0
        i = index
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    # Model interface -----------------------------------------------------------

    @property
    def num_symbols(self) -> int:
        return self._n

    @property
    def total(self) -> int:
        return self._total

    def frequency(self, symbol: int) -> int:
        self._check_symbol(symbol)
        return self._freqs[symbol]

    def interval(self, symbol: int) -> Tuple[int, int, int]:
        self._check_symbol(symbol)
        lo = self._prefix_sum(symbol)
        return lo, lo + self._freqs[symbol], self._total

    def symbol_for(self, scaled_value: int) -> int:
        if not 0 <= scaled_value < self._total:
            raise ValueError(
                f"scaled_value {scaled_value} out of range [0, {self._total})"
            )
        # Fenwick descent: find the largest index with prefix_sum <= value.
        idx = 0
        remaining = scaled_value
        bitmask = 1 << (self._n.bit_length())
        while bitmask:
            nxt = idx + bitmask
            if nxt <= self._n and self._tree[nxt] <= remaining:
                idx = nxt
                remaining -= self._tree[nxt]
            bitmask >>= 1
        return idx  # idx symbols have cumulative <= value => symbol index idx

    def update(self, symbol: int) -> None:
        """Record one occurrence of ``symbol`` (call after encode/decode)."""
        self._check_symbol(symbol)
        self._freqs[symbol] += self._increment
        self._tree_add(symbol, self._increment)
        self._total += self._increment
        if self._total > self._max_total:
            self._rescale()

    def _rescale(self) -> None:
        """Halve all frequencies (keeping them >= 1) to avoid overflow."""
        new_freqs = [max(1, f // 2) for f in self._freqs]
        self._freqs = new_freqs
        self._tree = [0] * (self._n + 1)
        for i, f in enumerate(new_freqs):
            self._tree_add(i, f)
        self._total = sum(new_freqs)

    def snapshot(self) -> FrequencyTable:
        """Freeze the current adaptive state into a static table."""
        return FrequencyTable(self._freqs)

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self._n:
            raise ValueError(f"symbol {symbol} out of range [0, {self._n})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AdaptiveFrequencyTable(n={self._n}, total={self._total})"
