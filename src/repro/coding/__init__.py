"""Entropy-coding substrate used by Dophy's annotation encoder.

Contains a bit-level I/O layer, static and adaptive frequency models, an
integer arithmetic coder (the workhorse behind Dophy's compact per-hop
retransmission-count annotations), and the classical prefix codes Dophy is
compared against in the paper's encoding-efficiency experiments.
"""

from repro.coding.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.coding.baseline_codes import (
    EliasDeltaCode,
    EliasGammaCode,
    FixedWidthCode,
    GolombRiceCode,
    IntegerCode,
    UnaryCode,
)
from repro.coding.bitio import BitReader, BitWriter
from repro.coding.freq import AdaptiveFrequencyTable, FrequencyTable

__all__ = [
    "BitReader",
    "BitWriter",
    "FrequencyTable",
    "AdaptiveFrequencyTable",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "IntegerCode",
    "FixedWidthCode",
    "UnaryCode",
    "EliasGammaCode",
    "EliasDeltaCode",
    "GolombRiceCode",
]
