"""Classical integer codes Dophy's arithmetic annotation is compared against.

The paper's encoding-efficiency experiments pit arithmetic coding of
retransmission counts against straightforward alternatives a protocol
designer would otherwise use: fixed-width fields (what plain TinyOS
annotations do), unary, Elias gamma/delta, and Golomb–Rice. All codes here
share one interface (:class:`IntegerCode`) encoding sequences of
non-negative integers to a bit stream.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.coding.bitio import BitReader, BitWriter

__all__ = [
    "IntegerCode",
    "FixedWidthCode",
    "UnaryCode",
    "EliasGammaCode",
    "EliasDeltaCode",
    "GolombRiceCode",
    "optimal_rice_parameter",
]


class IntegerCode(ABC):
    """A prefix-free code over non-negative integers."""

    #: Short identifier used in benchmark tables.
    name: str = "abstract"

    @abstractmethod
    def encode_value(self, writer: BitWriter, value: int) -> None:
        """Append the codeword for ``value`` to ``writer``."""

    @abstractmethod
    def decode_value(self, reader: BitReader) -> int:
        """Read one codeword from ``reader`` and return its value."""

    def encode_sequence(self, values: Sequence[int]) -> BitWriter:
        """Encode ``values`` back-to-back into a fresh writer."""
        writer = BitWriter()
        for value in values:
            self.encode_value(writer, value)
        return writer

    def decode_sequence(self, reader: BitReader, count: int) -> List[int]:
        """Decode ``count`` consecutive values."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.decode_value(reader) for _ in range(count)]

    def code_length(self, value: int) -> int:
        """Bit length of the codeword for ``value`` (default: encode and measure)."""
        writer = BitWriter()
        self.encode_value(writer, value)
        return writer.bit_length

    @staticmethod
    def _check_value(value: int) -> int:
        if not isinstance(value, (int,)) or isinstance(value, bool):
            raise TypeError(f"value must be an int, got {type(value).__name__}")
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        return value


class FixedWidthCode(IntegerCode):
    """Plain ``width``-bit binary fields — the no-compression baseline.

    Values that overflow the field raise: a real protocol would saturate,
    but silently corrupting measurements would invalidate the comparison,
    so the caller (the annotation layer) is responsible for clamping via
    its symbol aggregation.
    """

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be > 0")
        self.width = width
        self.name = f"fixed{width}"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_value(value)
        if value.bit_length() > self.width:
            raise ValueError(f"value {value} does not fit in {self.width} bits")
        writer.write_uint(value, self.width)

    def decode_value(self, reader: BitReader) -> int:
        return reader.read_uint(self.width)

    def code_length(self, value: int) -> int:
        return self.width


class UnaryCode(IntegerCode):
    """``value`` ones then a zero. Optimal iff P(v) = 2^-(v+1)."""

    name = "unary"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_value(value)
        writer.write_unary(value)

    def decode_value(self, reader: BitReader) -> int:
        return reader.read_unary()

    def code_length(self, value: int) -> int:
        return value + 1


class EliasGammaCode(IntegerCode):
    """Elias gamma over v+1 (so 0 is encodable): unary(length) + binary tail."""

    name = "elias_gamma"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_value(value)
        n = value + 1
        nbits = n.bit_length()
        # nbits-1 zeros, then n in nbits bits (leading 1 implicit in count).
        for _ in range(nbits - 1):
            writer.write_bit(0)
        writer.write_uint(n, nbits)

    def decode_value(self, reader: BitReader) -> int:
        zeros = 0
        while True:
            bit = reader.read_bit()
            if bit == 1:
                break
            zeros += 1
            if zeros > 64:
                raise ValueError("malformed Elias gamma code")
        n = 1
        for _ in range(zeros):
            n = (n << 1) | reader.read_bit()
        return n - 1

    def code_length(self, value: int) -> int:
        return 2 * (value + 1).bit_length() - 1


class EliasDeltaCode(IntegerCode):
    """Elias delta over v+1: gamma(length) + binary tail. Better for large values."""

    name = "elias_delta"

    def __init__(self) -> None:
        self._gamma = EliasGammaCode()

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_value(value)
        n = value + 1
        nbits = n.bit_length()
        self._gamma.encode_value(writer, nbits - 1)
        if nbits > 1:
            writer.write_uint(n - (1 << (nbits - 1)), nbits - 1)

    def decode_value(self, reader: BitReader) -> int:
        nbits = self._gamma.decode_value(reader) + 1
        n = 1 << (nbits - 1)
        if nbits > 1:
            n |= reader.read_uint(nbits - 1)
        return n - 1

    def code_length(self, value: int) -> int:
        nbits = (value + 1).bit_length()
        return self._gamma.code_length(nbits - 1) + (nbits - 1)


class GolombRiceCode(IntegerCode):
    """Rice code with parameter ``k``: unary(v >> k) + k-bit remainder.

    Near-optimal for geometric sources — the natural strong baseline for
    retransmission counts, which *are* geometric per link.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be >= 0")
        self.k = k
        self.name = f"rice{k}"

    def encode_value(self, writer: BitWriter, value: int) -> None:
        self._check_value(value)
        writer.write_unary(value >> self.k)
        if self.k:
            writer.write_uint(value & ((1 << self.k) - 1), self.k)

    def decode_value(self, reader: BitReader) -> int:
        quotient = reader.read_unary()
        remainder = reader.read_uint(self.k) if self.k else 0
        return (quotient << self.k) | remainder

    def code_length(self, value: int) -> int:
        return (value >> self.k) + 1 + self.k


def optimal_rice_parameter(mean_value: float) -> int:
    """Rice parameter minimizing expected length for a geometric source.

    Uses the standard approximation ``k = max(0, ceil(log2(mean)))`` with
    the golden-ratio refinement for small means (Kiely 2004).
    """
    if mean_value < 0:
        raise ValueError("mean_value must be >= 0")
    if mean_value < 0.2:
        return 0
    theta = mean_value / (1.0 + mean_value)  # geometric "failure" parameter
    golden = (math.sqrt(5.0) - 1.0) / 2.0
    k = max(0, 1 + int(math.floor(math.log2(math.log(golden) / math.log(theta)))))
    return k
