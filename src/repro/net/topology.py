"""Network topologies: node placement and radio connectivity.

A :class:`Topology` is an undirected connectivity graph (who can hear
whom) plus node positions and a designated sink. Link *quality* lives in
:mod:`repro.net.link`; the topology only says which links exist.

Generators mirror the setups used in WSN simulation studies: random
geometric graphs (the TOSSIM-style "random deployment"), grids, and
lines (for controlled path-length experiments).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.utils.rng import derive_rng

__all__ = [
    "Topology",
    "random_geometric_topology",
    "grid_topology",
    "line_topology",
    "topology_from_edges",
]


class Topology:
    """Undirected connectivity graph with positions and a sink node.

    Instances are immutable after construction, so all derived views —
    the sorted edge lists, the sink-hop map — are computed once and
    memoized. The memoized sequences are tuples: callers can iterate,
    index and ``list()`` them but cannot mutate the shared copies.
    """

    def __init__(
        self,
        graph: nx.Graph,
        sink: int,
        positions: Optional[Dict[int, Tuple[float, float]]] = None,
    ):
        if sink not in graph:
            raise ValueError(f"sink {sink} is not a node of the graph")
        if graph.number_of_nodes() < 2:
            raise ValueError("topology needs at least two nodes")
        self.graph = graph
        self.sink = sink
        self.positions = positions or {}
        # One vectorized BFS yields both the hop counts and the
        # connectivity check (connected iff every node was reached),
        # replacing nx.is_connected + nx BFS — two Python-level graph
        # traversals — on the construction path.
        self._hops_to_sink: Dict[int, int] = self._bfs_hops()
        self._undirected: Optional[Tuple[Tuple[int, int], ...]] = None
        self._directed: Optional[Tuple[Tuple[int, int], ...]] = None
        self._upstream: Optional[Tuple[Tuple[int, int], ...]] = None

    def _bfs_hops(self) -> Dict[int, int]:
        """Hop counts from the sink for every node, via a frontier BFS
        over flat edge arrays. Raises if the graph is disconnected.

        Produces exactly the distances ``nx.single_source_shortest_path_length``
        returns (BFS levels are unique, whatever the traversal order).
        """
        nodes = sorted(self.graph.nodes)
        num = len(nodes)
        index = {n: i for i, n in enumerate(nodes)}
        if self.graph.number_of_edges() == 0:
            raise ValueError("topology must be connected")
        us, vs = zip(*self.graph.edges)
        u_idx = np.fromiter((index[u] for u in us), dtype=np.intp, count=len(us))
        v_idx = np.fromiter((index[v] for v in vs), dtype=np.intp, count=len(vs))
        src = np.concatenate([u_idx, v_idx])
        dst = np.concatenate([v_idx, u_idx])
        order = np.argsort(src, kind="stable")
        src_sorted = src[order]
        dst_sorted = dst[order]
        starts = np.searchsorted(src_sorted, np.arange(num + 1))
        dist = np.full(num, -1, dtype=np.int64)
        frontier = np.asarray([index[self.sink]], dtype=np.intp)
        dist[frontier] = 0
        level = 0
        while frontier.size:
            level += 1
            reached = np.concatenate(
                [dst_sorted[starts[i] : starts[i + 1]] for i in frontier.tolist()]
            )
            fresh = np.unique(reached[dist[reached] < 0])
            dist[fresh] = level
            frontier = fresh
        if (dist < 0).any():
            raise ValueError("topology must be connected")
        return {n: int(d) for n, d in zip(nodes, dist.tolist())}

    # -- queries -----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def nodes(self) -> List[int]:
        return sorted(self.graph.nodes)

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def neighbors(self, node: int) -> List[int]:
        return sorted(self.graph.neighbors(node))

    def undirected_edges(self) -> Tuple[Tuple[int, int], ...]:
        """Each physical link once, as (min, max). Memoized, immutable."""
        if self._undirected is None:
            self._undirected = tuple(
                sorted((min(u, v), max(u, v)) for u, v in self.graph.edges)
            )
        return self._undirected

    def directed_edges(self) -> Tuple[Tuple[int, int], ...]:
        """Both directions of every physical link. Memoized, immutable."""
        if self._directed is None:
            out: List[Tuple[int, int]] = []
            for u, v in self.graph.edges:
                out.append((u, v))
                out.append((v, u))
            self._directed = tuple(sorted(out))
        return self._directed

    def upstream_edges(self) -> Tuple[Tuple[int, int], ...]:
        """Directed edges (u, v) where v is at most as far from the sink as u.

        These are the links data traffic can use under loop-free collection
        routing — the set tomography approaches attempt to estimate.
        Memoized, immutable.
        """
        if self._upstream is None:
            self._upstream = tuple(
                sorted(
                    (u, v)
                    for u, v in self.directed_edges()
                    if self._hops_to_sink[v] <= self._hops_to_sink[u]
                    and u != self.sink
                )
            )
        return self._upstream

    def hops_to_sink(self, node: int) -> int:
        return self._hops_to_sink[node]

    @property
    def max_depth(self) -> int:
        """Eccentricity of the sink (longest shortest path)."""
        return max(self._hops_to_sink.values())

    def distance(self, u: int, v: int) -> float:
        """Euclidean distance, if positions are known."""
        if u not in self.positions or v not in self.positions:
            raise KeyError("positions unknown for requested nodes")
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Topology(nodes={self.num_nodes}, edges={self.num_edges},"
            f" sink={self.sink}, depth={self.max_depth})"
        )


def random_geometric_topology(
    num_nodes: int,
    *,
    seed: int,
    radius: Optional[float] = None,
    side: float = 1.0,
    sink_position: str = "corner",
    max_attempts: int = 50,
) -> Topology:
    """Random geometric deployment in a ``side``×``side`` square.

    Nodes are placed uniformly at random; two nodes are connected iff
    within ``radius``. If ``radius`` is omitted it starts at the
    connectivity threshold ``side * sqrt(2 * ln(n) / n)`` and grows until
    the graph is connected (re-drawing placements on failure).

    ``sink_position`` is ``"corner"`` (node 0 pinned at the origin — the
    classic collection layout maximizing path diversity) or ``"center"``.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    if sink_position not in ("corner", "center"):
        raise ValueError("sink_position must be 'corner' or 'center'")
    rng = derive_rng(seed, "topology", "rgg")
    base_radius = radius if radius is not None else side * math.sqrt(
        2.0 * math.log(max(num_nodes, 3)) / num_nodes
    )
    for attempt in range(max_attempts):
        grow = 1.0 + 0.15 * attempt
        r = base_radius * (grow if radius is None else 1.0)
        coords = rng.uniform(0.0, side, size=(num_nodes, 2))
        pos: Dict[int, Tuple[float, float]] = {
            i: (float(x), float(y)) for i, (x, y) in enumerate(coords)
        }
        pos[0] = (0.0, 0.0) if sink_position == "corner" else (side / 2, side / 2)
        xs = coords[:, 0].copy()
        ys = coords[:, 1].copy()
        xs[0], ys[0] = pos[0]
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        # Blocked pairwise radius test. Identical to the scalar double
        # loop it replaces: fl(fl(dx*dx) + fl(dy*dy)) <= fl(r*r) per
        # pair with the same IEEE-754 operations, and row-major
        # ``nonzero`` preserves the (i ascending, j ascending) edge
        # insertion order that fixes neighbor-iteration order downstream.
        # Row blocks bound the temporaries to O(block * n) instead of
        # O(n^2).
        r2 = r * r
        for start in range(0, num_nodes, 256):
            stop = min(start + 256, num_nodes)
            dx = xs[start:stop, None] - xs[None, :]
            d2 = dx * dx
            dy = ys[start:stop, None] - ys[None, :]
            d2 += dy * dy
            ii, jj = np.nonzero(d2 <= r2)
            ii += start
            keep = jj > ii
            graph.add_edges_from(zip(ii[keep].tolist(), jj[keep].tolist()))
        if nx.is_connected(graph):
            return Topology(graph, sink=0, positions=pos)
        if radius is not None:
            continue  # fixed radius: just re-draw placements
    raise RuntimeError(
        f"could not generate a connected RGG with n={num_nodes} after {max_attempts} attempts"
    )


def grid_topology(
    rows: int,
    cols: int,
    *,
    spacing: float = 1.0,
    diagonal: bool = False,
) -> Topology:
    """Regular ``rows``×``cols`` grid; sink at node 0 (top-left corner).

    With ``diagonal=True`` nodes also hear their diagonal neighbours
    (8-connectivity), giving each node multiple candidate parents — the
    regime where dynamic parent selection matters.
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("grid must contain at least two nodes")
    num = rows * cols
    r = np.repeat(np.arange(rows), cols)
    c = np.tile(np.arange(cols), rows)
    # Positions: same per-element float products as the scalar loop
    # (``c * spacing``, ``r * spacing``), evaluated array-at-once.
    xs = c * spacing
    ys = r * spacing
    positions: Dict[int, Tuple[float, float]] = {
        i: (float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))
    }
    offsets = [(0, 1), (1, 0)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    # Candidate neighbours as an (n, k) block; the row-major boolean
    # flatten replays the scalar loop's exact edge insertion order
    # (node-major, offsets inner).
    dr = np.asarray([d for d, _ in offsets])
    dc = np.asarray([d for _, d in offsets])
    rr = r[:, None] + dr[None, :]
    cc = c[:, None] + dc[None, :]
    valid = (rr >= 0) & (rr < rows) & (cc >= 0) & (cc < cols)
    nid = r * cols + c
    nbr = rr * cols + cc
    us = np.broadcast_to(nid[:, None], valid.shape)[valid]
    vs = nbr[valid]
    graph = nx.Graph()
    graph.add_nodes_from(range(num))
    graph.add_edges_from(zip(us.tolist(), vs.tolist()))
    return Topology(graph, sink=0, positions=positions)


def line_topology(num_nodes: int, *, spacing: float = 1.0) -> Topology:
    """A chain 0-1-2-...-(n-1) with the sink at node 0.

    The controlled setting for encoding-overhead-vs-path-length sweeps:
    node ``i`` is exactly ``i`` hops from the sink.
    """
    if num_nodes < 2:
        raise ValueError("num_nodes must be >= 2")
    graph = nx.path_graph(num_nodes)
    # Same per-element product as ``i * spacing`` in the scalar dict
    # comprehension, drawn array-at-once.
    xs = np.arange(num_nodes) * spacing
    positions = {i: (float(x), 0.0) for i, x in enumerate(xs)}
    return Topology(graph, sink=0, positions=positions)


def topology_from_edges(
    edges: Iterable[Tuple[int, int]],
    *,
    sink: int = 0,
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
) -> Topology:
    """Build a topology from an explicit edge list (for tests and traces)."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return Topology(graph, sink=sink, positions=positions)
