"""Packet and per-hop record structures.

A :class:`Packet` is a data-collection message travelling from an origin
node to the sink. The simulator appends a :class:`HopRecord` for every
link traversal (the ground truth); annotation strategies (Dophy or a
baseline) maintain their own payload in :attr:`Packet.annotation` — the
only information a real sink would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = ["HopRecord", "Packet"]


@dataclass
class HopRecord:
    """Ground truth for one link traversal (visible to the simulator only)."""

    sender: int
    receiver: int
    #: Total MAC transmissions used (1 = no retransmission).
    attempts: int
    #: Simulation time when the hop completed.
    time: float
    #: Whether the hop ultimately succeeded (False => packet dropped here).
    delivered: bool

    @property
    def retransmissions(self) -> int:
        """Retransmission count = attempts - 1 (what Dophy encodes)."""
        return self.attempts - 1

    @property
    def link(self) -> Tuple[int, int]:
        return (self.sender, self.receiver)


@dataclass
class Packet:
    """A data packet in flight from ``origin`` to the sink."""

    origin: int
    seqno: int
    created_at: float
    #: Ground-truth hop log (simulator-side; not visible to the sink).
    hops: List[HopRecord] = field(default_factory=list)
    #: Opaque per-protocol annotation payload (what the radio carries).
    annotation: Any = None
    #: Set when the packet reaches the sink.
    delivered_at: Optional[float] = None
    #: Set when the packet is dropped (max retries exhausted / TTL).
    dropped_at: Optional[float] = None
    #: Reason string when dropped ("retries", "ttl", "no_route").
    drop_reason: Optional[str] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None

    @property
    def hop_count(self) -> int:
        """Number of successful link traversals so far."""
        return sum(1 for h in self.hops if h.delivered)

    @property
    def path(self) -> List[int]:
        """Node sequence origin..last-receiver over successful hops."""
        nodes = [self.origin]
        for hop in self.hops:
            if hop.delivered:
                nodes.append(hop.receiver)
        return nodes

    @property
    def total_transmissions(self) -> int:
        """All MAC transmissions spent on this packet (including failed hops)."""
        return sum(h.attempts for h in self.hops)

    @property
    def key(self) -> Tuple[int, int]:
        """Globally unique packet identity (origin, seqno)."""
        return (self.origin, self.seqno)

    def record_hop(
        self, sender: int, receiver: int, attempts: int, time: float, delivered: bool
    ) -> HopRecord:
        """Append and return a ground-truth hop record."""
        record = HopRecord(sender, receiver, attempts, time, delivered)
        self.hops.append(record)
        return record
