"""Ground-truth trace collection.

The simulator records, per directed link, every hop-level ARQ exchange:
how many frames were sent, which attempt first got through, and whether
the hop succeeded. Estimators are scored against either the configured
(model) loss ratios or the *empirical* realized frame-loss fractions —
the latter is the fair finite-sample reference, since even a perfect
estimator can only know what the channel actually did.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.link import Channel
from repro.net.mac import MacResult
from repro.net.packet import Packet

__all__ = ["GroundTruth", "LinkUsage"]


@dataclass
class LinkUsage:
    """Aggregated ground truth for one directed link."""

    #: Number of hop-level ARQ exchanges (packets attempted on this link).
    exchanges: int = 0
    #: Total data frames sent.
    frames_sent: int = 0
    #: Exchanges in which the receiver got at least one copy.
    received: int = 0
    #: Sum of (first_received_attempt - 1) over received exchanges.
    retransmissions_observed: int = 0
    #: Per-exchange first-received attempt numbers (1-based), None for failures.
    attempt_samples: List[Optional[int]] = field(default_factory=list)

    @property
    def hop_delivery_ratio(self) -> Optional[float]:
        """Fraction of exchanges that delivered (after all retries)."""
        if self.exchanges == 0:
            return None
        return self.received / self.exchanges

    @property
    def mean_retransmissions(self) -> Optional[float]:
        if self.received == 0:
            return None
        return self.retransmissions_observed / self.received


class GroundTruth:
    """Accumulates simulator-side truth over one run."""

    def __init__(self, channel: Channel):
        self.channel = channel
        self.link_usage: Dict[Tuple[int, int], LinkUsage] = defaultdict(LinkUsage)
        self.packets_generated = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.drop_reasons: Dict[str, int] = defaultdict(int)
        self._t_start: Optional[float] = None
        self._t_end: Optional[float] = None

    # -- recording ---------------------------------------------------------------

    def record_generated(self, packet: Packet) -> None:
        self.packets_generated += 1
        if self._t_start is None or packet.created_at < self._t_start:
            self._t_start = packet.created_at

    def record_hop(self, sender: int, receiver: int, result: MacResult) -> None:
        usage = self.link_usage[(sender, receiver)]
        usage.exchanges += 1
        usage.frames_sent += result.attempts
        usage.attempt_samples.append(result.first_received_attempt)
        if result.received:
            usage.received += 1
            usage.retransmissions_observed += result.first_received_attempt - 1
        self._t_end = max(self._t_end or 0.0, result.end_time)

    def record_delivered(self, packet: Packet) -> None:
        self.packets_delivered += 1

    def record_dropped(self, packet: Packet) -> None:
        self.packets_dropped += 1
        self.drop_reasons[packet.drop_reason or "unknown"] += 1

    # -- references for scoring ------------------------------------------------------

    def used_links(self) -> List[Tuple[int, int]]:
        """Directed links that carried at least one data exchange."""
        return sorted(k for k, u in self.link_usage.items() if u.exchanges > 0)

    def true_loss(self, link: Tuple[int, int], *, kind: str = "empirical") -> Optional[float]:
        """Ground-truth loss ratio for a directed link.

        ``kind='empirical'`` — realized frame-loss fraction (None if the link
        never carried a frame). ``kind='model'`` — the configured model loss
        averaged over the observation window.
        """
        u, v = link
        if kind == "empirical":
            return self.channel.empirical_loss(u, v)
        if kind == "model":
            t0 = self._t_start if self._t_start is not None else 0.0
            t1 = self._t_end if self._t_end is not None else t0
            return self.channel.mean_loss(u, v, t0, t1)
        raise ValueError(f"unknown ground-truth kind {kind!r}")

    def true_loss_map(self, *, kind: str = "empirical") -> Dict[Tuple[int, int], float]:
        """Ground-truth losses for every link that carried traffic."""
        out: Dict[Tuple[int, int], float] = {}
        for link in self.used_links():
            value = self.true_loss(link, kind=kind)
            if value is not None:
                out[link] = value
        return out

    # -- summary -----------------------------------------------------------------------

    @property
    def delivery_ratio(self) -> Optional[float]:
        if self.packets_generated == 0:
            return None
        return self.packets_delivered / self.packets_generated

    @property
    def observation_window(self) -> Tuple[float, float]:
        return (self._t_start or 0.0, self._t_end or 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GroundTruth(generated={self.packets_generated},"
            f" delivered={self.packets_delivered}, links={len(self.link_usage)})"
        )
