"""Node failure/recovery schedules (extension).

Dynamic WSNs are dynamic for more reasons than ETX noise: nodes crash,
brown out, and rejoin. A :class:`FailurePlan` is a validated list of
timed fail/recover events the simulation replays; while a node is down
it generates no traffic, receives no frames (its radio is off), and is
excluded from parent selection, so routes around it re-form — a burst of
genuine topology churn that invalidates classical tomography's snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.net.topology import Topology
from repro.utils.validation import check_positive

__all__ = ["FailureEvent", "FailurePlan", "random_failure_plan"]


@dataclass(frozen=True)
class FailureEvent:
    """One state change: ``kind`` is ``"fail"`` or ``"recover"``."""

    time: float
    node: int
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("fail", "recover"):
            raise ValueError("kind must be 'fail' or 'recover'")
        if self.time < 0:
            raise ValueError("time must be >= 0")


class FailurePlan:
    """Time-ordered, consistency-checked failure schedule."""

    def __init__(self, events: Iterable[FailureEvent], *, sink: int):
        ordered = sorted(events, key=lambda e: (e.time, e.node))
        down: Set[int] = set()
        for event in ordered:
            if event.node == sink:
                raise ValueError("the sink cannot fail (it hosts the decoder)")
            if event.kind == "fail":
                if event.node in down:
                    raise ValueError(
                        f"node {event.node} fails twice without recovering"
                    )
                down.add(event.node)
            else:
                if event.node not in down:
                    raise ValueError(
                        f"node {event.node} recovers while already up"
                    )
                down.discard(event.node)
        self.events: List[FailureEvent] = ordered

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def nodes_involved(self) -> Set[int]:
        return {e.node for e in self.events}

    def downtime_intervals(self, node: int, horizon: float) -> List[Tuple[float, float]]:
        """[start, end) intervals during which ``node`` is down."""
        intervals: List[Tuple[float, float]] = []
        start = None
        for event in self.events:
            if event.node != node:
                continue
            if event.kind == "fail":
                start = event.time
            elif start is not None:
                intervals.append((start, event.time))
                start = None
        if start is not None:
            intervals.append((start, horizon))
        return intervals


def random_failure_plan(
    topology: Topology,
    rng: np.random.Generator,
    *,
    num_failures: int,
    duration: float,
    mean_downtime: float,
    settle_time: float = 20.0,
) -> FailurePlan:
    """Draw ``num_failures`` independent fail→recover episodes.

    Failure times are uniform in [settle_time, duration]; downtimes are
    exponential with the given mean (clipped to end within 2x duration).
    A node may fail repeatedly, but episodes never overlap per node.
    """
    check_positive(duration, "duration")
    check_positive(mean_downtime, "mean_downtime")
    if num_failures < 0:
        raise ValueError("num_failures must be >= 0")
    candidates = [n for n in topology.nodes if n != topology.sink]
    if not candidates:
        raise ValueError("no failable nodes")
    events: List[FailureEvent] = []
    busy_until = {n: 0.0 for n in candidates}
    attempts = 0
    made = 0
    while made < num_failures and attempts < num_failures * 20:
        attempts += 1
        node = int(rng.choice(candidates))
        start = float(rng.uniform(settle_time, duration))
        if start < busy_until[node]:
            continue
        downtime = float(rng.exponential(mean_downtime))
        end = min(start + max(downtime, 1.0), 2.0 * duration)
        events.append(FailureEvent(start, node, "fail"))
        events.append(FailureEvent(end, node, "recover"))
        busy_until[node] = end
        made += 1
    return FailurePlan(events, sink=topology.sink)
