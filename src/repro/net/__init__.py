"""Discrete-event wireless-sensor-network simulator.

This substrate replaces the paper's TinyOS/TOSSIM testbed. It models a
data-collection WSN at the protocol level: lossy directional links (iid,
bursty, or drifting), a stop-and-wait ARQ MAC with bounded retries,
CTP-style dynamic parent selection driven by ETX estimates, periodic
traffic, and full ground-truth tracing so estimators can be scored
against the links' true loss ratios.
"""

from repro.net.events import CalendarQueue, EventQueue
from repro.net.failures import FailureEvent, FailurePlan, random_failure_plan
from repro.net.fastsim import FastArqMac, VectorizedEtxSampler, array_simulator
from repro.net.faults import FaultPlan, SinkOutage
from repro.net.interference import Interferer, InterfererField, interference_assigner
from repro.net.link import (
    BernoulliLink,
    Channel,
    DriftingLink,
    GilbertElliottLink,
    LinkModel,
    beta_loss_assigner,
    drifting_loss_assigner,
    gilbert_elliott_assigner,
    uniform_loss_assigner,
)
from repro.net.mac import ArqMac, MacConfig, MacResult
from repro.net.packet import HopRecord, Packet
from repro.net.routing import ParentChange, RoutingConfig, RoutingEngine
from repro.net.simulation import (
    CollectionObserver,
    CollectionSimulation,
    NullObserver,
    SimulationConfig,
    SimulationResult,
)
from repro.net.sim import Simulator
from repro.net.topology import (
    Topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
    topology_from_edges,
)
from repro.net.trace import GroundTruth, LinkUsage
from repro.net.tracefile import (
    TraceHeader,
    TracePacket,
    load_trace,
    replay_into_estimator,
    save_trace,
    truth_from_header,
)

__all__ = [
    "EventQueue",
    "CalendarQueue",
    "FastArqMac",
    "VectorizedEtxSampler",
    "array_simulator",
    "FailureEvent",
    "FailurePlan",
    "random_failure_plan",
    "FaultPlan",
    "SinkOutage",
    "Interferer",
    "InterfererField",
    "interference_assigner",
    "Simulator",
    "Packet",
    "HopRecord",
    "Topology",
    "random_geometric_topology",
    "grid_topology",
    "line_topology",
    "topology_from_edges",
    "LinkModel",
    "BernoulliLink",
    "GilbertElliottLink",
    "DriftingLink",
    "Channel",
    "uniform_loss_assigner",
    "beta_loss_assigner",
    "gilbert_elliott_assigner",
    "drifting_loss_assigner",
    "ArqMac",
    "MacConfig",
    "MacResult",
    "RoutingEngine",
    "RoutingConfig",
    "ParentChange",
    "GroundTruth",
    "LinkUsage",
    "TraceHeader",
    "TracePacket",
    "save_trace",
    "load_trace",
    "replay_into_estimator",
    "truth_from_header",
    "CollectionSimulation",
    "CollectionObserver",
    "NullObserver",
    "SimulationConfig",
    "SimulationResult",
]
