"""Array-native simulation kernel (``engine="array"``).

The reference engine in :mod:`repro.net.sim` / :mod:`repro.net.simulation`
is an object-per-event design: every frame draw is one scalar RNG call
through two virtual dispatches, every beacon round draws one lognormal
noise sample per directed edge, and every event competes in one global
binary heap. Profiling a 100-node dynamic RGG puts ~54% of the run in
the per-edge beacon sampling loop, ~25–30% in event-queue machinery and
~10% in MAC frame draws — all of it interpreter overhead around work
that is trivially batchable.

This module replaces those three hot paths with struct-of-arrays
equivalents while leaving every piece of *protocol logic* — forwarding,
queueing, routing trees, failures, observers — in the shared
:class:`~repro.net.simulation.CollectionSimulation` code:

* :class:`FastArqMac` — a drop-in :class:`~repro.net.mac.ArqMac`
  replacement that pre-draws each directed link's uniform stream in
  vectorized numpy blocks and resolves whole ARQ exchanges against the
  buffered values;
* :class:`VectorizedEtxSampler` — computes a beacon round's noisy ETX
  samples for *all* directed edges at once (block lognormal draws,
  array loss/ETX arithmetic) and is installed via
  :meth:`~repro.net.routing.RoutingEngine.set_etx_sampler`;
* :func:`array_simulator` — a :class:`~repro.net.sim.Simulator` backed
  by the bucketed :class:`~repro.net.events.CalendarQueue` wheel instead
  of the global heap.

**Differential-oracle contract.** The event engine stays authoritative:
for identical seeds the array kernel must reproduce its observable
stream — packets created, hops delivered, drops, routing churn, RNG
stream positions — *bit-identically*, the same discipline
``estimate_scipy`` applies to the batched MLE solver. Every batching
trick below is therefore paired with the argument for exactness:

* ``Generator.random(n)`` / ``Generator.normal(0, s, n)`` produce the
  same values *and* the same post-call stream state as ``n`` scalar
  calls (PCG64 draws are counter-sequential), so block pre-draws replay
  the oracle's per-edge stream prefix bit-for-bit; surplus buffered
  values are never observable because each directed edge's stream has
  exactly one consumer.
* End-of-exchange times replay the oracle's *sequential* float
  accumulation (``time += fl(tx + retry)`` per failed attempt) rather
  than a closed-form multiply, which would round differently.
* Vectorized ETX arithmetic uses only single IEEE-754 operations
  (subtract, multiply, maximum, divide) that are bitwise identical to
  their scalar Python counterparts; the lognormal noise factor is one
  block ``Generator.lognormal`` draw, which computes ``exp(normal)``
  per element with the same C ``exp`` (and the same stream state) as
  the scalar per-edge ``lognormal`` calls of the reference loop. (A
  plain ``np.exp`` over a block of normals would NOT qualify — it is a
  different vectorized implementation that differs in the last ulp for
  some inputs, which is why the noise is drawn as lognormal on both
  engines rather than exponentiated after the fact.)
* Stateful Gilbert–Elliott chains declare ``chain_replayable`` and are
  replayed against *two* buffered uniforms per attempt through
  :meth:`~repro.net.link.GilbertElliottLink.chain_step`, which consumes
  the pair in exactly the order ``sample`` draws them (transition
  first, then loss in the post-transition state) and mutates the same
  chain state object — so the per-edge stream position *and* the chain
  state match the oracle after every exchange. The fast path is gated
  by ``ge_chain_replay`` so the exact-scalar fallback stays reachable
  as a differential control.
* Models that are neither threshold-shaped nor chain-replayable, and
  every edge when ``ack_losses=True`` makes ACK frames traverse the
  lossy reverse link, fall back to the exact scalar path per edge; the
  per-edge stream granularity makes mixing safe.

The contract is pinned by ``tests/net/test_fastsim_differential.py``
(field-by-field result equality over a scenario matrix) and by the
golden fixtures in ``tests/regression/``, which must pass unregenerated
on both engines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.events import CalendarQueue
from repro.net.link import Channel, LinkModel
from repro.net.mac import ArqMac, MacConfig, MacResult
from repro.net.routing import RoutingEngine
from repro.net.sim import Simulator

__all__ = ["FastArqMac", "VectorizedEtxSampler", "array_simulator"]

#: Uniform draws buffered per directed edge and refill. ARQ exchanges
#: consume ~1/(1-loss) draws each, so one refill covers tens of
#: exchanges. Kept small because the draw+convert cost of a refill is
#: paid for the whole block while a typical edge consumes only part of
#: its last block: at 5k nodes the active tree has ~N hot edges and
#: large blocks turn mostly into discarded tails.
_BLOCK = 32


def array_simulator(*, bucket_width: float = 0.01) -> Simulator:
    """A simulator clocked by the calendar-queue wheel.

    The default bucket width (10 ms) sits between the MAC timescale
    (5–15 ms per attempt) and the beacon/traffic timescales (seconds),
    so a bucket holds a handful of events: pushes are O(1) appends and
    pops compare tuples within one bucket instead of the whole queue.
    """
    return Simulator(queue=CalendarQueue(bucket_width=bucket_width))


class _EdgePlan:
    """Buffered fast-path state for one bufferable directed edge.

    ``chain=True`` marks a chain-replay plan: each attempt consumes two
    buffered uniforms through ``model.chain_step`` instead of comparing
    one uniform against a loss threshold.

    ``rng`` starts as None and is derived from the channel's registry on
    the edge's first exchange: stream derivation is keyed, not
    positional, so lazy derivation yields the exact generator eager
    derivation would — and at scale the vast majority of directed edges
    never carry a frame (only tree edges do), which makes eager per-edge
    derivation the dominant construction cost.
    """

    __slots__ = ("rng", "model", "const_threshold", "vals", "pos", "chain")

    def __init__(
        self,
        model: LinkModel,
        const_threshold: Optional[float],
        *,
        chain: bool = False,
    ):
        self.rng: Optional[np.random.Generator] = None
        self.model = model
        self.const_threshold = const_threshold
        self.vals: List[float] = []
        self.pos = 0
        self.chain = chain


class FastArqMac:
    """ARQ exchanges resolved against buffered per-edge uniform blocks.

    Drop-in for :class:`~repro.net.mac.ArqMac`: same constructor shape,
    same :meth:`send` signature, bit-identical :class:`MacResult` and
    channel counters for identical seeds.

    An edge is *bufferable* when its link model declares the
    one-uniform-per-attempt shape by overriding
    :meth:`LinkModel.uniform_threshold` (Bernoulli, drifting and
    interfered links). Its exchanges then replay buffered draws against
    the model's loss threshold without touching ``Channel.transmit``;
    the realized draw/success counts are folded back in one
    :meth:`Channel.record_batch` call per exchange. Models that instead
    declare :attr:`LinkModel.chain_replayable` (Gilbert–Elliott) are
    replayed two buffered uniforms per attempt through the model's
    ``chain_step``, mutating the live chain state in oracle order; the
    ``ge_chain_replay`` flag forces those edges back onto the exact
    scalar path for differential control runs. Everything else — and
    every edge when ACK frames traverse the lossy reverse link — runs
    the exact scalar oracle.
    """

    def __init__(
        self,
        channel: Channel,
        config: Optional[MacConfig] = None,
        *,
        ge_chain_replay: bool = True,
    ):
        self.channel = channel
        self.config = config or MacConfig()
        self._exact = ArqMac(channel, self.config)
        # Replayed exactly as the oracle accumulates time: one rounded
        # fl(tx + retry) add per failed attempt, one fl(tx) add on success.
        self._tx = self.config.tx_time
        self._step = self.config.tx_time + self.config.retry_interval
        self._max_attempts = self.config.max_attempts
        # Classification is lazy, per edge on its first exchange: at
        # scale only the collection tree's ~N directed edges ever carry
        # a frame, so eagerly classifying (and allocating plan state
        # for) every edge of a dense deployment would dominate
        # construction. A None entry records "classified: exact path".
        # Plan *kind* is a per-class question, so it is memoized by
        # model type and each lazy classification costs one dict probe.
        self._plans: Dict[Tuple[int, int], Optional[_EdgePlan]] = {}
        self._buffered = not self.config.ack_losses
        self._ge_chain_replay = ge_chain_replay
        self._kind_by_type: Dict[type, int] = {}

    _EXACT, _THRESHOLD, _CHAIN = 0, 1, 2

    def _model_kind(self, model: LinkModel) -> int:
        cls = type(model)
        kind = self._kind_by_type.get(cls)
        if kind is None:
            # Override check instead of a probe call: classification
            # must not advance lazy model state (interferer chains).
            if cls.uniform_threshold is not LinkModel.uniform_threshold:
                kind = self._THRESHOLD
            elif model.chain_replayable:
                kind = self._CHAIN
            else:
                kind = self._EXACT
            self._kind_by_type[cls] = kind
        return kind

    def _classify(self, sender: int, receiver: int) -> Optional[_EdgePlan]:
        plan: Optional[_EdgePlan] = None
        if self._buffered:
            model = self.channel.model(sender, receiver)
            kind = self._model_kind(model)
            if kind == self._THRESHOLD:
                const = (
                    model.uniform_threshold(0.0)
                    if model.time_invariant_loss
                    else None
                )
                plan = _EdgePlan(model, const)
            elif kind == self._CHAIN and self._ge_chain_replay:
                plan = _EdgePlan(model, None, chain=True)
        self._plans[(sender, receiver)] = plan
        return plan

    @property
    def bufferable_edges(self) -> int:
        """Directed edges eligible for the buffered fast path (diagnostics).

        Counted by classifying every edge without materializing plan
        state, so the answer is independent of which edges have carried
        traffic so far.
        """
        if not self._buffered:
            return 0
        count = 0
        for model in self.channel._models.values():
            kind = self._model_kind(model)
            if kind == self._THRESHOLD or (
                kind == self._CHAIN and self._ge_chain_replay
            ):
                count += 1
        return count

    def send(self, sender: int, receiver: int, start_time: float) -> MacResult:
        """Run one full ARQ exchange; bit-identical to the oracle's."""
        try:
            plan = self._plans[(sender, receiver)]
        except KeyError:
            plan = self._classify(sender, receiver)
        if plan is None:
            return self._exact.send(sender, receiver, start_time)
        rng = plan.rng
        if rng is None:
            rng = plan.rng = self.channel.link_rng(sender, receiver)
        vals = plan.vals
        pos = plan.pos
        model = plan.model
        const = plan.const_threshold
        step = self._step
        max_attempts = self._max_attempts
        time = start_time
        attempts = 0
        first: Optional[int] = None
        if plan.chain:
            # Chain replay: two buffered uniforms per attempt, consumed in
            # the oracle's order (transition draw, then loss draw in the
            # post-transition state); the refill check runs before *each*
            # value because a pair may straddle a block boundary.
            while attempts < max_attempts:
                attempts += 1
                if pos >= len(vals):
                    vals = rng.random(_BLOCK).tolist()
                    plan.vals = vals
                    pos = 0
                u_transition = vals[pos]
                pos += 1
                if pos >= len(vals):
                    vals = rng.random(_BLOCK).tolist()
                    plan.vals = vals
                    pos = 0
                u_loss = vals[pos]
                pos += 1
                if model.chain_step(u_transition, u_loss):
                    first = attempts
                    time += self._tx
                    break
                time += step
            plan.pos = pos
            self.channel.record_batch(
                sender, receiver, attempts, 1 if first is not None else 0
            )
            return MacResult(
                attempts=attempts,
                first_received_attempt=first,
                acked=first is not None,
                end_time=time,
            )
        while attempts < max_attempts:
            attempts += 1
            if pos >= len(vals):
                vals = rng.random(_BLOCK).tolist()
                plan.vals = vals
                pos = 0
            draw = vals[pos]
            pos += 1
            if const is not None:
                threshold = const
            else:
                dynamic = model.uniform_threshold(time)
                # Classification already checked the override; a None here
                # would mean the model broke the all-or-nothing contract.
                assert dynamic is not None
                threshold = dynamic
            if draw >= threshold:
                # Perfect-ACK fast path: first reception ends the exchange.
                first = attempts
                time += self._tx
                break
            time += step
        plan.pos = pos
        self.channel.record_batch(
            sender, receiver, attempts, 1 if first is not None else 0
        )
        return MacResult(
            attempts=attempts,
            first_received_attempt=first,
            acked=first is not None,
            end_time=time,
        )


class VectorizedEtxSampler:
    """One beacon round's noisy ETX samples for all edges, batched.

    Installed on a :class:`RoutingEngine` via ``set_etx_sampler``; calls
    are bit-identical to the engine's scalar loop:

    * loss probabilities of time-invariant models are cached once in a
      struct-of-arrays layout; time-varying models are queried scalar
      (``math.sin`` and the interferer field keep their exact bits);
    * reverse-link losses are gathered with a precomputed index map
      instead of a second round of model calls;
    * ETX arithmetic (``1 / max(1e-6, (1-l_fwd)(1-l_rev))``) runs as
      whole-array IEEE-754 ops, bitwise equal to the scalar versions;
    * noise comes from one block ``lognormal`` draw on the same
      ``("routing", "beacons")`` stream: NumPy's block lognormal draws
      the same normals and exponentiates with the same C ``exp`` as n
      scalar ``lognormal`` calls, so values and post-state match the
      scalar loop's per-edge draws bit for bit (pinned by the
      differential suite).
    """

    def __init__(self, routing: RoutingEngine):
        channel = routing.channel
        edges = list(routing._edges)
        index = {edge: i for i, edge in enumerate(edges)}
        self._rev = np.asarray(
            [index[(v, u)] for (u, v) in edges], dtype=np.intp
        )
        model_map = channel._models
        models = [model_map[edge] for edge in edges]
        self._static_loss = np.zeros(len(edges), dtype=np.float64)
        self._dynamic: List[Tuple[int, LinkModel]] = []
        for i, model in enumerate(models):
            if model.time_invariant_loss:
                self._static_loss[i] = model.true_loss(0.0)
            else:
                self._dynamic.append((i, model))
        self._rng = routing._rng
        self._sigma = routing.config.etx_noise_std

    def __call__(self, time: float) -> "np.ndarray":
        if self._dynamic:
            loss = self._static_loss.copy()
            for i, model in self._dynamic:
                loss[i] = model.true_loss(time)
        else:
            loss = self._static_loss
        success = (1.0 - loss) * (1.0 - loss[self._rev])
        samples = 1.0 / np.maximum(1e-6, success)
        if self._sigma > 0.0:
            noise = self._rng.lognormal(0.0, self._sigma, len(samples))
            samples = samples * noise
        return samples
