"""Event queues for the discrete-event simulator.

Two implementations share one contract:

* :class:`EventQueue` — a single binary heap of handle objects (the
  original engine's queue, kept as the reference implementation);
* :class:`CalendarQueue` — a bucketed event wheel: pending events are
  partitioned into fixed-width time buckets, future buckets are plain
  append-only lists, and only the bucket currently being drained is kept
  heap-ordered. Pushing into the future is O(1) and the per-event heap
  comparisons shrink from the whole queue to one bucket, which is what
  makes the array simulation kernel's event loop cheap.

**Ordering contract (pinned by tests/net/test_calendar_queue.py):**
events pop in ``(time, seq)`` order, where ``seq`` is a strictly
increasing insertion counter. In particular, events scheduled at *equal*
float timestamps fire in schedule order — never in heap-internal or
bucket-internal order. This matters because simulation times are floats:
``a.after(d1)`` and ``b.after(d2)`` can land on the bit-identical
timestamp (e.g. a MAC exchange end and the forwarding of the packet it
released when ``forward_delay == 0``), and the simulator's determinism
guarantee requires that such ties resolve identically on every engine,
platform and run. Cancellation is lazy in both queues: cancelled
entries stay in place and are skipped when they surface.

Both queues also expose ``peek_time`` — the earliest *live* event's
timestamp, skipping cancelled entries. The simulator surfaces it as
:meth:`repro.net.sim.Simulator.peek_event_time`, where it serves as the
batched forwarder's inlining horizon: a multi-hop journey may only be
resolved inline strictly before the next pending event. Skipping
cancelled entries keeps that horizon tight; reporting one would merely
over-defer (still exact, just slower), so laziness is safe here —
``peek_time`` must only never report a time *later* than the next live
event.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["EventQueue", "CalendarQueue", "ScheduledEvent"]


class ScheduledEvent:
    """Handle returned by ``push``; supports cancellation.

    ``args`` are passed to ``callback`` when the event fires; scheduling
    ``(fn, args)`` instead of a closure keeps the hot path of the array
    kernel free of per-event lambda allocations.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        queue: "_QueueBase",
        args: Tuple[Any, ...] = (),
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when it surfaces."""
        if not self.cancelled:
            self.cancelled = True
            self._queue._live -= 1

    def fire(self) -> Any:
        """Invoke the callback with its scheduled arguments."""
        return self.callback(*self.args)

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time}, seq={self.seq}, {state})"


class _QueueBase:
    """Shared queue surface: live-event accounting and push validation."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._live = 0

    def _make_event(
        self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]
    ) -> ScheduledEvent:
        if not callable(callback):
            raise TypeError("callback must be callable")
        event = ScheduledEvent(float(time), next(self._counter), callback, self, args)
        self._live += 1
        return event

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class EventQueue(_QueueBase):
    """Min-heap of :class:`ScheduledEvent` ordered by (time, insertion)."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[ScheduledEvent] = []

    def push(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time``; returns a cancellable handle."""
        event = self._make_event(time, callback, args)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


#: One wheel entry. The (time, seq) prefix carries the full ordering, so
#: tuple comparison never reaches the handle object.
_Entry = Tuple[float, int, ScheduledEvent]


class CalendarQueue(_QueueBase):
    """Bucketed event wheel with the same ordering contract as :class:`EventQueue`.

    Pending events live in fixed-width time buckets (``bucket_width``
    seconds each). The earliest bucket is drained as a small heap of
    ``(time, seq, event)`` tuples; later buckets are unsorted lists that
    are heapified only when the wheel reaches them. A side heap of
    bucket indices finds the next non-empty bucket in O(log buckets).

    Pushes may arrive in any time order (the wheel is a general priority
    queue, not just a forward-only scheduler): an entry at or before the
    bucket currently being drained joins that bucket's heap, which keeps
    the global ``(time, seq)`` pop order exact. Bucket assignment uses
    float floor division; because IEEE division is monotone, an entry can
    never land in a *later* bucket than an entry with a greater
    timestamp, so boundary rounding cannot reorder events.
    """

    def __init__(self, bucket_width: float = 0.01) -> None:
        super().__init__()
        if not bucket_width > 0.0 or not math.isfinite(bucket_width):
            raise ValueError("bucket_width must be a positive finite float")
        self._width = float(bucket_width)
        self._current: List[_Entry] = []  # heap of the bucket being drained
        self._current_idx: Optional[int] = None
        self._future: Dict[int, List[_Entry]] = {}  # idx -> unsorted entries
        self._bucket_heap: List[int] = []  # indices of buckets in _future

    def _bucket_of(self, time: float) -> int:
        return int(time // self._width)

    def push(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at ``time``; returns a cancellable handle."""
        event = self._make_event(time, callback, args)
        entry: _Entry = (event.time, event.seq, event)
        idx = self._bucket_of(event.time)
        if self._current_idx is None or idx <= self._current_idx:
            # First event ever, or an event at/before the wheel position:
            # it belongs to the bucket being drained right now.
            if self._current_idx is None:
                self._current_idx = idx
            heapq.heappush(self._current, entry)
        else:
            bucket = self._future.get(idx)
            if bucket is None:
                self._future[idx] = [entry]
                heapq.heappush(self._bucket_heap, idx)
            else:
                bucket.append(entry)
        return event

    def _advance(self) -> None:
        """Promote the next non-empty future bucket into the current heap."""
        while not self._current and self._bucket_heap:
            idx = heapq.heappop(self._bucket_heap)
            bucket = self._future.pop(idx, None)
            if bucket:
                heapq.heapify(bucket)
                self._current = bucket
                self._current_idx = idx

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest live event, or None if empty."""
        while True:
            if not self._current:
                self._advance()
                if not self._current:
                    return None
            _, _, event = heapq.heappop(self._current)
            if event.cancelled:
                continue
            self._live -= 1
            return event

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event without removing it."""
        while True:
            if not self._current:
                self._advance()
                if not self._current:
                    return None
            if self._current[0][2].cancelled:
                heapq.heappop(self._current)
                continue
            return self._current[0][0]
