"""Priority event queue for the discrete-event simulator.

Events with equal timestamps fire in insertion order (a strictly
increasing sequence number breaks ties), which keeps runs deterministic
regardless of heap internals. Cancellation is lazy: cancelled entries
stay in the heap and are skipped when they surface.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

__all__ = ["EventQueue", "ScheduledEvent"]


class ScheduledEvent:
    """Handle returned by :meth:`EventQueue.push`; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any], queue: "EventQueue"):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when it reaches the heap top."""
        if not self.cancelled:
            self.cancelled = True
            self._queue._live -= 1

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent(t={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of :class:`ScheduledEvent` ordered by (time, insertion)."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        if not callable(callback):
            raise TypeError("callback must be callable")
        event = ScheduledEvent(float(time), next(self._counter), callback, self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[ScheduledEvent]:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
