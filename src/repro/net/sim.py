"""Discrete-event simulation core.

:class:`Simulator` owns the clock and the event queue. Components
schedule callbacks with :meth:`Simulator.at` / :meth:`Simulator.after`,
and the driver advances the simulation with :meth:`run_until` /
:meth:`run`. Time is in seconds (float); the clock never moves backwards.

The queue is pluggable: the default is the reference
:class:`~repro.net.events.EventQueue` heap; the array engine passes a
:class:`~repro.net.events.CalendarQueue` wheel. Both obey the same
``(time, insertion)`` ordering contract, so the choice never changes
which event fires next — only how much the queue costs.

Two small facilities exist for the array engine's batched forwarding
path (``SimulationConfig.batch_forwarding``):

* **The next-event horizon** (:meth:`peek_event_time`): the earliest
  still-pending event's timestamp. A packet's multi-hop journey may be
  resolved inline only up to (strictly before) this horizon: no protocol
  state whatsoever — routing, liveness, radio occupancy, queues, shared
  channel state — can change before the next event fires, so every
  inline leg reads exactly the state the oracle would have read at its
  virtual time. Any pending event is a horizon, not just control-plane
  ones: an innocuous-looking traffic creation can cascade into a radio
  occupancy on the journey's path before the journey's own arrival.
* **Virtual event credits** (:meth:`credit_events`): when the batched
  forwarder elides an oracle event (a MAC finish, an inlined forward) or
  introduces one the oracle lacks (a lazy queue-service event), it
  credits/debits the counter so :attr:`events_processed` stays equal to
  the event oracle's count — the differential suite compares it exactly.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from repro.net.events import CalendarQueue, EventQueue, ScheduledEvent
from repro.sanitize import hooks as _sanitize_hooks

__all__ = ["Simulator"]

#: Queue implementations the simulator accepts.
QueueLike = Union[EventQueue, CalendarQueue]


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self, queue: Optional[QueueLike] = None) -> None:
        self._queue: QueueLike = queue if queue is not None else EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._event_credits = 0
        self._running = False
        # Cached at construction so the hot loop pays one None test per
        # pop only while a sanitizer is tracing this run.
        self._san = _sanitize_hooks.ACTIVE

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events processed, plus any virtual credits (see module docs)."""
        return self._events_processed + self._event_credits

    def credit_events(self, count: int) -> None:
        """Adjust the virtual event counter by ``count`` (may be negative).

        Used by the batched forwarding path to keep ``events_processed``
        bit-equal to the event oracle's count when oracle events are
        resolved inline (elided) or extra bookkeeping events are added.
        """
        self._event_credits += count

    def peek_event_time(self) -> Optional[float]:
        """Earliest still-pending event's timestamp, or None if drained.

        This is the batched forwarder's inlining horizon: state observed
        strictly before this time cannot change, because nothing fires
        before it (see the module docs).
        """
        return self._queue.peek_time()

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling -------------------------------------------------------------

    def at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: t={time} < now={self._now}"
            )
        return self._queue.push(time, callback, *args)

    def after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self._queue.push(self._now + delay, callback, *args)

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        *,
        start: Optional[float] = None,
        jitter: Callable[[], float] = lambda: 0.0,
    ) -> ScheduledEvent:
        """Schedule ``callback`` periodically (self-rescheduling chain).

        ``jitter()`` is sampled for each firing and added to the period;
        returning the chain's *first* handle — cancelling it before it fires
        stops the chain, cancelling later requires the callback itself to
        stop rescheduling (use a flag).
        """
        if period <= 0:
            raise ValueError("period must be > 0")

        def fire() -> None:
            callback()
            self.after(max(1e-9, period + jitter()), fire)

        first = self._now + (start if start is not None else period)
        return self.at(max(self._now, first), fire)

    # -- execution -------------------------------------------------------------

    def step(self) -> bool:
        """Process the single earliest event; return False if none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        if self._san is not None:
            self._san.record_pop(event.time, event.seq)
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run_until(self, end_time: float) -> None:
        """Process events with timestamp <= ``end_time``; clock ends at ``end_time``."""
        if end_time < self._now:
            raise ValueError("end_time is in the past")
        self._running = True
        try:
            while self._running:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = max(self._now, end_time)

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally at most ``max_events``); return count processed."""
        processed = 0
        self._running = True
        try:
            while self._running and (max_events is None or processed < max_events):
                if not self.step():
                    break
                processed += 1
        finally:
            self._running = False
        return processed

    def stop(self) -> None:
        """Request that the current run/run_until loop exit after this event."""
        self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"
