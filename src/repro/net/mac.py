"""Stop-and-wait ARQ MAC with bounded retransmissions.

Models the hop-by-hop reliability layer data-collection protocols rely
on (and that Dophy piggybacks on): the sender transmits a frame, waits
for an ACK, and retries up to ``max_retries`` extra times.

Two counts matter and differ when ACKs can be lost:

* the *sender's* transmission count (what the radio spends), and
* the attempt index of the *first frame the receiver got* — a clean
  geometric draw with success probability = the forward link's delivery
  ratio. Dophy annotations record this receiver-side count (each frame
  carries its attempt number in a constant-size MAC header field common
  to every scheme, so it cancels out of overhead comparisons).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import Channel
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["MacConfig", "MacResult", "ArqMac"]


@dataclass(frozen=True)
class MacConfig:
    """ARQ parameters (defaults follow TinyOS/CTP conventions)."""

    #: Extra transmissions after the first (CTP default is large; 30 here).
    max_retries: int = 30
    #: Whether ACK frames traverse the lossy reverse link (False = perfect ACKs).
    ack_losses: bool = False
    #: Airtime of one data frame + ACK exchange, seconds.
    tx_time: float = 0.005
    #: Gap between retransmission attempts, seconds.
    retry_interval: float = 0.01

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        check_positive(self.tx_time, "tx_time")
        check_non_negative(self.retry_interval, "retry_interval")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1


@dataclass(frozen=True)
class MacResult:
    """Outcome of one hop-level ARQ exchange."""

    #: Total frames the sender transmitted.
    attempts: int
    #: Attempt index (1-based) of the first frame the receiver got; None = none arrived.
    first_received_attempt: Optional[int]
    #: Whether the sender received an ACK (it believes the hop succeeded).
    acked: bool
    #: Simulation time when the exchange ended.
    end_time: float

    @property
    def received(self) -> bool:
        """Whether the receiver got at least one copy."""
        return self.first_received_attempt is not None

    @property
    def receiver_retransmissions(self) -> Optional[int]:
        """Retransmissions before first reception — the symbol Dophy encodes."""
        if self.first_received_attempt is None:
            return None
        return self.first_received_attempt - 1


class ArqMac:
    """Executes ARQ exchanges over a :class:`~repro.net.link.Channel`."""

    def __init__(self, channel: Channel, config: Optional[MacConfig] = None):
        self.channel = channel
        self.config = config or MacConfig()

    def send(self, sender: int, receiver: int, start_time: float) -> MacResult:
        """Run one full ARQ exchange starting at ``start_time``.

        Channel state (burst processes, drifting losses) advances with the
        per-attempt timestamps, so bursty links produce correlated
        retransmission runs as they do in reality.
        """
        cfg = self.config
        time = start_time
        first_received: Optional[int] = None
        attempts = 0
        acked = False
        while attempts < cfg.max_attempts:
            attempts += 1
            data_ok = self.channel.transmit(sender, receiver, time)
            if data_ok and first_received is None:
                first_received = attempts
            if data_ok:
                ack_ok = (
                    self.channel.transmit(receiver, sender, time)
                    if cfg.ack_losses
                    else True
                )
                if ack_ok:
                    acked = True
                    time += cfg.tx_time
                    break
            time += cfg.tx_time + cfg.retry_interval
        return MacResult(
            attempts=attempts,
            first_received_attempt=first_received,
            acked=acked,
            end_time=time,
        )
