"""Link loss models and the channel abstraction.

Each *directed* physical link carries a :class:`LinkModel` that decides,
per frame transmission, whether the frame is received. Three regimes
cover what testbeds exhibit:

* :class:`BernoulliLink` — iid loss (the model classical tomography assumes);
* :class:`GilbertElliottLink` — bursty loss via a two-state Markov chain;
* :class:`DriftingLink` — non-stationary loss whose mean drifts over time
  (what makes periodic probability-model updates worthwhile).

The :class:`Channel` owns one model and one RNG substream per directed
edge, so protocol variants compared under the same master seed see the
same channel randomness (common random numbers).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.net.topology import Topology
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_in_range, check_positive, check_probability

__all__ = [
    "LinkModel",
    "BernoulliLink",
    "GilbertElliottLink",
    "DriftingLink",
    "Channel",
    "uniform_loss_assigner",
    "beta_loss_assigner",
    "gilbert_elliott_assigner",
    "drifting_loss_assigner",
]


class LinkModel(ABC):
    """Per-directed-link frame loss process."""

    #: True when ``true_loss`` does not depend on ``time`` — lets the
    #: array engine's vectorized paths cache per-link loss arrays.
    time_invariant_loss: bool = False

    #: True when sampling this model reads state *shared across links*
    #: that advances lazily with the queried time (the interferer field).
    #: The batched forwarder must not query such models at virtual times
    #: ahead of the simulation clock: doing so would reorder the shared
    #: chain's advancement relative to other edges' queries and diverge
    #: from the event oracle. Per-edge state (Gilbert–Elliott) is safe —
    #: exchanges on one edge are serialized by the sender's radio.
    shared_state_loss: bool = False

    #: True when ``sample`` consumes exactly *two* uniforms per call —
    #: a state-transition draw then a loss draw — and the transition is
    #: replayable via :meth:`chain_step`. Lets the array kernel buffer
    #: the edge's uniform stream in blocks (Gilbert–Elliott).
    chain_replayable: bool = False

    @abstractmethod
    def sample(self, rng: np.random.Generator, time: float) -> bool:
        """Draw one frame transmission at ``time``; True = received."""

    def uniform_threshold(self, time: float) -> Optional[float]:
        """Loss threshold ``p`` such that ``sample`` is exactly
        ``rng.random() >= p`` at ``time``, or None when the model draws
        differently (extra draws, internal state).

        The array kernel buffers each link's uniform stream in blocks and
        replays exchanges against this threshold; returning a value here
        is a *bit-identity contract*: the model's ``sample`` must consume
        exactly one uniform per call and compare it against the returned
        threshold. Stateful models (Gilbert–Elliott) return None and keep
        the scalar draw path.
        """
        return None

    @abstractmethod
    def true_loss(self, time: float) -> float:
        """Instantaneous loss probability at ``time`` (ground truth)."""

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        """Average loss probability over [t0, t1] (numeric by default)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return self.true_loss(t0)
        ts = np.linspace(t0, t1, resolution)
        return float(np.mean([self.true_loss(float(t)) for t in ts]))


class BernoulliLink(LinkModel):
    """Independent identically-distributed loss with fixed probability."""

    time_invariant_loss = True

    def __init__(self, loss: float):
        self.loss = check_probability(loss, "loss")

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        return bool(rng.random() >= self.loss)

    def uniform_threshold(self, time: float) -> Optional[float]:
        return self.loss

    def true_loss(self, time: float) -> float:
        return self.loss

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        return self.loss

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BernoulliLink(loss={self.loss:.3f})"


class GilbertElliottLink(LinkModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The chain moves between a *good* and a *bad* state on every frame
    draw; each state has its own loss probability. ``true_loss`` reports
    the stationary loss (the quantity a long-run estimator should
    recover); burstiness is controlled by the transition probabilities
    (small ``p_good_to_bad``/``p_bad_to_good`` = long bursts).
    """

    # The chain state is hidden but the stationary loss is constant.
    time_invariant_loss = True
    # Exactly two uniforms per sample: transition draw, then loss draw.
    chain_replayable = True

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.02,
        loss_bad: float = 0.6,
        start_state: str = "good",
    ):
        self.p_gb = check_probability(p_good_to_bad, "p_good_to_bad")
        self.p_bg = check_probability(p_bad_to_good, "p_bad_to_good")
        if self.p_gb == 0.0 and self.p_bg == 0.0:
            raise ValueError("chain must be able to leave at least one state")
        self.loss_good = check_probability(loss_good, "loss_good")
        self.loss_bad = check_probability(loss_bad, "loss_bad")
        if start_state not in ("good", "bad"):
            raise ValueError("start_state must be 'good' or 'bad'")
        self._in_bad = start_state == "bad"

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time in the bad state."""
        return self.p_gb / (self.p_gb + self.p_bg)

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        # State transition first, then a draw in the new state. Kept in
        # lockstep with chain_step below: sample() == chain_step() fed
        # the same two uniforms, bit for bit.
        if self._in_bad:
            if rng.random() < self.p_bg:
                self._in_bad = False
        else:
            if rng.random() < self.p_gb:
                self._in_bad = True
        loss = self.loss_bad if self._in_bad else self.loss_good
        return bool(rng.random() >= loss)

    def chain_step(self, u_transition: float, u_loss: float) -> bool:
        """One frame draw replayed from two pre-drawn uniforms.

        Mirrors :meth:`sample` exactly — same transition comparison,
        same state mutation, same loss comparison — so the array
        kernel's buffered blocks (which pre-draw the edge's uniform
        stream) reproduce the chain's trajectory bit-identically.
        """
        if self._in_bad:
            if u_transition < self.p_bg:
                self._in_bad = False
        else:
            if u_transition < self.p_gb:
                self._in_bad = True
        loss = self.loss_bad if self._in_bad else self.loss_good
        return u_loss >= loss

    def true_loss(self, time: float) -> float:
        pi_bad = self.stationary_bad_fraction
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        return self.true_loss(t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GilbertElliottLink(p_gb={self.p_gb:.3f}, p_bg={self.p_bg:.3f},"
            f" loss={self.true_loss(0):.3f})"
        )


class DriftingLink(LinkModel):
    """Non-stationary loss: sinusoidal drift around a base loss ratio.

    ``loss(t) = clip(base + amplitude * sin(2*pi*t/period + phase), eps, 1-eps)``

    Deterministic drift keeps the ground truth exact at every instant,
    which the estimator-accuracy scoring relies on.
    """

    _EPS = 1e-4

    def __init__(
        self,
        base_loss: float,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ):
        self.base_loss = check_probability(base_loss, "base_loss")
        self.amplitude = check_in_range(amplitude, "amplitude", 0.0, 0.5)
        self.period = check_positive(period, "period")
        self.phase = float(phase)

    def true_loss(self, time: float) -> float:
        raw = self.base_loss + self.amplitude * math.sin(
            2.0 * math.pi * time / self.period + self.phase
        )
        return min(1.0 - self._EPS, max(self._EPS, raw))

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        return bool(rng.random() >= self.true_loss(time))

    def uniform_threshold(self, time: float) -> Optional[float]:
        return self.true_loss(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DriftingLink(base={self.base_loss:.3f}, amp={self.amplitude:.3f},"
            f" period={self.period:g})"
        )


#: Signature of per-link model factories: (u, v, rng) -> LinkModel.
LinkAssigner = Callable[[int, int, np.random.Generator], LinkModel]

# Assigners are frozen-dataclass callables rather than closures so that
# scenarios embedding them can be pickled to process-pool workers
# (repro.exec) and hashed into stable cache keys.


@dataclass(frozen=True)
class _UniformLossAssigner:
    low: float
    high: float

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return BernoulliLink(float(rng.uniform(self.low, self.high)))


def uniform_loss_assigner(low: float, high: float) -> LinkAssigner:
    """Assign each directed link an iid Bernoulli loss drawn U[low, high]."""
    check_probability(low, "low")
    check_probability(high, "high")
    if high < low:
        raise ValueError("high must be >= low")
    return _UniformLossAssigner(low, high)


@dataclass(frozen=True)
class _GilbertElliottAssigner:
    p_good_to_bad: float
    p_bad_to_good: float
    loss_good_range: Tuple[float, float]
    loss_bad_range: Tuple[float, float]

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return GilbertElliottLink(
            self.p_good_to_bad,
            self.p_bad_to_good,
            loss_good=float(rng.uniform(*self.loss_good_range)),
            loss_bad=float(rng.uniform(*self.loss_bad_range)),
        )


def gilbert_elliott_assigner(
    *,
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.25,
    loss_good_range: Tuple[float, float] = (0.01, 0.1),
    loss_bad_range: Tuple[float, float] = (0.4, 0.8),
) -> LinkAssigner:
    """Assign every directed link a bursty Gilbert–Elliott process.

    Per-link good/bad loss levels are drawn uniformly from the given
    ranges so links are heterogeneous, as on a real testbed.
    """
    check_probability(p_good_to_bad, "p_good_to_bad")
    check_probability(p_bad_to_good, "p_bad_to_good")
    return _GilbertElliottAssigner(
        p_good_to_bad, p_bad_to_good, tuple(loss_good_range), tuple(loss_bad_range)
    )


@dataclass(frozen=True)
class _DriftingLossAssigner:
    base_range: Tuple[float, float]
    amplitude_range: Tuple[float, float]
    period_range: Tuple[float, float]

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return DriftingLink(
            base_loss=float(rng.uniform(*self.base_range)),
            amplitude=float(rng.uniform(*self.amplitude_range)),
            period=float(rng.uniform(*self.period_range)),
            phase=float(rng.uniform(0.0, 2.0 * math.pi)),
        )


def drifting_loss_assigner(
    *,
    base_range: Tuple[float, float] = (0.05, 0.3),
    amplitude_range: Tuple[float, float] = (0.05, 0.2),
    period_range: Tuple[float, float] = (100.0, 400.0),
) -> LinkAssigner:
    """Assign every directed link a sinusoidally drifting loss process.

    Random phases decorrelate the links, so the network-wide symbol
    distribution drifts — the regime Dophy's periodic model updates target.
    """
    return _DriftingLossAssigner(
        tuple(base_range), tuple(amplitude_range), tuple(period_range)
    )


@dataclass(frozen=True)
class _BetaLossAssigner:
    alpha: float
    beta: float
    scale: float

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return BernoulliLink(
            float(min(1.0, self.scale * rng.beta(self.alpha, self.beta)))
        )


def beta_loss_assigner(alpha: float, beta: float, scale: float = 1.0) -> LinkAssigner:
    """Assign Bernoulli losses drawn from ``scale * Beta(alpha, beta)``.

    Testbed link-loss distributions are heavy at the low end with a tail
    of bad links; Beta(1.2, 6) scaled to [0, 0.8] is a reasonable stand-in.
    """
    check_positive(alpha, "alpha")
    check_positive(beta, "beta")
    check_probability(scale, "scale")
    return _BetaLossAssigner(alpha, beta, scale)


class Channel:
    """All directed links of a deployment, with per-edge RNG substreams."""

    def __init__(
        self,
        topology: Topology,
        models: Dict[Tuple[int, int], LinkModel],
        rng_registry: RngRegistry,
    ):
        expected = set(topology.directed_edges())
        if set(models.keys()) != expected:
            missing = expected - set(models.keys())
            extra = set(models.keys()) - expected
            raise ValueError(
                f"model/edge mismatch: missing={sorted(missing)[:4]}, extra={sorted(extra)[:4]}"
            )
        self.topology = topology
        self._models = dict(models)
        self._rng = rng_registry
        self._draws: Dict[Tuple[int, int], int] = {e: 0 for e in expected}
        self._successes: Dict[Tuple[int, int], int] = {e: 0 for e in expected}

    @classmethod
    def build(
        cls,
        topology: Topology,
        assigner: LinkAssigner,
        rng_registry: RngRegistry,
        *,
        symmetric: bool = False,
    ) -> "Channel":
        """Create models for every directed edge using ``assigner``.

        ``symmetric=True`` gives both directions of a physical link the
        same model *instance* only when that is statistically safe
        (Bernoulli); stateful models always get distinct instances with
        identical parameters via a shared parameter draw.
        """
        models: Dict[Tuple[int, int], LinkModel] = {}
        assign_rng = rng_registry.get("channel", "assign")
        for u, v in topology.undirected_edges():
            forward = assigner(u, v, assign_rng)
            if symmetric and isinstance(forward, BernoulliLink):
                backward: LinkModel = BernoulliLink(forward.loss)
            else:
                backward = assigner(v, u, assign_rng)
            models[(u, v)] = forward
            models[(v, u)] = backward
        return cls(topology, models, rng_registry)

    def model(self, sender: int, receiver: int) -> LinkModel:
        return self._models[(sender, receiver)]

    def transmit(self, sender: int, receiver: int, time: float) -> bool:
        """Simulate one frame on (sender -> receiver); True = received."""
        key = (sender, receiver)
        model = self._models[key]
        self._draws[key] += 1
        ok = model.sample(self._rng.get("link", sender, receiver), time)
        if ok:
            self._successes[key] += 1
        return ok

    def link_rng(self, sender: int, receiver: int) -> np.random.Generator:
        """The per-edge RNG substream feeding this directed link's draws.

        Exposed for the array kernel, which pre-draws uniform blocks from
        the same stream :meth:`transmit` would consume scalar-by-scalar.
        Each directed edge has exactly one consumer, so buffered draws
        replay the oracle's stream prefix bit-for-bit.
        """
        return self._rng.get("link", sender, receiver)

    def record_batch(
        self, sender: int, receiver: int, draws: int, successes: int
    ) -> None:
        """Fold externally-simulated frame outcomes into the link counters.

        The array kernel resolves whole ARQ exchanges against buffered
        draws without going through :meth:`transmit`; this keeps
        :meth:`draws` / :meth:`empirical_loss` identical to the oracle's.
        """
        key = (sender, receiver)
        self._draws[key] += draws
        self._successes[key] += successes

    def true_loss(self, sender: int, receiver: int, time: float) -> float:
        return self._models[(sender, receiver)].true_loss(time)

    def mean_loss(self, sender: int, receiver: int, t0: float, t1: float) -> float:
        return self._models[(sender, receiver)].mean_loss(t0, t1)

    def draws(self, sender: int, receiver: int) -> int:
        """Number of frame draws simulated on a directed link (diagnostics)."""
        return self._draws[(sender, receiver)]

    def empirical_loss(self, sender: int, receiver: int) -> Optional[float]:
        """Realized frame-loss fraction on a directed link; None if unused.

        This is the fairest finite-sample ground truth: an ideal estimator
        that saw every frame outcome would report exactly this value.
        """
        draws = self._draws[(sender, receiver)]
        if draws == 0:
            return None
        return 1.0 - self._successes[(sender, receiver)] / draws

    def directed_edges(self) -> Iterable[Tuple[int, int]]:
        return self._models.keys()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel(edges={len(self._models)})"
