"""Link loss models and the channel abstraction.

Each *directed* physical link carries a :class:`LinkModel` that decides,
per frame transmission, whether the frame is received. Three regimes
cover what testbeds exhibit:

* :class:`BernoulliLink` — iid loss (the model classical tomography assumes);
* :class:`GilbertElliottLink` — bursty loss via a two-state Markov chain;
* :class:`DriftingLink` — non-stationary loss whose mean drifts over time
  (what makes periodic probability-model updates worthwhile).

The :class:`Channel` owns one model and one RNG substream per directed
edge, so protocol variants compared under the same master seed see the
same channel randomness (common random numbers).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.net.topology import Topology
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_in_range, check_positive, check_probability

__all__ = [
    "LinkModel",
    "BernoulliLink",
    "GilbertElliottLink",
    "DriftingLink",
    "Channel",
    "uniform_loss_assigner",
    "beta_loss_assigner",
    "gilbert_elliott_assigner",
    "drifting_loss_assigner",
]


class LinkModel(ABC):
    """Per-directed-link frame loss process."""

    #: True when ``true_loss`` does not depend on ``time`` — lets the
    #: array engine's vectorized paths cache per-link loss arrays.
    time_invariant_loss: bool = False

    #: True when sampling this model reads state *shared across links*
    #: that advances lazily with the queried time (the interferer field).
    #: The batched forwarder must not query such models at virtual times
    #: ahead of the simulation clock: doing so would reorder the shared
    #: chain's advancement relative to other edges' queries and diverge
    #: from the event oracle. Per-edge state (Gilbert–Elliott) is safe —
    #: exchanges on one edge are serialized by the sender's radio.
    shared_state_loss: bool = False

    #: True when ``sample`` consumes exactly *two* uniforms per call —
    #: a state-transition draw then a loss draw — and the transition is
    #: replayable via :meth:`chain_step`. Lets the array kernel buffer
    #: the edge's uniform stream in blocks (Gilbert–Elliott).
    chain_replayable: bool = False

    @abstractmethod
    def sample(self, rng: np.random.Generator, time: float) -> bool:
        """Draw one frame transmission at ``time``; True = received."""

    def uniform_threshold(self, time: float) -> Optional[float]:
        """Loss threshold ``p`` such that ``sample`` is exactly
        ``rng.random() >= p`` at ``time``, or None when the model draws
        differently (extra draws, internal state).

        The array kernel buffers each link's uniform stream in blocks and
        replays exchanges against this threshold; returning a value here
        is a *bit-identity contract*: the model's ``sample`` must consume
        exactly one uniform per call and compare it against the returned
        threshold. Stateful models (Gilbert–Elliott) return None and keep
        the scalar draw path.
        """
        return None

    @abstractmethod
    def true_loss(self, time: float) -> float:
        """Instantaneous loss probability at ``time`` (ground truth)."""

    def fresh_copy(self) -> "LinkModel":
        """An instance equivalent to this one at construction time.

        The scenario cache stores built channels as *prototypes* (never
        sampled) and hands each instantiation fresh copies so one run's
        state can never leak into the next. The default — ``self`` — is
        correct for immutable models (Bernoulli, Drifting); models with
        per-instance mutable state must override it (Gilbert–Elliott
        does). Models reading shared state are never cached at all
        (``shared_state_loss`` channels bypass the cache).
        """
        return self

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        """Average loss probability over [t0, t1] (numeric by default)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if t1 == t0:
            return self.true_loss(t0)
        ts = np.linspace(t0, t1, resolution)
        return float(np.mean([self.true_loss(float(t)) for t in ts]))


class BernoulliLink(LinkModel):
    """Independent identically-distributed loss with fixed probability."""

    time_invariant_loss = True

    def __init__(self, loss: float):
        self.loss = check_probability(loss, "loss")

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        return bool(rng.random() >= self.loss)

    def uniform_threshold(self, time: float) -> Optional[float]:
        return self.loss

    def true_loss(self, time: float) -> float:
        return self.loss

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        return self.loss

    @classmethod
    def _prevalidated(cls, loss: float) -> "BernoulliLink":
        """Construct without re-validating ``loss``.

        For the batched assigner paths only: the loss comes from
        ``low + (high - low) * u`` with validated ``low``/``high`` in
        [0, 1] and ``u`` in [0, 1), so it is a probability by
        construction and the per-instance range check is pure overhead
        at 2·|edges| instances.
        """
        model = cls.__new__(cls)
        model.loss = loss
        return model

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BernoulliLink(loss={self.loss:.3f})"


class GilbertElliottLink(LinkModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The chain moves between a *good* and a *bad* state on every frame
    draw; each state has its own loss probability. ``true_loss`` reports
    the stationary loss (the quantity a long-run estimator should
    recover); burstiness is controlled by the transition probabilities
    (small ``p_good_to_bad``/``p_bad_to_good`` = long bursts).
    """

    # The chain state is hidden but the stationary loss is constant.
    time_invariant_loss = True
    # Exactly two uniforms per sample: transition draw, then loss draw.
    chain_replayable = True

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.02,
        loss_bad: float = 0.6,
        start_state: str = "good",
    ):
        self.p_gb = check_probability(p_good_to_bad, "p_good_to_bad")
        self.p_bg = check_probability(p_bad_to_good, "p_bad_to_good")
        if self.p_gb == 0.0 and self.p_bg == 0.0:
            raise ValueError("chain must be able to leave at least one state")
        self.loss_good = check_probability(loss_good, "loss_good")
        self.loss_bad = check_probability(loss_bad, "loss_bad")
        if start_state not in ("good", "bad"):
            raise ValueError("start_state must be 'good' or 'bad'")
        self._in_bad = start_state == "bad"

    @property
    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time in the bad state."""
        return self.p_gb / (self.p_gb + self.p_bg)

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        # State transition first, then a draw in the new state. Kept in
        # lockstep with chain_step below: sample() == chain_step() fed
        # the same two uniforms, bit for bit.
        if self._in_bad:
            if rng.random() < self.p_bg:
                self._in_bad = False
        else:
            if rng.random() < self.p_gb:
                self._in_bad = True
        loss = self.loss_bad if self._in_bad else self.loss_good
        return bool(rng.random() >= loss)

    def chain_step(self, u_transition: float, u_loss: float) -> bool:
        """One frame draw replayed from two pre-drawn uniforms.

        Mirrors :meth:`sample` exactly — same transition comparison,
        same state mutation, same loss comparison — so the array
        kernel's buffered blocks (which pre-draw the edge's uniform
        stream) reproduce the chain's trajectory bit-identically.
        """
        if self._in_bad:
            if u_transition < self.p_bg:
                self._in_bad = False
        else:
            if u_transition < self.p_gb:
                self._in_bad = True
        loss = self.loss_bad if self._in_bad else self.loss_good
        return u_loss >= loss

    def true_loss(self, time: float) -> float:
        pi_bad = self.stationary_bad_fraction
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def fresh_copy(self) -> "GilbertElliottLink":
        """Identical-parameter copy carrying this instance's chain state.

        Cached prototypes are never sampled, so their ``_in_bad`` still
        holds the configured start state and the copy is exactly what
        the constructor produced (parameters were validated there; a
        plain field copy skips re-validation).
        """
        clone = GilbertElliottLink.__new__(GilbertElliottLink)
        clone.__dict__.update(self.__dict__)
        return clone

    def mean_loss(self, t0: float, t1: float, *, resolution: int = 64) -> float:
        return self.true_loss(t0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GilbertElliottLink(p_gb={self.p_gb:.3f}, p_bg={self.p_bg:.3f},"
            f" loss={self.true_loss(0):.3f})"
        )


class DriftingLink(LinkModel):
    """Non-stationary loss: sinusoidal drift around a base loss ratio.

    ``loss(t) = clip(base + amplitude * sin(2*pi*t/period + phase), eps, 1-eps)``

    Deterministic drift keeps the ground truth exact at every instant,
    which the estimator-accuracy scoring relies on.
    """

    _EPS = 1e-4

    def __init__(
        self,
        base_loss: float,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ):
        self.base_loss = check_probability(base_loss, "base_loss")
        self.amplitude = check_in_range(amplitude, "amplitude", 0.0, 0.5)
        self.period = check_positive(period, "period")
        self.phase = float(phase)

    def true_loss(self, time: float) -> float:
        raw = self.base_loss + self.amplitude * math.sin(
            2.0 * math.pi * time / self.period + self.phase
        )
        return min(1.0 - self._EPS, max(self._EPS, raw))

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        return bool(rng.random() >= self.true_loss(time))

    def uniform_threshold(self, time: float) -> Optional[float]:
        return self.true_loss(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DriftingLink(base={self.base_loss:.3f}, amp={self.amplitude:.3f},"
            f" period={self.period:g})"
        )


#: Signature of per-link model factories: (u, v, rng) -> LinkModel.
LinkAssigner = Callable[[int, int, np.random.Generator], LinkModel]

# Assigners are frozen-dataclass callables rather than closures so that
# scenarios embedding them can be pickled to process-pool workers
# (repro.exec) and hashed into stable cache keys.
#
# Batched drawing (the ``batch`` methods below) follows the same
# block-draw discipline as the array kernel (net/fastsim.py):
# ``Generator.random(n)`` consumes the PCG64 stream exactly as n scalar
# ``random()`` calls would, and ``Generator.uniform(low, high)`` is
# ``low + (high - low) * next_double`` — one raw uniform plus the same
# IEEE-754 multiply/add NumPy's elementwise kernels perform. A batch of
# k-draw calls therefore replays ``rng.random(k * count)`` reshaped
# row-major, bit-identical to the scalar call sequence in both values
# and post-call stream state (pinned by tests/net/test_link.py).


@dataclass(frozen=True)
class _UniformLossAssigner:
    low: float
    high: float

    #: Every call yields a BernoulliLink, so ``Channel.build``'s
    #: symmetric mode can clone the backward model without a draw.
    produces_bernoulli = True

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return BernoulliLink(float(rng.uniform(self.low, self.high)))

    def batch(self, count: int, rng: np.random.Generator) -> "list[LinkModel]":
        """Replay ``count`` sequential ``__call__`` draws array-at-once."""
        raw = rng.random(count)
        losses = self.low + (self.high - self.low) * raw
        return [BernoulliLink._prevalidated(x) for x in losses.tolist()]


def uniform_loss_assigner(low: float, high: float) -> LinkAssigner:
    """Assign each directed link an iid Bernoulli loss drawn U[low, high]."""
    check_probability(low, "low")
    check_probability(high, "high")
    if high < low:
        raise ValueError("high must be >= low")
    return _UniformLossAssigner(low, high)


@dataclass(frozen=True)
class _GilbertElliottAssigner:
    p_good_to_bad: float
    p_bad_to_good: float
    loss_good_range: Tuple[float, float]
    loss_bad_range: Tuple[float, float]

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return GilbertElliottLink(
            self.p_good_to_bad,
            self.p_bad_to_good,
            loss_good=float(rng.uniform(*self.loss_good_range)),
            loss_bad=float(rng.uniform(*self.loss_bad_range)),
        )

    def batch(self, count: int, rng: np.random.Generator) -> "list[LinkModel]":
        """Replay ``count`` sequential two-uniform ``__call__``s at once.

        Each call draws loss_good then loss_bad, so the flat stream is
        ``[g0, b0, g1, b1, ...]`` — a row-major (count, 2) reshape.
        """
        raw = rng.random(2 * count).reshape(count, 2)
        g_lo, g_hi = self.loss_good_range
        b_lo, b_hi = self.loss_bad_range
        goods = g_lo + (g_hi - g_lo) * raw[:, 0]
        bads = b_lo + (b_hi - b_lo) * raw[:, 1]
        return [
            GilbertElliottLink(
                self.p_good_to_bad, self.p_bad_to_good, loss_good=g, loss_bad=b
            )
            for g, b in zip(goods.tolist(), bads.tolist())
        ]


def gilbert_elliott_assigner(
    *,
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.25,
    loss_good_range: Tuple[float, float] = (0.01, 0.1),
    loss_bad_range: Tuple[float, float] = (0.4, 0.8),
) -> LinkAssigner:
    """Assign every directed link a bursty Gilbert–Elliott process.

    Per-link good/bad loss levels are drawn uniformly from the given
    ranges so links are heterogeneous, as on a real testbed.
    """
    check_probability(p_good_to_bad, "p_good_to_bad")
    check_probability(p_bad_to_good, "p_bad_to_good")
    return _GilbertElliottAssigner(
        p_good_to_bad, p_bad_to_good, tuple(loss_good_range), tuple(loss_bad_range)
    )


@dataclass(frozen=True)
class _DriftingLossAssigner:
    base_range: Tuple[float, float]
    amplitude_range: Tuple[float, float]
    period_range: Tuple[float, float]

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return DriftingLink(
            base_loss=float(rng.uniform(*self.base_range)),
            amplitude=float(rng.uniform(*self.amplitude_range)),
            period=float(rng.uniform(*self.period_range)),
            phase=float(rng.uniform(0.0, 2.0 * math.pi)),
        )

    def batch(self, count: int, rng: np.random.Generator) -> "list[LinkModel]":
        """Replay ``count`` sequential four-uniform ``__call__``s at once.

        Per-call draw order is base, amplitude, period, phase — a
        row-major (count, 4) reshape of the flat uniform stream.
        """
        raw = rng.random(4 * count).reshape(count, 4)
        b_lo, b_hi = self.base_range
        a_lo, a_hi = self.amplitude_range
        p_lo, p_hi = self.period_range
        bases = b_lo + (b_hi - b_lo) * raw[:, 0]
        amps = a_lo + (a_hi - a_lo) * raw[:, 1]
        periods = p_lo + (p_hi - p_lo) * raw[:, 2]
        phases = 0.0 + (2.0 * math.pi - 0.0) * raw[:, 3]
        return [
            DriftingLink(base_loss=b, amplitude=a, period=p, phase=ph)
            for b, a, p, ph in zip(
                bases.tolist(), amps.tolist(), periods.tolist(), phases.tolist()
            )
        ]


def drifting_loss_assigner(
    *,
    base_range: Tuple[float, float] = (0.05, 0.3),
    amplitude_range: Tuple[float, float] = (0.05, 0.2),
    period_range: Tuple[float, float] = (100.0, 400.0),
) -> LinkAssigner:
    """Assign every directed link a sinusoidally drifting loss process.

    Random phases decorrelate the links, so the network-wide symbol
    distribution drifts — the regime Dophy's periodic model updates target.
    """
    return _DriftingLossAssigner(
        tuple(base_range), tuple(amplitude_range), tuple(period_range)
    )


@dataclass(frozen=True)
class _BetaLossAssigner:
    alpha: float
    beta: float
    scale: float

    def __call__(self, u: int, v: int, rng: np.random.Generator) -> LinkModel:
        return BernoulliLink(
            float(min(1.0, self.scale * rng.beta(self.alpha, self.beta)))
        )


def beta_loss_assigner(alpha: float, beta: float, scale: float = 1.0) -> LinkAssigner:
    """Assign Bernoulli losses drawn from ``scale * Beta(alpha, beta)``.

    Testbed link-loss distributions are heavy at the low end with a tail
    of bad links; Beta(1.2, 6) scaled to [0, 0.8] is a reasonable stand-in.
    """
    check_positive(alpha, "alpha")
    check_positive(beta, "beta")
    check_probability(scale, "scale")
    return _BetaLossAssigner(alpha, beta, scale)


class Channel:
    """All directed links of a deployment, with per-edge RNG substreams."""

    def __init__(
        self,
        topology: Topology,
        models: Dict[Tuple[int, int], LinkModel],
        rng_registry: RngRegistry,
    ):
        expected = set(topology.directed_edges())
        if set(models.keys()) != expected:
            missing = expected - set(models.keys())
            extra = set(models.keys()) - expected
            raise ValueError(
                f"model/edge mismatch: missing={sorted(missing)[:4]}, extra={sorted(extra)[:4]}"
            )
        self.topology = topology
        self._models = dict(models)
        self._rng = rng_registry
        # Keyed off the models dict (deterministic build order) rather
        # than the validation set, so counter iteration order can never
        # depend on hash-set ordering.
        self._draws: Dict[Tuple[int, int], int] = dict.fromkeys(self._models, 0)
        self._successes: Dict[Tuple[int, int], int] = dict.fromkeys(self._models, 0)
        self._shared_edges: Optional[frozenset] = None

    @classmethod
    def build(
        cls,
        topology: Topology,
        assigner: LinkAssigner,
        rng_registry: RngRegistry,
        *,
        symmetric: bool = False,
    ) -> "Channel":
        """Create models for every directed edge using ``assigner``.

        ``symmetric=True`` gives both directions of a physical link the
        same model *instance* only when that is statistically safe
        (Bernoulli); stateful models always get distinct instances with
        identical parameters via a shared parameter draw.
        """
        models: Dict[Tuple[int, int], LinkModel] = {}
        assign_rng = rng_registry.get("channel", "assign")
        edges = topology.undirected_edges()
        batch = getattr(assigner, "batch", None)
        if batch is not None and (
            not symmetric or getattr(assigner, "produces_bernoulli", False)
        ):
            # Array-at-once parameter draws. ``batch`` replays the exact
            # per-call uniform stream of the scalar loop below (see the
            # block-draw discipline note above), so both the model
            # parameters and the post-build RNG state are bit-identical.
            if symmetric:
                # Scalar path draws forward only and clones backward.
                for (u, v), fwd in zip(edges, batch(len(edges), assign_rng)):
                    models[(u, v)] = fwd
                    models[(v, u)] = BernoulliLink._prevalidated(fwd.loss)  # type: ignore[attr-defined]
            else:
                # Scalar interleaving is fwd, bwd per physical link.
                drawn = iter(batch(2 * len(edges), assign_rng))
                for u, v in edges:
                    models[(u, v)] = next(drawn)
                    models[(v, u)] = next(drawn)
        else:
            for u, v in edges:
                forward = assigner(u, v, assign_rng)
                if symmetric and isinstance(forward, BernoulliLink):
                    backward: LinkModel = BernoulliLink(forward.loss)
                else:
                    backward = assigner(v, u, assign_rng)
                models[(u, v)] = forward
                models[(v, u)] = backward
        return cls(topology, models, rng_registry)

    def model(self, sender: int, receiver: int) -> LinkModel:
        return self._models[(sender, receiver)]

    def transmit(self, sender: int, receiver: int, time: float) -> bool:
        """Simulate one frame on (sender -> receiver); True = received."""
        key = (sender, receiver)
        model = self._models[key]
        self._draws[key] += 1
        ok = model.sample(self._rng.get("link", sender, receiver), time)
        if ok:
            self._successes[key] += 1
        return ok

    def link_rng(self, sender: int, receiver: int) -> np.random.Generator:
        """The per-edge RNG substream feeding this directed link's draws.

        Exposed for the array kernel, which pre-draws uniform blocks from
        the same stream :meth:`transmit` would consume scalar-by-scalar.
        Each directed edge has exactly one consumer, so buffered draws
        replay the oracle's stream prefix bit-for-bit.
        """
        return self._rng.get("link", sender, receiver)

    def record_batch(
        self, sender: int, receiver: int, draws: int, successes: int
    ) -> None:
        """Fold externally-simulated frame outcomes into the link counters.

        The array kernel resolves whole ARQ exchanges against buffered
        draws without going through :meth:`transmit`; this keeps
        :meth:`draws` / :meth:`empirical_loss` identical to the oracle's.
        """
        key = (sender, receiver)
        self._draws[key] += draws
        self._successes[key] += successes

    def true_loss(self, sender: int, receiver: int, time: float) -> float:
        return self._models[(sender, receiver)].true_loss(time)

    def mean_loss(self, sender: int, receiver: int, t0: float, t1: float) -> float:
        return self._models[(sender, receiver)].mean_loss(t0, t1)

    def draws(self, sender: int, receiver: int) -> int:
        """Number of frame draws simulated on a directed link (diagnostics)."""
        return self._draws[(sender, receiver)]

    def empirical_loss(self, sender: int, receiver: int) -> Optional[float]:
        """Realized frame-loss fraction on a directed link; None if unused.

        This is the fairest finite-sample ground truth: an ideal estimator
        that saw every frame outcome would report exactly this value.
        """
        draws = self._draws[(sender, receiver)]
        if draws == 0:
            return None
        return 1.0 - self._successes[(sender, receiver)] / draws

    def directed_edges(self) -> Iterable[Tuple[int, int]]:
        return self._models.keys()

    def shared_state_edges(self) -> "frozenset[Tuple[int, int]]":
        """Directed edges whose model reads cross-link shared state.

        Memoized: models are assigned at construction and never swapped.
        The common case (no shared-state model *class* present at all)
        short-circuits without touching every instance, which matters at
        5k-node scale where the per-instance scan is ~500k attribute
        reads on a path that almost always yields the empty set.
        """
        if self._shared_edges is None:
            classes = {type(m) for m in self._models.values()}
            if not any(c.shared_state_loss for c in classes):
                self._shared_edges = frozenset()
            else:
                self._shared_edges = frozenset(
                    edge
                    for edge, model in self._models.items()
                    if model.shared_state_loss
                )
        return self._shared_edges

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Channel(edges={len(self._models)})"
