"""Spatially-correlated interference (extension).

Real losses are not only bursty in time (Gilbert–Elliott) but correlated
in *space*: a WiFi access point or a microwave oven degrades every link
in its neighbourhood simultaneously. An :class:`InterfererField` places
interference sources in the deployment area, each cycling on/off with
exponential holding times; a link's loss is its base loss plus a penalty
for every active interferer close to either endpoint.

All links share the field's state, so the model induces exactly the
cross-link loss correlation that per-link iid models cannot express —
the spatial analogue of the F9 burstiness experiment.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.net.link import LinkAssigner, LinkModel
from repro.net.topology import Topology
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive, check_probability

__all__ = ["Interferer", "InterfererField", "interference_assigner"]


class Interferer:
    """One on/off interference source with exponential holding times."""

    def __init__(
        self,
        position: Tuple[float, float],
        radius: float,
        loss_penalty: float,
        mean_on: float,
        mean_off: float,
        rng: np.random.Generator,
        *,
        start_on: bool = False,
    ):
        check_positive(radius, "radius")
        check_probability(loss_penalty, "loss_penalty")
        check_positive(mean_on, "mean_on")
        check_positive(mean_off, "mean_off")
        self.position = position
        self.radius = radius
        self.loss_penalty = loss_penalty
        self._mean_on = mean_on
        self._mean_off = mean_off
        self._rng = rng
        self._state_on = start_on
        self._state_until = self._draw_holding(0.0)

    def _draw_holding(self, now: float) -> float:
        mean = self._mean_on if self._state_on else self._mean_off
        return now + float(self._rng.exponential(mean))

    def is_on(self, time: float) -> bool:
        """Advance the on/off process lazily up to ``time``."""
        while time >= self._state_until:
            self._state_on = not self._state_on
            self._state_until = self._draw_holding(self._state_until)
        return self._state_on

    def affects(self, point: Tuple[float, float]) -> bool:
        return math.hypot(
            point[0] - self.position[0], point[1] - self.position[1]
        ) <= self.radius


class InterfererField:
    """A set of interferers shared by every link of a deployment."""

    def __init__(self, interferers: Sequence[Interferer]):
        self.interferers = list(interferers)

    @classmethod
    def random(
        cls,
        topology: Topology,
        *,
        seed: int,
        num_interferers: int = 3,
        radius: float = 0.3,
        loss_penalty: float = 0.35,
        mean_on: float = 20.0,
        mean_off: float = 60.0,
        side: float = 1.0,
    ) -> "InterfererField":
        """Uniformly-placed interferers over the deployment square."""
        if num_interferers < 0:
            raise ValueError("num_interferers must be >= 0")
        rng = derive_rng(seed, "interference", "placement")
        interferers = []
        for i in range(num_interferers):
            pos = (float(rng.uniform(0, side)), float(rng.uniform(0, side)))
            interferers.append(
                Interferer(
                    pos,
                    radius,
                    loss_penalty,
                    mean_on,
                    mean_off,
                    derive_rng(seed, "interference", "state", i),
                )
            )
        return cls(interferers)

    def penalty_at(self, point: Tuple[float, float], time: float) -> float:
        """Summed loss penalty of the interferers active near ``point``."""
        total = 0.0
        for interferer in self.interferers:
            if interferer.affects(point) and interferer.is_on(time):
                total += interferer.loss_penalty
        return total

    def active_count(self, time: float) -> int:
        return sum(1 for i in self.interferers if i.is_on(time))


class InterferedLink(LinkModel):
    """Base Bernoulli loss plus the field's time-varying local penalty."""

    _EPS = 1e-4

    # The interferer field is shared by every link and advances lazily
    # with the queried time: the batched forwarder must only query it at
    # the simulation clock, never at inlined future hop times.
    shared_state_loss = True

    def __init__(
        self,
        base_loss: float,
        endpoint_positions: Tuple[Tuple[float, float], Tuple[float, float]],
        field: InterfererField,
    ):
        self.base_loss = check_probability(base_loss, "base_loss")
        self.positions = endpoint_positions
        self.field = field

    def true_loss(self, time: float) -> float:
        # A frame is vulnerable at both endpoints; take the worse exposure.
        penalty = max(
            self.field.penalty_at(self.positions[0], time),
            self.field.penalty_at(self.positions[1], time),
        )
        return min(1.0 - self._EPS, self.base_loss + penalty)

    def sample(self, rng: np.random.Generator, time: float) -> bool:
        return bool(rng.random() >= self.true_loss(time))

    def uniform_threshold(self, time: float) -> Optional[float]:
        # The interferer on/off processes advance lazily keyed by `time`,
        # so querying here consumes exactly the randomness `sample` would.
        return self.true_loss(time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterferedLink(base={self.base_loss:.3f})"


def interference_assigner(
    topology: Topology,
    field: InterfererField,
    *,
    base_low: float = 0.02,
    base_high: float = 0.15,
) -> LinkAssigner:
    """Assigner producing :class:`InterferedLink` models over a shared field.

    Requires node positions (RGG/grid topologies provide them).
    """
    if not topology.positions:
        raise ValueError("interference model requires node positions")

    def make(u: int, v: int, rng: np.random.Generator) -> LinkModel:
        base = float(rng.uniform(base_low, base_high))
        return InterferedLink(
            base, (topology.positions[u], topology.positions[v]), field
        )

    return make
