"""CTP-style dynamic collection routing.

Every node keeps EWMA estimates of its links' ETX (expected transmission
count) and, each beacon round, re-selects the parent minimizing
``cost(parent) + etx(node, parent)`` — with hysteresis, as the Collection
Tree Protocol does. Parent *churn* (the dynamics Dophy is designed for)
arises from three realistic sources, all configurable:

* estimation noise on each beacon round's ETX samples,
* genuine drift of the underlying link qualities (DriftingLink),
* data-driven ETX updates fed back from actual ARQ attempt counts.

The engine exposes the current tree, a timestamped parent-change log,
and churn-rate metrics, which both the simulator and the baselines'
"assumed topology" snapshots consume.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.link import Channel
from repro.net.sim import Simulator
from repro.net.topology import Topology
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["RoutingConfig", "RoutingEngine", "ParentChange"]

#: Cost assigned to unreachable nodes during relaxation.
_INFINITY = float("inf")


@dataclass(frozen=True)
class RoutingConfig:
    """Parameters of the collection routing engine."""

    #: Seconds between beacon rounds (route recomputations).
    beacon_period: float = 2.0
    #: EWMA weight of a new ETX sample (CTP uses ~0.1–0.25).
    etx_alpha: float = 0.25
    #: Lognormal sigma of per-round ETX sampling noise; 0 = perfect estimates.
    etx_noise_std: float = 0.3
    #: Hysteresis: switch parent only if the candidate beats the current
    #: route cost by more than this many expected transmissions.
    parent_switch_threshold: float = 0.5
    #: Blend observed data-traffic attempt counts into ETX estimates.
    data_driven_updates: bool = True
    #: EWMA weight for data-driven samples.
    data_alpha: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.beacon_period, "beacon_period")
        if not 0.0 < self.etx_alpha <= 1.0:
            raise ValueError("etx_alpha must be in (0, 1]")
        check_non_negative(self.etx_noise_std, "etx_noise_std")
        check_non_negative(self.parent_switch_threshold, "parent_switch_threshold")
        if not 0.0 < self.data_alpha <= 1.0:
            raise ValueError("data_alpha must be in (0, 1]")


@dataclass(frozen=True)
class ParentChange:
    """One parent-switch event (for churn accounting).

    ``new_parent`` is None when loop repair detached the node (it
    re-acquires a parent on a later round).
    """

    time: float
    node: int
    old_parent: Optional[int]
    new_parent: Optional[int]


@dataclass
class _LinkEstimate:
    """EWMA ETX estimate for one directed link."""

    etx: float = 1.0
    samples: int = 0

    def update(self, sample: float, alpha: float) -> None:
        if self.samples == 0:
            self.etx = sample
        else:
            self.etx = (1.0 - alpha) * self.etx + alpha * sample
        self.samples += 1


class RoutingEngine:
    """Maintains the dynamic collection tree."""

    def __init__(
        self,
        topology: Topology,
        channel: Channel,
        rng_registry: RngRegistry,
        config: Optional[RoutingConfig] = None,
    ):
        self.topology = topology
        self.channel = channel
        self.config = config or RoutingConfig()
        self._rng = rng_registry.get("routing", "beacons")
        self._estimates: Dict[Tuple[int, int], _LinkEstimate] = {
            edge: _LinkEstimate() for edge in topology.directed_edges()
        }
        self._parent: Dict[int, Optional[int]] = {n: None for n in topology.nodes}
        self._cost: Dict[int, float] = {n: _INFINITY for n in topology.nodes}
        self._cost[topology.sink] = 0.0
        self._alive: Dict[int, bool] = {n: True for n in topology.nodes}
        self.parent_change_log: List[ParentChange] = []
        self._beacon_rounds = 0
        self._etx_sampler: Optional[Callable[[float], Sequence[float]]] = None
        # Warm start: seed estimates with the true ETX at t=0 (as a network
        # that has been running its estimator for a while would have).
        for u, v in topology.directed_edges():
            self._estimates[(u, v)].update(self._true_etx(u, v, 0.0), 1.0)
        self._recompute_tree(0.0)

    # -- link quality -----------------------------------------------------------

    def _true_etx(self, u: int, v: int, time: float) -> float:
        """ETX of the (u, v) hop: 1 / P(data delivered and ACK returned)."""
        p_data = 1.0 - self.channel.true_loss(u, v, time)
        p_ack = 1.0 - self.channel.true_loss(v, u, time)
        success = max(1e-6, p_data * p_ack)
        return 1.0 / success

    def estimated_etx(self, u: int, v: int) -> float:
        return self._estimates[(u, v)].etx

    def set_etx_sampler(
        self, sampler: Optional[Callable[[float], Sequence[float]]]
    ) -> None:
        """Install a replacement ETX-sampling kernel for beacon rounds.

        ``sampler(time)`` must return one sample per directed edge, in
        ``self._estimates`` iteration order, drawing its noise from the
        same ``("routing", "beacons")`` stream the scalar loop uses — the
        array engine's vectorized sampler is bit-identical by contract
        (pinned by tests/net/test_fastsim_differential.py).
        """
        self._etx_sampler = sampler

    def beacon_round(self, time: float) -> None:
        """Sample every link's ETX (noisily), update EWMAs, rebuild the tree."""
        sigma = self.config.etx_noise_std
        alpha = self.config.etx_alpha
        if self._etx_sampler is not None:
            # Inlined _LinkEstimate.update (same arithmetic, same branch):
            # one beacon round touches every edge, so the method-call
            # overhead is the dominant cost left after vectorized sampling.
            decay = 1.0 - alpha
            for est, sample in zip(self._estimates.values(), self._etx_sampler(time)):
                est.etx = sample if est.samples == 0 else decay * est.etx + alpha * sample
                est.samples += 1
        else:
            for (u, v), est in self._estimates.items():
                sample = self._true_etx(u, v, time)
                if sigma > 0:
                    sample *= math.exp(float(self._rng.normal(0.0, sigma)))
                est.update(sample, alpha)
        self._beacon_rounds += 1
        self._recompute_tree(time)

    def on_data_sample(self, u: int, v: int, attempts: int, time: float) -> None:
        """Feed an observed ARQ attempt count back into the (u, v) estimate."""
        if not self.config.data_driven_updates:
            return
        self._estimates[(u, v)].update(float(attempts), self.config.data_alpha)

    # -- node liveness -------------------------------------------------------------

    def is_alive(self, node: int) -> bool:
        return self._alive[node]

    def set_alive(self, node: int, alive: bool, time: float) -> None:
        """Mark a node up/down and immediately re-form routes around it.

        (CTP reacts to a dead parent within a few transmissions via
        link-layer feedback; an immediate recompute is the idealization.)
        """
        if node == self.topology.sink and not alive:
            raise ValueError("the sink cannot fail")
        if self._alive[node] == alive:
            return
        self._alive[node] = alive
        self._recompute_tree(time)

    # -- tree computation ---------------------------------------------------------

    def _recompute_tree(self, time: float) -> None:
        """Dijkstra over estimated ETX, then hysteresis-gated parent updates.

        Dead nodes are skipped entirely: they cannot be parents, routes
        cannot pass through them, and their own (stale) parents are left
        untouched until they recover.
        """
        sink = self.topology.sink
        dist: Dict[int, float] = {n: _INFINITY for n in self.topology.nodes}
        best_parent: Dict[int, Optional[int]] = {n: None for n in self.topology.nodes}
        dist[sink] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, sink)]
        visited = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for nbr in self.topology.neighbors(node):
                if not self._alive[nbr]:
                    continue
                # Cost for nbr to route *through* node.
                cand = d + self._estimates[(nbr, node)].etx
                if cand < dist[nbr]:
                    dist[nbr] = cand
                    best_parent[nbr] = node
                    heapq.heappush(heap, (cand, nbr))
        threshold = self.config.parent_switch_threshold
        for node in self.topology.nodes:
            if node == sink or not self._alive[node]:
                continue
            current = self._parent[node]
            candidate = best_parent[node]
            if candidate is None:
                continue  # unreachable this round; keep stale parent
            current_dead = current is not None and not self._alive[current]
            if current is None or current_dead:
                # Bootstrap, or forced switch off a dead parent: no hysteresis.
                self._set_parent(node, candidate, True, time)
                self._cost[node] = dist[node]
                continue
            current_cost = self._cost_through(node, current)
            new_cost = dist[node]
            if candidate != current and new_cost < current_cost - threshold:
                self._set_parent(node, candidate, True, time)
                self._cost[node] = new_cost
            else:
                self._cost[node] = current_cost
        # Hysteresis mixes this round's choices with stale ones, which can
        # compose into routing loops (A keeps old parent B while B now
        # routes through A). CTP detects and breaks such loops via cost
        # checks on the datapath; we repair them here.
        self._repair_loops(best_parent, dist, time)

    def _find_cycle(self) -> Optional[List[int]]:
        """A cycle in the parent graph restricted to alive nodes, or None."""
        state: Dict[int, int] = {}  # 0=in progress stack id marker, 1=done
        for start in self.topology.nodes:
            if start in state:
                continue
            path: List[int] = []
            index: Dict[int, int] = {}
            current: Optional[int] = start
            while current is not None:
                if current in index:
                    return path[index[current]:]  # found a cycle
                if state.get(current) == 1 or current == self.topology.sink:
                    break
                index[current] = len(path)
                path.append(current)
                nxt = self._parent.get(current)
                if nxt is not None and not self._alive.get(nxt, True):
                    break  # chain ends at a dead (stale) parent
                current = nxt
            for node in path:
                state[node] = 1
        return None

    def _repair_loops(
        self,
        best_parent: Dict[int, Optional[int]],
        dist: Dict[int, float],
        time: float,
    ) -> None:
        """Force members of any parent cycle onto their fresh Dijkstra choice.

        Fresh edges alone form a tree, so every cycle contains at least
        one stale edge; each pass converts the stale members to fresh (or
        detaches them when unreachable this round), strictly shrinking
        the stale set — termination within num_nodes passes.
        """
        for _ in range(self.topology.num_nodes):
            cycle = self._find_cycle()
            if cycle is None:
                return
            for node in cycle:
                candidate = best_parent.get(node)
                if candidate is not None and candidate != self._parent[node]:
                    self._set_parent(node, candidate, True, time)
                    self._cost[node] = dist[node]
                elif candidate is None:
                    # Unreachable this round: detach rather than loop.
                    self._set_parent(node, None, True, time)
                    self._cost[node] = _INFINITY

    def _cost_through(self, node: int, parent: int) -> float:
        return self._cost.get(parent, _INFINITY) + self._estimates[(node, parent)].etx

    def _set_parent(
        self, node: int, new_parent: Optional[int], _valid: bool, time: float
    ) -> None:
        old = self._parent[node]
        if old == new_parent:
            return
        self._parent[node] = new_parent
        # The very first assignment (old=None) is bootstrap, not churn.
        if old is not None:
            self.parent_change_log.append(ParentChange(time, node, old, new_parent))

    # -- queries ------------------------------------------------------------------

    def parent(self, node: int) -> Optional[int]:
        """Current parent of ``node`` (None only for the sink)."""
        if node == self.topology.sink:
            return None
        return self._parent[node]

    def route_cost(self, node: int) -> float:
        return self._cost[node]

    def tree_snapshot(self) -> Dict[int, Optional[int]]:
        """Current node -> parent map (copy)."""
        return dict(self._parent)

    def path_to_sink(self, node: int, *, max_hops: Optional[int] = None) -> List[int]:
        """Follow current parents from ``node`` to the sink.

        Raises if a routing loop or a dead end is encountered (callers that
        tolerate this — tomography snapshots — catch it).
        """
        limit = max_hops if max_hops is not None else self.topology.num_nodes + 1
        path = [node]
        current = node
        for _ in range(limit):
            if current == self.topology.sink:
                return path
            nxt = self._parent[current]
            if nxt is None or nxt in path:
                raise RuntimeError(f"no valid route from {node} (stuck at {current})")
            path.append(nxt)
            current = nxt
        raise RuntimeError(f"path from {node} exceeds {limit} hops")

    @property
    def total_parent_changes(self) -> int:
        return len(self.parent_change_log)

    @property
    def beacon_rounds(self) -> int:
        return self._beacon_rounds

    def churn_rate(self, duration: float) -> float:
        """Parent changes per node per second over ``duration``."""
        check_positive(duration, "duration")
        non_sink = self.topology.num_nodes - 1
        return self.total_parent_changes / (non_sink * duration)

    # -- simulator integration ------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Schedule periodic beacon rounds on ``sim``."""
        period = self.config.beacon_period
        jitter_rng = self._rng

        sim.every(
            period,
            lambda: self.beacon_round(sim.now),
            start=period,
            jitter=lambda: float(jitter_rng.uniform(-0.05, 0.05)) * period,
        )
