"""CTP-style dynamic collection routing.

Every node keeps EWMA estimates of its links' ETX (expected transmission
count) and, each beacon round, re-selects the parent minimizing
``cost(parent) + etx(node, parent)`` — with hysteresis, as the Collection
Tree Protocol does. Parent *churn* (the dynamics Dophy is designed for)
arises from three realistic sources, all configurable:

* estimation noise on each beacon round's ETX samples,
* genuine drift of the underlying link qualities (DriftingLink),
* data-driven ETX updates fed back from actual ARQ attempt counts.

The engine exposes the current tree, a timestamped parent-change log,
and churn-rate metrics, which both the simulator and the baselines'
"assumed topology" snapshots consume.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.net.link import Channel
from repro.net.sim import Simulator
from repro.net.topology import Topology
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["RoutingConfig", "RoutingEngine", "ParentChange", "RoutingWarmState"]

#: Cost assigned to unreachable nodes during relaxation.
_INFINITY = float("inf")


@dataclass(frozen=True)
class RoutingConfig:
    """Parameters of the collection routing engine."""

    #: Seconds between beacon rounds (route recomputations).
    beacon_period: float = 2.0
    #: EWMA weight of a new ETX sample (CTP uses ~0.1–0.25).
    etx_alpha: float = 0.25
    #: Lognormal sigma of per-round ETX sampling noise; 0 = perfect estimates.
    etx_noise_std: float = 0.3
    #: Hysteresis: switch parent only if the candidate beats the current
    #: route cost by more than this many expected transmissions.
    parent_switch_threshold: float = 0.5
    #: Blend observed data-traffic attempt counts into ETX estimates.
    data_driven_updates: bool = True
    #: EWMA weight for data-driven samples.
    data_alpha: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.beacon_period, "beacon_period")
        if not 0.0 < self.etx_alpha <= 1.0:
            raise ValueError("etx_alpha must be in (0, 1]")
        check_non_negative(self.etx_noise_std, "etx_noise_std")
        check_non_negative(self.parent_switch_threshold, "parent_switch_threshold")
        if not 0.0 < self.data_alpha <= 1.0:
            raise ValueError("data_alpha must be in (0, 1]")


@dataclass(frozen=True)
class RoutingWarmState:
    """The routing engine's post-``__init__`` state, for cache replay.

    Construction is deterministic given the channel's t=0 losses: the
    warm-start ETX fill and the bootstrap tree consume no RNG (beacon
    noise only flows in during :meth:`RoutingEngine.beacon_round`), so
    restoring these three pieces into a fresh engine is bit-identical to
    rebuilding — that is what lets the scenario cache skip the bootstrap
    shortest-path solve entirely.
    """

    #: ETX per directed-edge slot (``topology.directed_edges()`` order).
    etx: "np.ndarray"
    #: node -> parent after the bootstrap recompute.
    parent: Dict[int, Optional[int]]
    #: node -> route cost after the bootstrap recompute.
    cost: Dict[int, float]


@dataclass(frozen=True)
class ParentChange:
    """One parent-switch event (for churn accounting).

    ``new_parent`` is None when loop repair detached the node (it
    re-acquires a parent on a later round).
    """

    time: float
    node: int
    old_parent: Optional[int]
    new_parent: Optional[int]


class RoutingEngine:
    """Maintains the dynamic collection tree."""

    def __init__(
        self,
        topology: Topology,
        channel: Channel,
        rng_registry: RngRegistry,
        config: Optional[RoutingConfig] = None,
        *,
        warm_state: Optional[RoutingWarmState] = None,
    ):
        self.topology = topology
        self.channel = channel
        self.config = config or RoutingConfig()
        self._rng = rng_registry.get("routing", "beacons")
        # ETX estimates live in flat arrays indexed by directed-edge slot
        # (``topology.directed_edges()`` order). Array storage is the
        # authoritative state: scalar paths index element-wise and the
        # beacon EWMA / SPT solvers operate on whole arrays. Elementwise
        # float64 ops are the same IEEE-754 operations as the scalar
        # loop they replaced (NumPy ufuncs do not fuse multiply-add), so
        # the stored bits are unchanged.
        self._edges: List[Tuple[int, int]] = list(topology.directed_edges())
        self._edge_index: Dict[Tuple[int, int], int] = {
            edge: i for i, edge in enumerate(self._edges)
        }
        self._etx: "np.ndarray" = np.ones(len(self._edges), dtype=np.float64)
        self._etx_samples: "np.ndarray" = np.zeros(len(self._edges), dtype=np.int64)
        # Hoisted EWMA constants for the per-hop data-sample path.
        self._data_alpha = self.config.data_alpha
        self._data_decay = 1.0 - self.config.data_alpha
        self._parent: Dict[int, Optional[int]] = {n: None for n in topology.nodes}
        self._cost: Dict[int, float] = {n: _INFINITY for n in topology.nodes}
        self._cost[topology.sink] = 0.0
        self._alive: Dict[int, bool] = {n: True for n in topology.nodes}
        self.parent_change_log: List[ParentChange] = []
        self._beacon_rounds = 0
        self._etx_sampler: Optional[
            Callable[[float], Union[Sequence[float], "np.ndarray"]]
        ] = None
        self._spt_mode = "full"
        self._spt_cache: Optional[
            Tuple[
                List[int],
                Dict[int, int],
                "np.ndarray",
                "np.ndarray",
                "np.ndarray",
                "np.ndarray",
                "np.ndarray",
                "np.ndarray",
            ]
        ] = None
        # Warm start: seed estimates with the true ETX at t=0 (as a network
        # that has been running its estimator for a while would have).
        if warm_state is not None:
            # Cache replay: construction consumes no RNG, so restoring
            # the captured arrays/maps is bit-identical to rebuilding
            # (see RoutingWarmState). parent_change_log stays empty —
            # bootstrap assignments are never logged as churn.
            if len(warm_state.etx) != len(self._edges):
                raise ValueError("warm state does not match topology edge count")
            self._etx[:] = warm_state.etx
            self._etx_samples[:] = 1
            self._parent = dict(warm_state.parent)
            self._cost = dict(warm_state.cost)
        else:
            # Vectorized fill: gather each directed edge's t=0 loss once
            # (the scalar _true_etx loop queried both directions per
            # edge, touching every model twice), then combine with the
            # reverse-edge permutation. Per element this is the same
            # IEEE-754 subtract/multiply/max/divide sequence as
            # _true_etx, so the stored bits are unchanged.
            losses = np.fromiter(
                (channel.true_loss(u, v, 0.0) for u, v in self._edges),
                dtype=np.float64,
                count=len(self._edges),
            )
            reverse = np.fromiter(
                (self._edge_index[(v, u)] for u, v in self._edges),
                dtype=np.intp,
                count=len(self._edges),
            )
            p_data = 1.0 - losses
            success = np.maximum(1e-6, p_data * p_data[reverse])
            self._etx[:] = 1.0 / success
            self._etx_samples[:] = 1
            self._recompute_tree(0.0)

    # -- link quality -----------------------------------------------------------

    def _true_etx(self, u: int, v: int, time: float) -> float:
        """ETX of the (u, v) hop: 1 / P(data delivered and ACK returned)."""
        p_data = 1.0 - self.channel.true_loss(u, v, time)
        p_ack = 1.0 - self.channel.true_loss(v, u, time)
        success = max(1e-6, p_data * p_ack)
        return 1.0 / success

    def estimated_etx(self, u: int, v: int) -> float:
        return float(self._etx[self._edge_index[(u, v)]])

    def set_etx_sampler(
        self,
        sampler: Optional[Callable[[float], Union[Sequence[float], "np.ndarray"]]],
    ) -> None:
        """Install a replacement ETX-sampling kernel for beacon rounds.

        ``sampler(time)`` must return one sample per directed edge, in
        ``self._edges`` order (= ``topology.directed_edges()``), drawing
        its noise from the same ``("routing", "beacons")`` stream the
        scalar loop uses — the array engine's vectorized sampler is
        bit-identical by contract (pinned by
        tests/net/test_fastsim_differential.py).
        """
        self._etx_sampler = sampler

    def beacon_round(self, time: float) -> None:
        """Sample every link's ETX (noisily), update EWMAs, rebuild the tree."""
        sigma = self.config.etx_noise_std
        alpha = self.config.etx_alpha
        decay = 1.0 - alpha
        if self._etx_sampler is not None:
            # Whole-array EWMA: fl(fl(decay*e) + fl(alpha*s)) per element
            # is exactly the scalar update's arithmetic (no fused ops).
            samples = np.asarray(self._etx_sampler(time), dtype=np.float64)
            self._etx = np.where(
                self._etx_samples == 0,
                samples,
                decay * self._etx + alpha * samples,
            )
            self._etx_samples += 1
        else:
            etx = self._etx
            counts = self._etx_samples
            for i, (u, v) in enumerate(self._edges):
                sample = self._true_etx(u, v, time)
                if sigma > 0:
                    # lognormal(0, s) draws exp(normal(0, s)) from the same
                    # stream with the same bits as the explicit two-step
                    # form, and unlike it also has a block-draw shape the
                    # vectorized sampler can match exactly.
                    sample *= float(self._rng.lognormal(0.0, sigma))
                if counts[i] == 0:
                    etx[i] = sample
                else:
                    etx[i] = decay * float(etx[i]) + alpha * sample
                counts[i] += 1
        self._beacon_rounds += 1
        self._recompute_tree(time)

    def on_data_sample(self, u: int, v: int, attempts: int, time: float) -> None:
        """Feed an observed ARQ attempt count back into the (u, v) estimate."""
        if not self.config.data_driven_updates:
            return
        etx = self._etx
        i = self._edge_index[(u, v)]
        if self._etx_samples[i] == 0:
            etx[i] = float(attempts)
        else:
            etx[i] = self._data_decay * float(etx[i]) + self._data_alpha * attempts
        self._etx_samples[i] += 1

    def capture_warm_state(self) -> RoutingWarmState:
        """Snapshot the post-construction state for scenario-cache replay.

        Only meaningful immediately after ``__init__`` (before any beacon
        round or data traffic): that is the state the cache stores, and
        the restore path asserts nothing beyond edge-count compatibility.
        """
        return RoutingWarmState(
            etx=self._etx.copy(),
            parent=dict(self._parent),
            cost=dict(self._cost),
        )

    # -- node liveness -------------------------------------------------------------

    def is_alive(self, node: int) -> bool:
        return self._alive[node]

    def set_alive(self, node: int, alive: bool, time: float) -> None:
        """Mark a node up/down and immediately re-form routes around it.

        (CTP reacts to a dead parent within a few transmissions via
        link-layer feedback; an immediate recompute is the idealization.)
        """
        if node == self.topology.sink and not alive:
            raise ValueError("the sink cannot fail")
        if self._alive[node] == alive:
            return
        self._alive[node] = alive
        self._recompute_tree(time)

    # -- tree computation ---------------------------------------------------------

    def set_spt_mode(self, mode: str) -> None:
        """Select the shortest-path kernel backing ``_recompute_tree``.

        ``"full"`` is the reference heap Dijkstra (the differential
        oracle); ``"incremental"`` is the vectorized Bellman–Ford solver
        seeded from the previous round's tree. Both produce bit-identical
        ``(best_parent, dist)`` solutions (see
        :meth:`_solve_spt_incremental` for the argument), so the
        hysteresis and cycle-repair decisions downstream are identical.
        """
        if mode not in ("full", "incremental"):
            raise ValueError(f"unknown SPT mode: {mode!r}")
        self._spt_mode = mode

    def _recompute_tree(self, time: float) -> None:
        """Shortest paths over estimated ETX, then hysteresis-gated updates.

        Dead nodes are skipped entirely: they cannot be parents, routes
        cannot pass through them, and their own (stale) parents are left
        untouched until they recover.
        """
        if self._spt_mode == "incremental":
            best_parent, dist = self._solve_spt_incremental()
        else:
            best_parent, dist = self._solve_spt_full()
        self._apply_parent_updates(best_parent, dist, time)

    def _solve_spt_full(
        self,
    ) -> Tuple[Dict[int, Optional[int]], Dict[int, float]]:
        """Heap Dijkstra over the alive subgraph (the reference solver)."""
        sink = self.topology.sink
        dist: Dict[int, float] = {n: _INFINITY for n in self.topology.nodes}
        best_parent: Dict[int, Optional[int]] = {n: None for n in self.topology.nodes}
        dist[sink] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, sink)]
        visited = set()
        etx = self._etx
        eidx = self._edge_index
        while heap:
            d, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for nbr in self.topology.neighbors(node):
                if not self._alive[nbr]:
                    continue
                # Cost for nbr to route *through* node.
                cand = d + float(etx[eidx[(nbr, node)]])
                if cand < dist[nbr]:
                    dist[nbr] = cand
                    best_parent[nbr] = node
                    heapq.heappush(heap, (cand, nbr))
        return best_parent, dist

    def _spt_structure(
        self,
    ) -> Tuple[
        List[int],
        Dict[int, int],
        "np.ndarray",
        "np.ndarray",
        "np.ndarray",
        "np.ndarray",
        "np.ndarray",
        "np.ndarray",
    ]:
        """Static per-topology arrays for the vectorized solver (lazy).

        Directed edges are kept in ``self._edges`` slot order so the
        weight array is ``self._etx`` itself (no per-call gather), viewed
        through a stable sort by head node so ``np.minimum.reduceat``
        can reduce each node's incoming candidates in one shot.
        """
        if self._spt_cache is None:
            nodes = list(self.topology.nodes)
            index = {n: i for i, n in enumerate(nodes)}
            edges = self._edges
            # Estimate key (u, v) prices node u routing *through* v.
            head = np.asarray([index[u] for (u, v) in edges], dtype=np.intp)
            tail = np.asarray([index[v] for (u, v) in edges], dtype=np.intp)
            order = np.argsort(head, kind="stable")
            heads_sorted = head[order]
            unique_heads, starts = np.unique(heads_sorted, return_index=True)
            tail_ids_sorted = np.asarray(
                [edges[i][1] for i in order.tolist()], dtype=np.int64
            )
            self._spt_cache = (
                nodes,
                index,
                tail,
                order,
                heads_sorted,
                unique_heads,
                starts,
                tail_ids_sorted,
            )
        return self._spt_cache

    def _solve_spt_incremental(
        self,
    ) -> Tuple[Dict[int, Optional[int]], Dict[int, float]]:
        """Vectorized shortest paths, bit-identical to the heap Dijkstra.

        **Distances.** IEEE-754 addition is monotone and ``fl(d + w) >= d``
        for ``w >= 0``, so both Dijkstra and Bellman–Ford compute the same
        quantity: the minimum over sink paths of the left-folded rounded
        sums, i.e. the unique fixpoint of

            dist[n] = min_p fl(dist[p] + w(n, p))    (alive p, sink = 0)

        reached from any starting point between the fixpoint and the
        all-infinity start within ``num_nodes`` sweeps. We seed the sweeps
        with the fold of the *new* weights along the previous round's
        parent chains — every finite seed entry is the cost of a real
        alive path, hence an upper bound on the fixpoint — so after small
        churn the solver converges in a couple of sweeps instead of the
        graph eccentricity ("incremental" in solution, not in semantics).

        **Parents.** Dijkstra pops in ``(dist, node)`` order and only a
        strict improvement rebinds a parent, so among minimal-cost
        candidates the winner is the first popped: the argmin under the
        key ``(fl(dist[p]+w), dist[p], p)``. Three masked ``reduceat``
        passes replicate that key exactly.
        """
        (
            nodes,
            index,
            tail,
            order,
            heads_sorted,
            unique_heads,
            starts,
            tail_ids_sorted,
        ) = self._spt_structure()
        num = len(nodes)
        sink = self.topology.sink
        sink_i = index[sink]
        weights = self._etx
        alive = np.fromiter(
            (self._alive[n] for n in nodes), dtype=bool, count=num
        )
        # A dead node selects no parent: its incoming candidates are
        # masked to +inf, which also keeps its dist at +inf so it never
        # relays (dist[tail] = inf poisons every path through it).
        tail_s = tail[order]
        w_s = np.where(alive[heads_sorted], weights[order], _INFINITY)
        # Seed: fold the new weights along the old parent chains.
        parent_i = np.arange(num, dtype=np.intp)
        parent_w = np.full(num, _INFINITY)
        for i, n in enumerate(nodes):
            p = self._parent[n]
            if n != sink and p is not None and alive[i] and self._alive[p]:
                parent_i[i] = index[p]
                parent_w[i] = self._etx[self._edge_index[(n, p)]]
        dist = np.full(num, _INFINITY)
        dist[sink_i] = 0.0
        for _ in range(num):
            folded = np.minimum(dist, dist[parent_i] + parent_w)
            folded[sink_i] = 0.0
            if np.array_equal(folded, dist):
                break
            dist = folded
        # Bellman–Ford sweeps to the fixpoint.
        for _ in range(num):
            cand_s = dist[tail_s] + w_s
            new = np.full(num, _INFINITY)
            new[unique_heads] = np.minimum.reduceat(cand_s, starts)
            new[sink_i] = 0.0
            if np.array_equal(new, dist):
                break
            dist = new
        # Parent selection: argmin of (cand, dist[parent], parent id).
        dist_tail_s = dist[tail_s]
        cand_s = dist_tail_s + w_s
        c_min = np.full(num, _INFINITY)
        c_min[unique_heads] = np.minimum.reduceat(cand_s, starts)
        tie1 = cand_s == c_min[heads_sorted]
        d_masked = np.where(tie1, dist_tail_s, _INFINITY)
        d_min = np.full(num, _INFINITY)
        d_min[unique_heads] = np.minimum.reduceat(d_masked, starts)
        tie2 = tie1 & (d_masked == d_min[heads_sorted])
        id_sentinel = int(tail_ids_sorted.max()) + 1 if len(tail_ids_sorted) else 0
        id_masked = np.where(tie2, tail_ids_sorted, id_sentinel)
        id_min = np.full(num, id_sentinel, dtype=np.int64)
        id_min[unique_heads] = np.minimum.reduceat(id_masked, starts)
        dist_list = dist.tolist()
        c_list = c_min.tolist()
        id_list = id_min.tolist()
        best_parent: Dict[int, Optional[int]] = {}
        dist_out: Dict[int, float] = {}
        for i, n in enumerate(nodes):
            dist_out[n] = dist_list[i]
            best_parent[n] = (
                None if n == sink or c_list[i] == _INFINITY else int(id_list[i])
            )
        return best_parent, dist_out

    def _apply_parent_updates(
        self,
        best_parent: Dict[int, Optional[int]],
        dist: Dict[int, float],
        time: float,
    ) -> None:
        """Hysteresis-gated parent switches, then loop repair.

        Shared verbatim by both SPT solvers so mode choice can only
        change *how* the solution is computed, never which parents are
        adopted.
        """
        sink = self.topology.sink
        threshold = self.config.parent_switch_threshold
        for node in self.topology.nodes:
            if node == sink or not self._alive[node]:
                continue
            current = self._parent[node]
            candidate = best_parent[node]
            if candidate is None:
                continue  # unreachable this round; keep stale parent
            current_dead = current is not None and not self._alive[current]
            if current is None or current_dead:
                # Bootstrap, or forced switch off a dead parent: no hysteresis.
                self._set_parent(node, candidate, True, time)
                self._cost[node] = dist[node]
                continue
            current_cost = self._cost_through(node, current)
            new_cost = dist[node]
            if candidate != current and new_cost < current_cost - threshold:
                self._set_parent(node, candidate, True, time)
                self._cost[node] = new_cost
            else:
                self._cost[node] = current_cost
        # Hysteresis mixes this round's choices with stale ones, which can
        # compose into routing loops (A keeps old parent B while B now
        # routes through A). CTP detects and breaks such loops via cost
        # checks on the datapath; we repair them here.
        self._repair_loops(best_parent, dist, time)

    def _find_cycle(self) -> Optional[List[int]]:
        """A cycle in the parent graph restricted to alive nodes, or None."""
        state: Dict[int, int] = {}  # 0=in progress stack id marker, 1=done
        for start in self.topology.nodes:
            if start in state:
                continue
            path: List[int] = []
            index: Dict[int, int] = {}
            current: Optional[int] = start
            while current is not None:
                if current in index:
                    return path[index[current]:]  # found a cycle
                if state.get(current) == 1 or current == self.topology.sink:
                    break
                index[current] = len(path)
                path.append(current)
                nxt = self._parent.get(current)
                if nxt is not None and not self._alive.get(nxt, True):
                    break  # chain ends at a dead (stale) parent
                current = nxt
            for node in path:
                state[node] = 1
        return None

    def _repair_loops(
        self,
        best_parent: Dict[int, Optional[int]],
        dist: Dict[int, float],
        time: float,
    ) -> None:
        """Force members of any parent cycle onto their fresh Dijkstra choice.

        Fresh edges (strictly increasing dist along child -> parent) can
        only form forests, so every cycle contains at least one stale
        edge; each pass converts the current cycle's stale members to
        fresh (or detaches them when unreachable this round). A node
        forced fresh never reverts within one repair, so the stale set
        shrinks monotonically — even when forcing two members onto a
        shared fresh parent splices a *new* cycle through other stale
        edges, later passes consume it. If a pass makes no progress at
        all (every member already fresh — possible only in the rounding
        corner where ``fl(dist[p] + w) == dist[p]`` makes a fresh-edge
        cycle cost-stationary), fall through to the detach phase, which
        breaks each remaining cycle by construction.
        """
        for _ in range(self.topology.num_nodes):
            cycle = self._find_cycle()
            if cycle is None:
                return
            progressed = False
            for node in cycle:
                candidate = best_parent.get(node)
                if candidate is not None and candidate != self._parent[node]:
                    self._set_parent(node, candidate, True, time)
                    self._cost[node] = dist[node]
                    progressed = True
                elif candidate is None and self._parent[node] is not None:
                    # Unreachable this round: detach rather than loop.
                    self._set_parent(node, None, True, time)
                    self._cost[node] = _INFINITY
                    progressed = True
            if not progressed:
                break
        # Guaranteed termination: detach one member per remaining cycle
        # (each detach removes a parent edge, and the parent graph has at
        # most num_nodes edges). Unreachable in ordinary float regimes,
        # but "repair" must mean repaired.
        cycle = self._find_cycle()
        while cycle is not None:
            node = min(cycle)
            self._set_parent(node, None, True, time)
            self._cost[node] = _INFINITY
            cycle = self._find_cycle()

    def _cost_through(self, node: int, parent: int) -> float:
        return self._cost.get(parent, _INFINITY) + float(
            self._etx[self._edge_index[(node, parent)]]
        )

    def _set_parent(
        self, node: int, new_parent: Optional[int], _valid: bool, time: float
    ) -> None:
        old = self._parent[node]
        if old == new_parent:
            return
        self._parent[node] = new_parent
        # The very first assignment (old=None) is bootstrap, not churn.
        if old is not None:
            self.parent_change_log.append(ParentChange(time, node, old, new_parent))

    # -- queries ------------------------------------------------------------------

    def parent(self, node: int) -> Optional[int]:
        """Current parent of ``node`` (None only for the sink)."""
        if node == self.topology.sink:
            return None
        return self._parent[node]

    def route_cost(self, node: int) -> float:
        return self._cost[node]

    def tree_snapshot(self) -> Dict[int, Optional[int]]:
        """Current node -> parent map (copy)."""
        return dict(self._parent)

    def path_to_sink(self, node: int, *, max_hops: Optional[int] = None) -> List[int]:
        """Follow current parents from ``node`` to the sink.

        Raises if a routing loop or a dead end is encountered (callers that
        tolerate this — tomography snapshots — catch it).
        """
        limit = max_hops if max_hops is not None else self.topology.num_nodes + 1
        path = [node]
        current = node
        for _ in range(limit):
            if current == self.topology.sink:
                return path
            nxt = self._parent[current]
            if nxt is None or nxt in path:
                raise RuntimeError(f"no valid route from {node} (stuck at {current})")
            path.append(nxt)
            current = nxt
        raise RuntimeError(f"path from {node} exceeds {limit} hops")

    @property
    def total_parent_changes(self) -> int:
        return len(self.parent_change_log)

    @property
    def beacon_rounds(self) -> int:
        return self._beacon_rounds

    def churn_rate(self, duration: float) -> float:
        """Parent changes per node per second over ``duration``."""
        check_positive(duration, "duration")
        non_sink = self.topology.num_nodes - 1
        return self.total_parent_changes / (non_sink * duration)

    # -- simulator integration ------------------------------------------------------

    def attach(self, sim: Simulator) -> None:
        """Schedule periodic beacon rounds on ``sim``."""
        period = self.config.beacon_period
        jitter_rng = self._rng

        sim.every(
            period,
            lambda: self.beacon_round(sim.now),
            start=period,
            jitter=lambda: float(jitter_rng.uniform(-0.05, 0.05)) * period,
        )
