"""Packet-level fault injection (extension).

Node crashes (:mod:`repro.net.failures`) remove whole nodes; this module
injects the *subtler* faults a deployed sink actually sees — corruption
that escapes the CRC, frames cut short, link-layer duplicates, and the
sink's own process being down — so the decode-failure taxonomy and the
salvage path can be exercised end to end.

A :class:`FaultPlan` is composable and reproducible: every stochastic
decision draws from its own named substream of a dedicated fault seed
(via :func:`repro.utils.rng.derive_rng`), so enabling one fault kind
never perturbs the draws of another, nor any data-plane stream.

Fault kinds:

* **bit corruption** — with probability ``corruption_rate`` per delivered
  annotation, flip 1..``max_flips`` uniformly chosen payload bits
  (modelling corruption the 16-bit CRC failed to catch);
* **truncation** — with probability ``truncation_rate``, cut a uniform
  fraction off the tail of the annotation (a frame clipped mid-air);
* **duplication** — with probability ``duplication_rate``, deliver the
  same packet to the sink a second time (a lost ACK on the last hop);
* **sink outages** — validated ``[start, end)`` windows during which the
  sink discards deliveries without decoding them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.utils.rng import derive_rng
from repro.utils.validation import check_probability

__all__ = ["SinkOutage", "FaultPlan", "ShardFaultPlan"]


@dataclass(frozen=True)
class SinkOutage:
    """One ``[start, end)`` window during which the sink is down."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("outage start must be >= 0")
        if self.end <= self.start:
            raise ValueError("outage end must be > start")

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


class FaultPlan:
    """Composable, seeded packet-fault injector.

    All rates default to 0, so an empty plan is a no-op. The plan is
    stateless apart from its RNG streams; one instance serves one run.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        corruption_rate: float = 0.0,
        max_flips: int = 3,
        truncation_rate: float = 0.0,
        duplication_rate: float = 0.0,
        sink_outages: Sequence[SinkOutage] = (),
    ):
        check_probability(corruption_rate, "corruption_rate")
        check_probability(truncation_rate, "truncation_rate")
        check_probability(duplication_rate, "duplication_rate")
        if max_flips < 1:
            raise ValueError("max_flips must be >= 1")
        ordered = sorted(sink_outages, key=lambda o: o.start)
        for a, b in zip(ordered, ordered[1:]):
            if b.start < a.end:
                raise ValueError("sink outage windows must not overlap")
        self.seed = seed
        self.corruption_rate = corruption_rate
        self.max_flips = max_flips
        self.truncation_rate = truncation_rate
        self.duplication_rate = duplication_rate
        self.sink_outages: Tuple[SinkOutage, ...] = tuple(ordered)
        # One substream per fault kind: enabling truncation must not
        # shift which packets get corrupted, and vice versa.
        self._corrupt_rng = derive_rng(seed, "faults", "corrupt")
        self._truncate_rng = derive_rng(seed, "faults", "truncate")
        self._duplicate_rng = derive_rng(seed, "faults", "duplicate")

    @property
    def active(self) -> bool:
        """True when any fault kind can actually fire."""
        return bool(
            self.corruption_rate > 0
            or self.truncation_rate > 0
            or self.duplication_rate > 0
            or self.sink_outages
        )

    # -- per-delivery hooks ------------------------------------------------------

    def sink_down(self, time: float) -> bool:
        """Is the sink inside an outage window at ``time``?"""
        return any(o.covers(time) for o in self.sink_outages)

    def draw_duplicate(self) -> bool:
        """Should this delivery be followed by a duplicate copy?"""
        if self.duplication_rate <= 0:
            return False
        return float(self._duplicate_rng.random()) < self.duplication_rate

    def corrupt_annotation(
        self, data: bytes, bit_length: int
    ) -> Tuple[bytes, int, bool]:
        """Maybe flip bits and/or truncate; returns (data, bits, mutated).

        Bit flips land uniformly anywhere in the annotation; truncation
        keeps a uniform prefix of at least one bit. Both can hit the same
        packet (flips are applied first, on the full-length stream).
        """
        mutated = False
        if (
            self.corruption_rate > 0
            and bit_length > 0
            and float(self._corrupt_rng.random()) < self.corruption_rate
        ):
            buf = bytearray(data)
            n_flips = int(self._corrupt_rng.integers(1, self.max_flips + 1))
            for _ in range(n_flips):
                pos = int(self._corrupt_rng.integers(0, bit_length))
                buf[pos // 8] ^= 1 << (7 - (pos % 8))
            data = bytes(buf)
            mutated = True
        if (
            self.truncation_rate > 0
            and bit_length > 1
            and float(self._truncate_rng.random()) < self.truncation_rate
        ):
            keep = int(self._truncate_rng.integers(1, bit_length))
            data = data[: (keep + 7) // 8]
            bit_length = keep
            mutated = True
        return data, bit_length, mutated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(corruption={self.corruption_rate},"
            f" truncation={self.truncation_rate},"
            f" duplication={self.duplication_rate},"
            f" outages={len(self.sink_outages)})"
        )


class ShardFaultPlan:
    """Seeded crash/stall injection for the streaming sink's shard workers.

    Used by :class:`repro.stream.sink.StreamingSink` (and its tests) to
    kill or hang a shard's estimator worker at a chosen dispatch round,
    exercising the supervisor's checkpoint-restore and backoff paths.

    Unlike :class:`FaultPlan`, the draws here are **stateless**: whether
    shard ``s`` crashes at round ``r`` is a pure function of
    ``(seed, s, r)``, derived through its own
    :func:`repro.utils.rng.derive_rng` substream. That buys two
    properties the supervisor tests rely on:

    * enabling stalls never shifts which rounds crash (and vice versa);
    * a sink that is killed and resumed mid-run sees exactly the same
      remaining fault schedule as an uninterrupted run — there is no
      generator state to fast-forward.

    ``crash_at`` / ``stall_at`` force faults at exact ``(round, shard)``
    coordinates for targeted tests, on top of any stochastic rate.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        crash_rate: float = 0.0,
        stall_rate: float = 0.0,
        stall_rounds: int = 2,
        crash_at: Sequence[Tuple[int, int]] = (),
        stall_at: Sequence[Tuple[int, int]] = (),
    ):
        check_probability(crash_rate, "crash_rate")
        check_probability(stall_rate, "stall_rate")
        if stall_rounds < 1:
            raise ValueError("stall_rounds must be >= 1")
        for where, name in ((crash_at, "crash_at"), (stall_at, "stall_at")):
            for rnd, shard in where:
                if rnd < 1 or shard < 0:
                    raise ValueError(
                        f"{name} entries must be (round >= 1, shard >= 0)"
                    )
        self.seed = seed
        self.crash_rate = crash_rate
        self.stall_rate = stall_rate
        self.stall_rounds = stall_rounds
        self.crash_at = frozenset((int(r), int(s)) for r, s in crash_at)
        self.stall_at = frozenset((int(r), int(s)) for r, s in stall_at)

    @property
    def active(self) -> bool:
        """True when any fault can actually fire."""
        return bool(
            self.crash_rate > 0
            or self.stall_rate > 0
            or self.crash_at
            or self.stall_at
        )

    def _draw(self, kind: str, shard: int, round_no: int, rate: float) -> bool:
        if rate <= 0:
            return False
        rng = derive_rng(self.seed, "faults", kind, shard, round_no)
        return float(rng.random()) < rate

    def draw_crash(self, shard: int, round_no: int) -> bool:
        """Should ``shard``'s worker crash while applying round ``round_no``?"""
        if (round_no, shard) in self.crash_at:
            return True
        return self._draw("shard-crash", shard, round_no, self.crash_rate)

    def draw_stall(self, shard: int, round_no: int) -> bool:
        """Should ``shard``'s worker hang at round ``round_no``?"""
        if (round_no, shard) in self.stall_at:
            return True
        return self._draw("shard-stall", shard, round_no, self.stall_rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ShardFaultPlan(crash={self.crash_rate}, stall={self.stall_rate},"
            f" forced={len(self.crash_at) + len(self.stall_at)})"
        )
