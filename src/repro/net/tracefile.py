"""Trace record / replay (extension).

Researchers evaluate estimators on *recorded* testbed traces at least as
often as on live systems. This module serializes a simulation's
packet-level ground truth to a line-delimited JSON trace file and
replays it offline — estimators can be re-run, re-configured and
compared without re-simulating (or, with a hand-written trace, run on
data from an entirely different source).

Format: one JSON object per line. A header line (`"type": "header"`)
carries run metadata; each packet line (`"type": "packet"`) records the
origin, timestamps, outcome and per-hop (sender, receiver, attempts,
delivered) tuples.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.packet import Packet
from repro.net.simulation import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a package cycle)
    from repro.core.estimator import PerLinkEstimator

__all__ = [
    "TraceHeader",
    "TracePacket",
    "save_trace",
    "load_trace",
    "replay_into_estimator",
    "truth_from_header",
]

PathLike = Union[str, pathlib.Path]
FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceHeader:
    """Run metadata carried in the trace's first line."""

    num_nodes: int
    sink: int
    duration: float
    max_attempts: int
    format_version: int = FORMAT_VERSION
    #: Optional ground-truth loss map {"u,v": loss} for offline scoring.
    true_losses: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class TracePacket:
    """One packet's journey."""

    origin: int
    seqno: int
    created_at: float
    delivered_at: Optional[float]
    drop_reason: Optional[str]
    #: (sender, receiver, attempts, delivered) per hop attempt.
    hops: List[Tuple[int, int, int, bool]]

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None


def _packet_record(packet: Packet) -> dict:
    return {
        "type": "packet",
        "origin": packet.origin,
        "seqno": packet.seqno,
        "created_at": packet.created_at,
        "delivered_at": packet.delivered_at,
        "drop_reason": packet.drop_reason,
        "hops": [
            [h.sender, h.receiver, h.attempts, h.delivered] for h in packet.hops
        ],
    }


def save_trace(
    result: SimulationResult,
    path: PathLike,
    *,
    include_truth: bool = True,
) -> pathlib.Path:
    """Write a run's packets (and optionally ground truth) as a trace file."""
    path = pathlib.Path(path)
    truth = (
        {
            f"{u},{v}": loss
            for (u, v), loss in result.ground_truth.true_loss_map().items()
        }
        if include_truth
        else {}
    )
    header = {
        "type": "header",
        "format_version": FORMAT_VERSION,
        "num_nodes": result.topology.num_nodes,
        "sink": result.topology.sink,
        "duration": result.duration,
        "max_attempts": result.config.mac.max_attempts,
        "true_losses": truth,
    }
    with path.open("w") as fh:
        fh.write(json.dumps(header) + "\n")
        for packet in result.packets:
            fh.write(json.dumps(_packet_record(packet)) + "\n")
    return path


def load_trace(path: PathLike) -> Tuple[TraceHeader, List[TracePacket]]:
    """Read a trace file back into structured records."""
    path = pathlib.Path(path)
    header: Optional[TraceHeader] = None
    packets: List[TracePacket] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "header":
                if record.get("format_version") != FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported trace format version {record.get('format_version')}"
                    )
                header = TraceHeader(
                    num_nodes=record["num_nodes"],
                    sink=record["sink"],
                    duration=record["duration"],
                    max_attempts=record["max_attempts"],
                    true_losses=record.get("true_losses", {}),
                )
            elif kind == "packet":
                packets.append(
                    TracePacket(
                        origin=record["origin"],
                        seqno=record["seqno"],
                        created_at=record["created_at"],
                        delivered_at=record.get("delivered_at"),
                        drop_reason=record.get("drop_reason"),
                        hops=[tuple(h) for h in record["hops"]],
                    )
                )
            else:
                raise ValueError(f"line {lineno}: unknown record type {kind!r}")
    if header is None:
        raise ValueError("trace has no header line")
    return header, packets


def replay_into_estimator(
    header: TraceHeader,
    packets: Iterable[TracePacket],
    *,
    estimator: "Optional[PerLinkEstimator]" = None,
    delivered_only: bool = True,
) -> "PerLinkEstimator":
    """Feed a trace's hop evidence into a per-link estimator.

    ``delivered_only=True`` replicates what an in-band annotation system
    can observe (evidence from dropped packets never reaches the sink);
    False replays every successful hop — the out-of-band upper bound.

    Hop attempts in traces are sender-side counts, which equal the
    receiver's first-arrival attempt under perfect ACKs (the simulator
    default); with lossy ACKs replayed estimates skew slightly high.
    """
    from repro.core.estimator import PerLinkEstimator

    est = estimator or PerLinkEstimator(max_attempts=header.max_attempts)
    for packet in packets:
        if delivered_only and not packet.delivered:
            continue
        for sender, receiver, attempts, delivered in packet.hops:
            if not delivered:
                continue
            est.add_exact(
                (sender, receiver), attempts - 1, packet.created_at
            )
    return est


def truth_from_header(header: TraceHeader) -> Dict[Tuple[int, int], float]:
    """Decode the header's ground-truth map back to link tuples."""
    out: Dict[Tuple[int, int], float] = {}
    for key, loss in header.true_losses.items():
        u, v = key.split(",")
        out[(int(u), int(v))] = float(loss)
    return out
