"""Data-collection simulation driver.

:class:`CollectionSimulation` wires topology, channel, MAC, routing and
traffic together and runs the network for a configured duration. Protocol
logic under study (Dophy or a baseline) plugs in as a
:class:`CollectionObserver`: it sees exactly the events a real deployment
would expose — packet creation at origins, receiver-side hop completions
(with the MAC attempt number from the frame header), and deliveries at
the sink — plus a hook to schedule its own control traffic.

Each node's radio serves one ARQ exchange at a time; packets arriving at
a busy node wait in a bounded FIFO transmit queue (tail-dropped on
overflow). Remaining abstractions relative to a packet-level TinyOS
stack, none of which the inference consumes: beacons are modelled as
periodic ETX sampling rather than individual frames, no inter-node RF
interference, and duplicate packets from lost ACKs are suppressed at the
first hop. See DESIGN.md §4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple, Union

from repro.net.failures import FailurePlan
from repro.net.fastsim import FastArqMac, VectorizedEtxSampler, array_simulator
from repro.net.link import Channel, LinkAssigner, uniform_loss_assigner
from repro.net.mac import ArqMac, MacConfig, MacResult
from repro.net.packet import Packet
from repro.net.routing import RoutingConfig, RoutingEngine, RoutingWarmState
from repro.net.sim import Simulator
from repro.sanitize import hooks as _sanitize_hooks
from repro.net.topology import Topology
from repro.net.trace import GroundTruth
from repro.utils.rng import RngRegistry
from repro.utils.validation import check_positive

__all__ = [
    "CollectionObserver",
    "SimulationConfig",
    "SimulationResult",
    "CollectionSimulation",
    "DEFAULT_LINK_ASSIGNER",
]

#: Fallback link regime when a simulation is given neither a channel nor
#: an assigner. Module-level so the scenario cache's skeleton builder
#: (workloads/scenario_cache.py) applies the identical default.
DEFAULT_LINK_ASSIGNER = uniform_loss_assigner(0.05, 0.3)


class CollectionObserver(Protocol):
    """Hooks a protocol implementation receives from the simulation.

    All methods are optional in spirit; inherit from
    :class:`NullObserver` to implement only what you need.
    """

    def attach(self, simulation: "CollectionSimulation") -> None:
        """Called once before the run starts; schedule control traffic here."""

    def on_packet_created(self, packet: Packet, time: float) -> None:
        """A data packet was generated at its origin."""

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:
        """``receiver`` got the packet; ``first_attempt`` is the 1-based
        attempt index read from the received frame's MAC header."""

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        """The packet reached the sink (decode annotations here)."""

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        """The packet died en route (retries/TTL/no-route)."""

    def control_overhead_bits(self) -> int:
        """Total control-plane bits this protocol injected (model dissemination)."""


class NullObserver:
    """No-op base class implementing the observer protocol."""

    def attach(self, simulation: "CollectionSimulation") -> None:  # noqa: D102
        pass

    def on_packet_created(self, packet: Packet, time: float) -> None:  # noqa: D102
        pass

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:  # noqa: D102
        pass

    def on_packet_delivered(self, packet: Packet, time: float) -> None:  # noqa: D102
        pass

    def on_packet_dropped(self, packet: Packet, time: float) -> None:  # noqa: D102
        pass

    def control_overhead_bits(self) -> int:  # noqa: D102
        return 0


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level parameters."""

    #: Simulated duration, seconds.
    duration: float = 300.0
    #: Mean inter-packet interval per source node, seconds.
    traffic_period: float = 10.0
    #: Uniform jitter fraction applied to each inter-packet gap (0..1).
    traffic_jitter: float = 0.25
    #: TTL: drop packets exceeding this many hop attempts.
    max_hops: int = 64
    #: Processing delay between receiving a packet and forwarding it, seconds.
    forward_delay: float = 0.002
    #: Per-node transmit-queue capacity; arrivals beyond it are tail-dropped.
    queue_capacity: int = 16
    #: Simulation kernel: "event" is the reference object-per-event engine,
    #: "array" the vectorized kernel (:mod:`repro.net.fastsim`). The two
    #: produce bit-identical observable streams for identical seeds; the
    #: event engine is the differential oracle pinning the array one.
    engine: str = "event"
    #: Array engine only: resolve each packet's multi-hop journey inline
    #: at wake-up (chained MAC exchanges, TTL/drop handling, observer
    #: callbacks in oracle order), deferring back to per-hop events
    #: whenever any state could change mid-journey (any pending event at
    #: or before the arrival), the next hop is contended (busy radio,
    #: queued packets), the hop would cross the run horizon, or the next
    #: link reads lazily-advancing shared state (interference). Requires
    #: ``forward_delay > 0`` (silently ineffective otherwise; a zero
    #: delay collapses hop arrivals onto exchange finish times, and the
    #: resulting equal-time ties are ordered by scheduling sequence,
    #: which batching does not reproduce).
    batch_forwarding: bool = True
    #: Array engine only: maintain routing shortest paths with the
    #: vectorized tree-seeded Bellman–Ford solver instead of the full
    #: heap Dijkstra. Bit-identical solutions by construction (see
    #: :meth:`repro.net.routing.RoutingEngine._solve_spt_incremental`).
    incremental_spt: bool = True
    #: Array engine only: replay Gilbert–Elliott chains against buffered
    #: two-uniform draws instead of the exact scalar fallback.
    ge_chain_replay: bool = True
    mac: MacConfig = field(default_factory=MacConfig)
    routing: RoutingConfig = field(default_factory=RoutingConfig)

    def __post_init__(self) -> None:
        check_positive(self.duration, "duration")
        check_positive(self.traffic_period, "traffic_period")
        if not 0.0 <= self.traffic_jitter < 1.0:
            raise ValueError("traffic_jitter must be in [0, 1)")
        if self.max_hops < 1:
            raise ValueError("max_hops must be >= 1")
        if self.forward_delay < 0:
            raise ValueError("forward_delay must be >= 0")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.engine not in ("event", "array"):
            raise ValueError(
                f"engine must be 'event' or 'array', got {self.engine!r}"
            )


@dataclass
class SimulationResult:
    """Everything a run produced."""

    topology: Topology
    channel: Channel
    routing: RoutingEngine
    ground_truth: GroundTruth
    packets: List[Packet]
    config: SimulationConfig
    duration: float
    events_processed: int

    @property
    def delivered_packets(self) -> List[Packet]:
        return [p for p in self.packets if p.delivered]

    @property
    def delivery_ratio(self) -> float:
        if not self.packets:
            return 0.0
        return len(self.delivered_packets) / len(self.packets)

    @property
    def churn_rate(self) -> float:
        """Parent changes per node per second over the run."""
        return self.routing.churn_rate(self.duration)


class CollectionSimulation:
    """One reproducible data-collection run over a lossy dynamic network."""

    def __init__(
        self,
        topology: Topology,
        *,
        seed: int,
        config: Optional[SimulationConfig] = None,
        link_assigner: Optional[LinkAssigner] = None,
        channel: Optional[Channel] = None,
        observers: Sequence[CollectionObserver] = (),
        failure_plan: Optional[FailurePlan] = None,
        routing_warm_state: Optional[RoutingWarmState] = None,
    ):
        self.topology = topology
        self.config = config or SimulationConfig()
        self.rng = RngRegistry(seed)
        if channel is not None and link_assigner is not None:
            raise ValueError("pass either channel or link_assigner, not both")
        if channel is None:
            assigner = link_assigner or DEFAULT_LINK_ASSIGNER
            channel = Channel.build(topology, assigner, self.rng)
        self.channel = channel
        use_array = self.config.engine == "array"
        self._batch = bool(
            use_array
            and self.config.batch_forwarding
            and self.config.forward_delay > 0
        )
        self.sim = array_simulator() if use_array else Simulator()
        self.routing = RoutingEngine(
            topology,
            channel,
            self.rng,
            self.config.routing,
            warm_state=routing_warm_state,
        )
        self.mac: Union[ArqMac, FastArqMac] = ArqMac(channel, self.config.mac)
        if use_array:
            # Swap the batched hot paths in; all protocol logic below is
            # engine-agnostic, which is what keeps the observable
            # streams bit-identical across engines (see net/fastsim.py).
            self.mac = FastArqMac(
                channel,
                self.config.mac,
                ge_chain_replay=self.config.ge_chain_replay,
            )
            self.routing.set_etx_sampler(VectorizedEtxSampler(self.routing))
            if self.config.incremental_spt:
                self.routing.set_spt_mode("incremental")
        self.ground_truth = GroundTruth(channel)
        self.observers: List[CollectionObserver] = list(observers)
        self.packets: List[Packet] = []
        self._seqno: Dict[int, int] = {n: 0 for n in topology.nodes}
        self.failure_plan = failure_plan
        self._alive: Dict[int, bool] = {n: True for n in topology.nodes}
        self._busy: Dict[int, bool] = {n: False for n in topology.nodes}
        self._queues: Dict[int, deque] = {n: deque() for n in topology.nodes}
        self._started = False
        # Batched-forwarding state (array engine, see _run_chain): lazy
        # busy horizons replace the _busy flag + finish events (a node is
        # busy iff now < _busy_until[node]), queue servicing becomes an
        # explicitly scheduled event, and inline legs must never resolve
        # links that read lazily-advancing shared state at future times.
        self._busy_until: Dict[int, float] = {n: 0.0 for n in topology.nodes}
        self._service_pending: Dict[int, bool] = {n: False for n in topology.nodes}
        self._run_horizon = self.config.duration + 10.0
        self._shared_edges = channel.shared_state_edges()

    def is_alive(self, node: int) -> bool:
        return self._alive[node]

    def control_broadcast(
        self,
        targets: Sequence[int],
        loss: float,
        stream: Tuple[str, ...] = ("dissemination",),
    ) -> List[int]:
        """One control-plane broadcast round; returns the targets reached.

        Each alive target independently misses the round with probability
        ``loss`` (drawn from the named RNG ``stream`` so data-plane streams
        stay untouched); dead nodes never receive. With ``loss == 0`` no
        randomness is consumed at all.
        """
        received: List[int] = []
        rng = self.rng.get(*stream) if loss > 0 else None
        for node in targets:
            if not self._alive[node]:
                continue
            if rng is not None and float(rng.random()) < loss:
                continue
            received.append(node)
        return received

    def _schedule_failures(self) -> None:
        if self.failure_plan is None:
            return
        for event in self.failure_plan:
            # Args-based scheduling instead of the default-arg lambda
            # idiom: bindings are explicit at the call site, so a later
            # edit cannot silently reintroduce late-binding capture.
            self.sim.at(
                event.time,
                self._set_node_state,
                event.node,
                event.kind == "recover",
            )

    def _set_node_state(self, node: int, alive: bool) -> None:
        if self._alive[node] == alive:
            return
        self._alive[node] = alive
        self.routing.set_alive(node, alive, self.sim.now)

    def add_observer(self, observer: CollectionObserver) -> None:
        if self._started:
            raise RuntimeError("cannot add observers after the run started")
        self.observers.append(observer)

    # -- traffic -----------------------------------------------------------------

    def _schedule_traffic(self) -> None:
        cfg = self.config
        for node in self.topology.nodes:
            if node == self.topology.sink:
                continue
            rng = self.rng.get("traffic", node)
            # Random phase so sources do not fire in lockstep.
            first = float(rng.uniform(0.0, cfg.traffic_period))

            def make_generator(origin: int, gen_rng) -> None:
                def generate() -> None:
                    if self._alive[origin]:  # dead nodes produce nothing
                        self._create_packet(origin)
                    jitter = float(
                        gen_rng.uniform(-cfg.traffic_jitter, cfg.traffic_jitter)
                    )
                    gap = cfg.traffic_period * (1.0 + jitter)
                    if self.sim.now + gap <= cfg.duration:
                        self.sim.after(gap, generate)

                self.sim.at(first, generate)

            make_generator(node, rng)

    def _create_packet(self, origin: int) -> None:
        seqno = self._seqno[origin]
        self._seqno[origin] += 1
        packet = Packet(origin=origin, seqno=seqno, created_at=self.sim.now)
        self.packets.append(packet)
        self.ground_truth.record_generated(packet)
        for obs in self.observers:
            obs.on_packet_created(packet, self.sim.now)
        forward = self._forward_batched if self._batch else self._forward
        self.sim.after(0.0, forward, packet, origin)

    # -- forwarding --------------------------------------------------------------
    #
    # Each node's radio serves one ARQ exchange at a time: a packet arriving
    # while the node is mid-exchange waits in its FIFO transmit queue (with a
    # capacity cap — overflowing packets are tail-dropped, as real forwarding
    # queues do).

    def _forward(self, packet: Packet, node: int) -> None:
        if node == self.topology.sink:
            self._deliver(packet)
            return
        if self._busy[node]:
            queue = self._queues[node]
            if len(queue) >= self.config.queue_capacity:
                self._drop(packet, "queue_overflow")
            else:
                queue.append(packet)
            return
        self._start_exchange(packet, node)

    def _start_exchange(self, packet: Packet, node: int) -> None:
        if not self._alive[node]:
            # The holding node died before it could forward.
            self._drop(packet, "node_failed")
            self._service_queue(node)
            return
        if len(packet.hops) >= self.config.max_hops:
            self._drop(packet, "ttl")
            self._service_queue(node)
            return
        parent = self.routing.parent(node)
        if parent is None:
            self._drop(packet, "no_route")
            self._service_queue(node)
            return
        if not self._alive[parent]:
            # Receiver's radio is off: every attempt times out, no frames
            # actually traverse the channel (so link statistics stay clean).
            mac_cfg = self.config.mac
            end = self.sim.now + mac_cfg.max_attempts * (
                mac_cfg.tx_time + mac_cfg.retry_interval
            )
            result = MacResult(
                attempts=mac_cfg.max_attempts,
                first_received_attempt=None,
                acked=False,
                end_time=end,
            )
        else:
            result = self.mac.send(node, parent, self.sim.now)
        self._busy[node] = True
        self.sim.at(result.end_time, self._finish_exchange, node)
        self.routing.on_data_sample(node, parent, result.attempts, self.sim.now)
        self.ground_truth.record_hop(node, parent, result)
        packet.record_hop(node, parent, result.attempts, result.end_time, result.received)
        if result.received:
            first = result.first_received_attempt
            assert first is not None
            for obs in self.observers:
                obs.on_hop_delivered(packet, node, parent, first, result.end_time)
            delay = (result.end_time - self.sim.now) + self.config.forward_delay
            self.sim.after(delay, self._forward, packet, parent)
        else:
            self._drop(packet, "retries")

    def _finish_exchange(self, node: int) -> None:
        self._busy[node] = False
        self._service_queue(node)

    def _service_queue(self, node: int) -> None:
        if self._busy[node]:
            return
        queue = self._queues[node]
        if queue:
            self._start_exchange(queue.popleft(), node)

    # -- batched forwarding (array engine) -----------------------------------------
    #
    # ``batch_forwarding`` replaces the per-hop event cascade with inline
    # multi-hop journey resolution at wake-up: one real event runs as many
    # consecutive exchanges as are provably identical to the oracle's —
    # every protocol decision (TTL, routes, liveness, drops, observer
    # callbacks) replayed with the virtual leg time where the oracle would
    # have used ``sim.now``. A leg is deferred back to a real event when
    # the oracle's interleaving could matter: delivery (sink-side fault
    # draws and annotation decoding are order-sensitive across packets),
    # ANY pending event at or before the arrival (the strict horizon:
    # even a traffic creation can cascade into a radio occupancy on this
    # journey's path before the arrival, so no event class is safe to
    # inline past), a contended next hop (busy radio, queued packets,
    # pending service — queue mutations happen only at real events so
    # FIFO order and tail drops are exact), an arrival past the run
    # horizon (the oracle never pops it), or a next link reading
    # lazily-advancing shared state (interference fields must be queried
    # in global time order). Elided finish events and inlined forward
    # events are credited/debited via ``Simulator.credit_events`` so
    # ``events_processed`` stays bit-equal to the oracle's count.
    #
    # Equal-time ties between unrelated events are resolved by scheduling
    # sequence, which batching does not replay; such ties require exact
    # float equality of independently accumulated sums and ``forward_delay
    # > 0`` keeps hop arrivals off exchange finish times, so they are
    # measure-zero (asserted by the differential suite, not by construction).

    def _forward_batched(self, packet: Packet, node: int) -> None:
        """Real-event entry point of the batched path (wake-up)."""
        if node == self.topology.sink:
            self._deliver(packet)
            return
        now = self.sim.now
        if (
            now < self._busy_until[node]
            or self._queues[node]
            or self._service_pending[node]
        ):
            queue = self._queues[node]
            if len(queue) >= self.config.queue_capacity:
                self._drop(packet, "queue_overflow")
            else:
                queue.append(packet)
                self._ensure_service(node)
            return
        self._run_chain(packet, node, now)

    def _ensure_service(self, node: int) -> None:
        """Schedule queue servicing at the node's busy horizon (once).

        The oracle services queues from each exchange's finish event;
        batching elides those (crediting them), so the first queued
        arrival buys the service event back — the -1 cancels the elided
        finish's +1, keeping the count exact. Both adjustments are gated
        on the run horizon, past which neither event would ever pop.
        """
        if self._service_pending[node]:
            return
        self._service_pending[node] = True
        until = self._busy_until[node]
        self.sim.at(until, self._service_batched, node)
        if until <= self._run_horizon:
            self.sim.credit_events(-1)

    def _service_batched(self, node: int) -> None:
        """Drain the node's queue exactly as the oracle's finish event does:
        drop-without-exchange packets recurse immediately, the first packet
        that starts an exchange rebinds servicing to the new busy horizon."""
        self._service_pending[node] = False
        queue = self._queues[node]
        while queue:
            packet = queue.popleft()
            if self._run_chain(packet, node, self.sim.now):
                if queue:
                    self._ensure_service(node)
                return

    def _run_chain(self, packet: Packet, node: int, start: float) -> bool:
        """Resolve the packet's journey inline from ``node`` at ``start``.

        Returns True when the first leg started an ARQ exchange at
        ``node`` (i.e. occupied its radio), which is what queue servicing
        needs to know. ``start`` equals ``sim.now`` for the first leg;
        continuation legs run at virtual arrival times strictly before
        the next pending event, where the whole protocol state is
        provably frozen.
        """
        cfg = self.config
        mac_cfg = cfg.mac
        sink = self.topology.sink
        cur, t = node, start
        started_first = False
        first_leg = True
        while True:
            if not self._alive[cur]:
                # The holding node died before it could forward (only
                # reachable on the first leg: liveness cannot change
                # before an inlined continuation's arrival).
                self._drop(packet, "node_failed", time=t)
                break
            if len(packet.hops) >= cfg.max_hops:
                self._drop(packet, "ttl", time=t)
                break
            parent = self.routing.parent(cur)
            if parent is None:
                self._drop(packet, "no_route", time=t)
                break
            if not self._alive[parent]:
                # Receiver's radio is off: every attempt times out, no
                # frames traverse the channel (same float expression as
                # the oracle's).
                end = t + mac_cfg.max_attempts * (
                    mac_cfg.tx_time + mac_cfg.retry_interval
                )
                result = MacResult(
                    attempts=mac_cfg.max_attempts,
                    first_received_attempt=None,
                    acked=False,
                    end_time=end,
                )
            else:
                result = self.mac.send(cur, parent, t)
            self._busy_until[cur] = result.end_time
            if first_leg:
                started_first = True
            # Credit the elided finish event (the oracle pops one per
            # started exchange within the horizon; queue servicing, its
            # only effect, is recreated lazily by _ensure_service).
            if result.end_time <= self._run_horizon:
                self.sim.credit_events(1)
            self.routing.on_data_sample(cur, parent, result.attempts, t)
            self.ground_truth.record_hop(cur, parent, result)
            packet.record_hop(
                cur, parent, result.attempts, result.end_time, result.received
            )
            if not result.received:
                self._drop(packet, "retries", time=t)
                break
            first = result.first_received_attempt
            assert first is not None
            for obs in self.observers:
                obs.on_hop_delivered(packet, cur, parent, first, result.end_time)
            # The oracle's exact arrival expression, with the leg's
            # virtual start time where it uses sim.now.
            delay = (result.end_time - t) + cfg.forward_delay
            arrival = t + delay
            horizon = self.sim.peek_event_time()
            grandparent = self.routing.parent(parent)
            if (
                parent == sink
                or arrival > self._run_horizon
                or (horizon is not None and arrival >= horizon)
                or arrival < self._busy_until[parent]
                or self._queues[parent]
                or self._service_pending[parent]
                or (
                    grandparent is not None
                    and (parent, grandparent) in self._shared_edges
                )
            ):
                self.sim.at(arrival, self._forward_batched, packet, parent)
                break
            # Inline continuation: credit the elided forward event.
            self.sim.credit_events(1)
            cur, t = parent, arrival
            first_leg = False
        return started_first

    def _deliver(self, packet: Packet) -> None:
        packet.delivered_at = self.sim.now
        self.ground_truth.record_delivered(packet)
        for obs in self.observers:
            obs.on_packet_delivered(packet, self.sim.now)

    def _drop(
        self, packet: Packet, reason: str, *, time: Optional[float] = None
    ) -> None:
        # ``time`` is the virtual leg time of an inlined drop (the oracle
        # drops at its forward event's timestamp); defaults to the clock.
        at = self.sim.now if time is None else time
        packet.dropped_at = at
        packet.drop_reason = reason
        self.ground_truth.record_dropped(packet)
        for obs in self.observers:
            obs.on_packet_dropped(packet, at)

    # -- execution ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the full run and return its results."""
        if self._started:
            raise RuntimeError("simulation already ran")
        self._started = True
        if self._batch:
            # Batching elides/reorders event pops by design, so a tracing
            # sanitizer tags this run's pop sequence as its own profile;
            # the stream-mode differ compares pops only between runs with
            # matching profiles (draw streams stay strictly comparable).
            active = _sanitize_hooks.ACTIVE
            if active is not None:
                active.set_pop_profile("batched-forwarding")
        self.routing.attach(self.sim)
        self._schedule_failures()
        for obs in self.observers:
            obs.attach(self)
        self._schedule_traffic()
        # Drain in-flight packets a short grace period past the duration.
        self.sim.run_until(self.config.duration + 10.0)
        return SimulationResult(
            topology=self.topology,
            channel=self.channel,
            routing=self.routing,
            ground_truth=self.ground_truth,
            packets=self.packets,
            config=self.config,
            duration=self.config.duration,
            events_processed=self.sim.events_processed,
        )
