"""Bayesian per-link loss estimation (extension).

The MLE in :mod:`repro.core.estimator` is unstable on links with a
handful of samples — exactly the links a dynamic network produces in
abundance (parents visited briefly during churn). A Beta prior over the
loss ratio fixes that: with geometric evidence the model is conjugate
(posterior ``Beta(a + sum(retx), b + n)`` when truncation is ignored),
and a numeric grid posterior handles the truncated/censored cases the
MAC cap introduces.

:meth:`BayesianLinkEstimator.fit_prior_empirical_bayes` pools the whole
network's evidence into the prior (method of moments on the per-link
posterior means), so sparsely-observed links shrink toward the
network-wide loss profile instead of toward an arbitrary constant.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.decoder import DecodedAnnotation
from repro.utils.validation import check_positive

__all__ = ["BayesianLinkEstimate", "BayesianLinkEstimator"]

Link = Tuple[int, int]

#: Grid used for the non-conjugate (truncated/censored) posterior.
_GRID = np.linspace(1e-4, 1.0 - 1e-4, 512)


@dataclass(frozen=True)
class BayesianLinkEstimate:
    """Posterior summary for one link's loss ratio."""

    link: Link
    posterior_mean: float
    credible_low: float
    credible_high: float
    n_samples: int

    @property
    def credible_interval(self) -> Tuple[float, float]:
        return (self.credible_low, self.credible_high)


class _Evidence:
    __slots__ = ("n_exact", "sum_retx", "censored")

    def __init__(self) -> None:
        self.n_exact = 0
        self.sum_retx = 0
        self.censored: List[Tuple[int, int]] = []  # (retx_lo, retx_hi)


class BayesianLinkEstimator:
    """Beta-prior posterior inference over per-link frame loss."""

    def __init__(
        self,
        max_attempts: int,
        *,
        prior_alpha: float = 1.0,
        prior_beta: float = 4.0,
        truncation_correction: bool = True,
    ) -> None:
        """Default prior Beta(1, 4): mean loss 20%, weakly informative."""
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        check_positive(prior_alpha, "prior_alpha")
        check_positive(prior_beta, "prior_beta")
        self.max_attempts = max_attempts
        self.prior_alpha = prior_alpha
        self.prior_beta = prior_beta
        self.truncation_correction = truncation_correction
        self._evidence: Dict[Link, _Evidence] = defaultdict(_Evidence)

    # -- feeding ----------------------------------------------------------------

    def add_exact(self, link: Link, retx_count: int) -> None:
        if not 0 <= retx_count <= self.max_attempts - 1:
            raise ValueError(f"retx_count {retx_count} out of range")
        ev = self._evidence[link]
        ev.n_exact += 1
        ev.sum_retx += retx_count

    def add_censored(self, link: Link, retx_lo: int, retx_hi: int) -> None:
        if not 0 <= retx_lo <= retx_hi <= self.max_attempts - 1:
            raise ValueError(f"censored bounds [{retx_lo}, {retx_hi}] invalid")
        self._evidence[link].censored.append((retx_lo, retx_hi))

    def add_decoded(self, decoded: DecodedAnnotation, time: float = 0.0) -> None:
        """Feed every hop of a decoded annotation.

        Censored bounds are clamped into range (matching
        :meth:`PerLinkEstimator.add_hops`) so one out-of-range hop cannot
        raise mid-feed and drop the rest of the annotation's hops.
        """
        for hop in decoded.hops:
            if hop.exact:
                self.add_exact(hop.link, hop.exact_count())
            else:
                lo, hi = hop.retx_bounds
                hi = max(0, min(hi, self.max_attempts - 1))
                lo = max(0, min(lo, hi))
                self.add_censored(hop.link, lo, hi)

    # -- posterior ----------------------------------------------------------------

    def _needs_grid(self, ev: _Evidence) -> bool:
        return bool(ev.censored) or self.truncation_correction

    def _log_posterior_grid(self, ev: _Evidence) -> np.ndarray:
        p = _GRID
        log_post = (
            (self.prior_alpha - 1.0) * np.log(p)
            + (self.prior_beta - 1.0) * np.log1p(-p)
        )
        # Exact evidence: sum over samples of log((1-p) p^retx).
        log_post += ev.n_exact * np.log1p(-p) + ev.sum_retx * np.log(p)
        # Censored evidence: P(lo <= retx <= hi) = p^lo - p^(hi+1).
        for lo, hi in ev.censored:
            log_post += np.log(np.maximum(p**lo - p ** (hi + 1), 1e-300))
        if self.truncation_correction:
            n = ev.n_exact + len(ev.censored)
            log_post -= n * np.log(np.maximum(1.0 - p**self.max_attempts, 1e-300))
        return log_post

    def estimate(
        self, link: Link, *, credible_level: float = 0.95
    ) -> Optional[BayesianLinkEstimate]:
        """Posterior summary; None only if the link was never fed.

        (Unlike the MLE, a zero-sample link still has a prior — but
        reporting pure priors as measurements would be misleading, so the
        estimator requires at least one observation.)
        """
        ev = self._evidence.get(link)
        if ev is None or (ev.n_exact + len(ev.censored)) == 0:
            return None
        n = ev.n_exact + len(ev.censored)
        if not self._needs_grid(ev):
            # Conjugate: Beta(alpha + sum_retx, beta + n_exact).
            a = self.prior_alpha + ev.sum_retx
            b = self.prior_beta + ev.n_exact
            mean = a / (a + b)
            from scipy import stats

            tail = (1.0 - credible_level) / 2.0
            lo, hi = stats.beta.ppf([tail, 1.0 - tail], a, b)
            return BayesianLinkEstimate(link, float(mean), float(lo), float(hi), n)
        log_post = self._log_posterior_grid(ev)
        log_post -= log_post.max()
        weights = np.exp(log_post)
        weights /= weights.sum()
        mean = float(np.dot(weights, _GRID))
        cdf = np.cumsum(weights)
        tail = (1.0 - credible_level) / 2.0
        lo = float(_GRID[int(np.searchsorted(cdf, tail))])
        hi = float(_GRID[min(len(_GRID) - 1, int(np.searchsorted(cdf, 1.0 - tail)))])
        return BayesianLinkEstimate(link, mean, lo, hi, n)

    def estimates(self, *, credible_level: float = 0.95) -> Dict[Link, BayesianLinkEstimate]:
        out: Dict[Link, BayesianLinkEstimate] = {}
        for link in sorted(self._evidence):
            est = self.estimate(link, credible_level=credible_level)
            if est is not None:
                out[link] = est
        return out

    def links(self) -> List[Link]:
        return sorted(self._evidence.keys())

    def n_samples(self, link: Link) -> int:
        ev = self._evidence.get(link)
        return 0 if ev is None else ev.n_exact + len(ev.censored)

    # -- empirical Bayes ---------------------------------------------------------------

    def fit_prior_empirical_bayes(self, *, min_samples: int = 30) -> Tuple[float, float]:
        """Re-fit the prior to the well-observed links (method of moments).

        Uses per-link posterior means of links with >= ``min_samples``
        observations under the current prior; matches a Beta to their mean
        and variance. Returns the new (alpha, beta) and installs them.
        """
        means = [
            est.posterior_mean
            for link, est in self.estimates().items()
            if est.n_samples >= min_samples
        ]
        if len(means) < 3:
            return (self.prior_alpha, self.prior_beta)
        m = float(np.mean(means))
        v = float(np.var(means))
        m = min(max(m, 1e-3), 1 - 1e-3)
        v = max(v, 1e-6)
        common = m * (1.0 - m) / v - 1.0
        if common <= 0:
            return (self.prior_alpha, self.prior_beta)
        alpha, beta = max(0.05, m * common), max(0.05, (1.0 - m) * common)
        # Cap prior strength so it informs but never drowns real evidence.
        strength = alpha + beta
        if strength > 20.0:
            alpha, beta = 20.0 * alpha / strength, 20.0 * beta / strength
        self.prior_alpha, self.prior_beta = alpha, beta
        return (alpha, beta)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BayesianLinkEstimator(prior=Beta({self.prior_alpha:.2f},"
            f" {self.prior_beta:.2f}), links={len(self._evidence)})"
        )
