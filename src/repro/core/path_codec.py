"""Compressed path encoding (extension).

Explicit per-hop node ids cost ``ceil(log2 N)`` bits each — the dominant
annotation cost on large networks (7 bits/hop at 100 nodes). But the
sink knows the deployment's connectivity (topologies are surveyed, and
neighbor sets change far more slowly than parents), and a forwarding
choice is *very* predictable: packets overwhelmingly go to a neighbor
closer to the sink, usually the same one.

This codec therefore encodes, per hop, the receiver's **rank** in a
canonical ordering of the sender's neighbors — sorted sinkward
(hop-distance to sink, then node id) — as one more arithmetic-coded
symbol in the annotation stream, under a shared geometric-over-rank
model. Typical cost: 1–2 bits per hop regardless of network size. The
decoder reconstructs the path progressively: knowing the current node,
a decoded rank identifies the next one.

This mirrors the path-reconstruction line of work (iPath, PathZip) the
same research group produced, recast into Dophy's annotation stream.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.coding.freq import FrequencyTable
from repro.net.topology import Topology
from repro.utils.validation import check_in_range

__all__ = ["PathRankModel"]


class PathRankModel:
    """Canonical neighbor rankings plus a shared rank-symbol model."""

    def __init__(self, topology: Topology, *, rank_decay: float = 0.35,
                 precision: int = 4096) -> None:
        """``rank_decay`` is the geometric prior's ratio: P(rank k) ∝ decay^k.

        A small decay says "almost always the best sinkward neighbor".
        """
        check_in_range(rank_decay, "rank_decay", 0.0, 1.0, inclusive=(False, False))
        self.topology = topology
        self._order: Dict[int, List[int]] = {}
        self._rank: Dict[Tuple[int, int], int] = {}
        for node in topology.nodes:
            ordered = sorted(
                topology.neighbors(node),
                key=lambda v: (topology.hops_to_sink(v), v),
            )
            self._order[node] = ordered
            for k, v in enumerate(ordered):
                self._rank[(node, v)] = k
        self.max_degree = max(len(v) for v in self._order.values())
        probs = [rank_decay**k for k in range(self.max_degree)]
        self.table = FrequencyTable.from_probabilities(probs, precision=precision)

    @property
    def num_symbols(self) -> int:
        return self.max_degree

    def rank(self, sender: int, receiver: int) -> int:
        """The rank symbol for the hop sender -> receiver."""
        try:
            return self._rank[(sender, receiver)]
        except KeyError:
            raise ValueError(
                f"{receiver} is not a neighbor of {sender}"
            ) from None

    def neighbor_at(self, sender: int, rank: int) -> int:
        """Invert :meth:`rank`."""
        ordered = self._order.get(sender)
        if ordered is None:
            raise ValueError(f"unknown node {sender}")
        if not 0 <= rank < len(ordered):
            raise ValueError(
                f"rank {rank} out of range for node {sender} (degree {len(ordered)})"
            )
        return ordered[rank]

    def expected_bits_per_hop(self, empirical_ranks: List[int]) -> float:
        """Cross-entropy cost of this model on observed rank choices."""
        if not empirical_ranks:
            return 0.0
        counts = [0] * self.max_degree
        for r in empirical_ranks:
            counts[r] += 1
        total = sum(counts)
        return self.table.expected_code_length([c / total for c in counts])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PathRankModel(nodes={self.topology.num_nodes},"
            f" max_degree={self.max_degree})"
        )
