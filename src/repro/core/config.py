"""Dophy configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.utils.validation import check_probability

__all__ = ["DophyConfig"]


@dataclass(frozen=True)
class DophyConfig:
    """All tunables of the Dophy protocol.

    The defaults reflect the paper's design points: a small aggregated
    symbol set (K=3), exact escape values in a gamma extension, explicit
    path recording, and minute-scale model updates.
    """

    #: Largest retransmission count a hop can report — set this to the
    #: MAC's ``max_retries`` (counts beyond it cannot occur).
    max_count: int = 30
    #: Aggregation threshold K; None disables aggregation (full alphabet).
    aggregation_threshold: Optional[int] = 3
    #: Re-select K automatically at every model update, minimizing expected
    #: annotation + dissemination bits (the paper's "intelligently reduces
    #: the size of symbol set"); ``aggregation_threshold`` then only seeds
    #: epoch 0. Requires model updates to be enabled.
    auto_aggregation: bool = False
    #: ``"exact"`` ships escaped counts in a gamma extension;
    #: ``"censored"`` drops them (estimator then sees "count >= K").
    escape_mode: str = "exact"
    #: Seconds between sink model re-estimations; None = static model.
    model_update_period: Optional[float] = 60.0
    #: Number of link-quality classes with their own probability tables
    #: (1 = the paper's single shared model; >1 enables the class-context
    #: extension — sharper models at extra dissemination cost).
    link_classes: int = 1
    #: Seconds a published model takes to reach the encoders (flood
    #: propagation latency); 0 = instantaneous dissemination.
    dissemination_delay: float = 0.0
    #: Per-node probability that one dissemination broadcast round fails
    #: to deliver the new model to that node. 0 keeps the idealized
    #: lossless dissemination (bit-identical to the historical behaviour);
    #: > 0 switches to per-node epoch tracking with re-broadcast repair.
    dissemination_loss: float = 0.0
    #: Maximum repair re-broadcast rounds per published epoch (stragglers
    #: not reached within the budget stay on their old epoch until the
    #: next update — absorbed by the sink's ``epoch_history`` window).
    dissemination_retries: int = 2
    #: Delay before the first repair round, seconds; subsequent rounds
    #: back off exponentially (doubling), capped below.
    dissemination_backoff: float = 2.0
    #: Upper bound on the repair backoff delay, seconds.
    dissemination_backoff_cap: float = 60.0
    #: Nodes whose control-plane receive path is broken: they never get
    #: model updates and stay pinned to the last epoch they received
    #: (epoch 0 forever). Deterministic stragglers for fault testing.
    dissemination_blocked_nodes: Tuple[int, ...] = ()
    #: Window of decoded history each re-estimation uses (None = update period).
    estimation_window: Optional[float] = None
    #: Prior mean link loss used to build the initial (epoch-0) model.
    initial_expected_loss: float = 0.2
    #: ``"explicit"`` records per-hop node ids in the annotation;
    #: ``"compressed"`` encodes each hop as the receiver's rank among the
    #: sender's neighbors, arithmetic-coded in-stream (the sink must know
    #: the deployment topology — see :mod:`repro.core.path_codec`);
    #: ``"assumed"`` assumes the sink learns paths out of band (costs 0
    #: bits) — used to isolate count-encoding overhead in comparisons.
    path_encoding: str = "explicit"
    #: Geometric ratio of the compressed-path rank prior (smaller = more
    #: mass on the best sinkward neighbor).
    path_rank_decay: float = 0.35
    #: Quantization budget for disseminated frequency tables.
    table_precision: int = 4096
    #: How many recent model epochs the sink retains for late packets.
    epoch_history: int = 4
    #: Bits per quantized frequency in a disseminated table.
    bits_per_frequency: int = 12

    def __post_init__(self) -> None:
        if self.max_count < 0:
            raise ValueError("max_count must be >= 0")
        if self.aggregation_threshold is not None and not (
            1 <= self.aggregation_threshold <= self.max_count
        ):
            raise ValueError("aggregation_threshold must be in [1, max_count] or None")
        if self.escape_mode not in ("exact", "censored"):
            raise ValueError("escape_mode must be 'exact' or 'censored'")
        if self.path_encoding not in ("explicit", "compressed", "assumed"):
            raise ValueError(
                "path_encoding must be 'explicit', 'compressed' or 'assumed'"
            )
        if not 0.0 < self.path_rank_decay < 1.0:
            raise ValueError("path_rank_decay must be in (0, 1)")
        if self.link_classes < 1:
            raise ValueError("link_classes must be >= 1")
        if self.dissemination_delay < 0:
            raise ValueError("dissemination_delay must be >= 0")
        check_probability(self.dissemination_loss, "dissemination_loss")
        if self.dissemination_retries < 0:
            raise ValueError("dissemination_retries must be >= 0")
        if self.dissemination_backoff <= 0:
            raise ValueError("dissemination_backoff must be > 0")
        if self.dissemination_backoff_cap < self.dissemination_backoff:
            raise ValueError(
                "dissemination_backoff_cap must be >= dissemination_backoff"
            )
        if self.auto_aggregation and self.model_update_period is None:
            raise ValueError("auto_aggregation requires model updates")
        if self.auto_aggregation and self.aggregation_threshold is None:
            raise ValueError(
                "auto_aggregation needs an initial aggregation_threshold"
            )
        if self.model_update_period is not None and self.model_update_period <= 0:
            raise ValueError("model_update_period must be > 0 or None")
        check_probability(self.initial_expected_loss, "initial_expected_loss")

    @property
    def lossy_dissemination(self) -> bool:
        """True when per-node epoch tracking (lossy broadcast rounds) is on."""
        return self.dissemination_loss > 0 or bool(self.dissemination_blocked_nodes)

    @staticmethod
    def node_id_bits(num_nodes: int) -> int:
        """Width of an explicit path entry for an ``num_nodes``-node network."""
        if num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        return max(1, math.ceil(math.log2(num_nodes)))
