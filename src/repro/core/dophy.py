"""DophySystem — the full protocol as a simulation observer.

Wires the annotation codec, model manager and estimator into a
:class:`~repro.net.simulation.CollectionSimulation`:

* packet created  → attach a fresh annotation pinned to the current epoch;
* hop delivered   → the receiver appends (node id, retx symbol);
* packet at sink  → serialize → decode the real bits → feed the per-link
  estimator and the model re-estimation stream;
* on a schedule   → the sink publishes a new probability model
  (dissemination bits are charged to the control plane).

Model dissemination is idealized as instantaneous (every node encodes
against the epoch pinned in the packet header, and the sink retains a
window of recent epochs, so decode never desynchronizes); its *cost* is
fully accounted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.annotation import AnnotationCodec, DophyAnnotation
from repro.core.config import DophyConfig
from repro.core.decoder import AnnotationDecodeError, decode_annotation
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.core.model import ModelManager
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, NullObserver

__all__ = ["DophySystem", "DophyReport"]


@dataclass
class DophyReport:
    """Summary of what Dophy measured and what it cost."""

    estimates: Dict[Tuple[int, int], LinkEstimate]
    packets_decoded: int
    decode_failures: int
    #: Wire bits of every delivered annotation.
    annotation_bits: List[int] = field(default_factory=list)
    #: Hop counts of every delivered annotation (for bits-per-hop).
    annotation_hops: List[int] = field(default_factory=list)
    dissemination_bits: int = 0
    model_updates: int = 0

    @property
    def total_annotation_bits(self) -> int:
        return sum(self.annotation_bits)

    @property
    def mean_annotation_bits(self) -> float:
        if not self.annotation_bits:
            return 0.0
        return sum(self.annotation_bits) / len(self.annotation_bits)

    @property
    def mean_bits_per_hop(self) -> float:
        hops = sum(self.annotation_hops)
        if hops == 0:
            return 0.0
        return sum(self.annotation_bits) / hops

    @property
    def total_overhead_bits(self) -> int:
        """Annotations + control plane — the paper's overall overhead metric."""
        return self.total_annotation_bits + self.dissemination_bits


class DophySystem(NullObserver):
    """Dophy wired into the collection simulation."""

    def __init__(self, config: Optional[DophyConfig] = None):
        self.config = config or DophyConfig()
        # Populated on attach (needs topology/MAC facts).
        self._codec: Optional[AnnotationCodec] = None
        self._models: Optional[ModelManager] = None
        self._estimator: Optional[PerLinkEstimator] = None
        self._sink: Optional[int] = None
        # Per-packet in-flight annotations, keyed by (origin, seqno). Kept
        # internal (not on Packet.annotation) so multiple measurement
        # observers can share one run without clobbering each other.
        self._inflight: Dict[Tuple[int, int], DophyAnnotation] = {}
        self._annotation_bits: List[int] = []
        self._annotation_hops: List[int] = []
        self._packets_decoded = 0
        self._decode_failures = 0
        self._attached = False
        #: Callbacks fn(decoded, time) invoked for every decoded annotation —
        #: e.g. a SlidingLinkEstimator's add_decoded for drift tracking.
        self._decode_listeners: List = []

    def add_decode_listener(self, listener) -> None:
        """Register ``fn(decoded: DecodedAnnotation, time: float)``."""
        if not callable(listener):
            raise TypeError("listener must be callable")
        self._decode_listeners.append(listener)

    # -- simulation lifecycle -----------------------------------------------------

    def attach(self, simulation: CollectionSimulation) -> None:
        cfg = self.config
        mac_max_retries = simulation.config.mac.max_retries
        if cfg.max_count != mac_max_retries:
            # Re-derive the symbol alphabet from the actual MAC cap so every
            # possible count is encodable and none are wasted.
            k = cfg.aggregation_threshold
            if k is not None:
                k = min(k, mac_max_retries) if mac_max_retries >= 1 else None
            cfg = DophyConfig(
                max_count=max(mac_max_retries, 0),
                aggregation_threshold=k,
                auto_aggregation=cfg.auto_aggregation,
                escape_mode=cfg.escape_mode,
                model_update_period=cfg.model_update_period,
                estimation_window=cfg.estimation_window,
                initial_expected_loss=cfg.initial_expected_loss,
                path_encoding=cfg.path_encoding,
                path_rank_decay=cfg.path_rank_decay,
                table_precision=cfg.table_precision,
                epoch_history=cfg.epoch_history,
                bits_per_frequency=cfg.bits_per_frequency,
                link_classes=cfg.link_classes,
                dissemination_delay=cfg.dissemination_delay,
            )
            self.config = cfg
        symbol_set = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
        self._models = ModelManager(
            symbol_set,
            initial_expected_loss=cfg.initial_expected_loss,
            update_period=cfg.model_update_period,
            estimation_window=cfg.estimation_window,
            table_precision=cfg.table_precision,
            epoch_history=cfg.epoch_history,
            num_nodes_for_dissemination=simulation.topology.num_nodes,
            bits_per_frequency=cfg.bits_per_frequency,
            num_classes=cfg.link_classes,
            activation_delay=cfg.dissemination_delay,
            auto_aggregation=cfg.auto_aggregation,
        )
        path_model = (
            PathRankModel(simulation.topology, rank_decay=cfg.path_rank_decay)
            if cfg.path_encoding == "compressed"
            else None
        )
        self._codec = AnnotationCodec(
            cfg, self._models, simulation.topology.num_nodes, path_model
        )
        self._estimator = PerLinkEstimator(max_attempts=cfg.max_count + 1)
        self._sink = simulation.topology.sink
        self._attached = True
        if cfg.model_update_period is not None:
            simulation.sim.every(
                cfg.model_update_period,
                lambda: self._models.maybe_update(simulation.sim.now),
            )

    # -- packet lifecycle --------------------------------------------------------------

    def on_packet_created(self, packet: Packet, time: float) -> None:
        self._inflight[packet.key] = self._codec.new_annotation(time)

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:
        annotation = self._inflight[packet.key]
        self._codec.annotate_hop(annotation, sender, receiver, first_attempt - 1)

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        self._inflight.pop(packet.key, None)

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        annotation = self._inflight.pop(packet.key)
        data, bit_length = self._codec.serialize(annotation)
        assumed_path = (
            packet.path if self.config.path_encoding == "assumed" else None
        )
        try:
            decoded = decode_annotation(
                data,
                bit_length,
                self._codec,
                origin=packet.origin,
                sink=self._sink,
                assumed_path=assumed_path,
            )
        except AnnotationDecodeError:
            self._decode_failures += 1
            return
        self._packets_decoded += 1
        self._annotation_bits.append(decoded.wire_bits)
        self._annotation_hops.append(len(decoded.hops))
        self._estimator.add_decoded(decoded, time)
        # Feed raw counts (escape lower bounds when censored) so model
        # re-estimation — and auto-K selection — see the count histogram.
        self._models.observe_hops(
            [
                (hop.link, hop.retx_count if hop.exact else hop.retx_bounds[0])
                for hop in decoded.hops
            ],
            time,
        )
        for listener in self._decode_listeners:
            listener(decoded, time)

    def control_overhead_bits(self) -> int:
        if self._models is None:
            return 0
        return self._models.total_dissemination_bits

    # -- results -------------------------------------------------------------------------

    @property
    def estimator(self) -> PerLinkEstimator:
        if self._estimator is None:
            raise RuntimeError("DophySystem not attached yet")
        return self._estimator

    @property
    def models(self) -> ModelManager:
        if self._models is None:
            raise RuntimeError("DophySystem not attached yet")
        return self._models

    def report(self) -> DophyReport:
        """Summarize estimates and overhead after a run."""
        if self._estimator is None or self._models is None:
            raise RuntimeError("DophySystem not attached yet")
        return DophyReport(
            estimates=self._estimator.estimates(),
            packets_decoded=self._packets_decoded,
            decode_failures=self._decode_failures,
            annotation_bits=list(self._annotation_bits),
            annotation_hops=list(self._annotation_hops),
            dissemination_bits=self._models.total_dissemination_bits,
            model_updates=self._models.updates_performed,
        )
