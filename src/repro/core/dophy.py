"""DophySystem — the full protocol as a simulation observer.

Wires the annotation codec, model manager and estimator into a
:class:`~repro.net.simulation.CollectionSimulation`:

* packet created  → attach a fresh annotation pinned to the current epoch;
* hop delivered   → the receiver appends (node id, retx symbol);
* packet at sink  → serialize → decode the real bits → feed the per-link
  estimator and the model re-estimation stream;
* on a schedule   → the sink publishes a new probability model
  (dissemination bits are charged to the control plane).

Model dissemination has two modes. By default it is idealized: a
published model reaches every node after the global
``dissemination_delay``, losslessly, charged as one flood. With
``dissemination_loss > 0`` (or blocked nodes) it becomes **lossy
broadcast rounds**: each round reaches every straggler independently
with probability ``1 - loss``, repair rounds re-broadcast under capped
exponential backoff, every round's bits are charged per actual receiver
set, and each node encodes against the epoch it *last received* — the
sink's epoch-history window absorbs moderately-stale packets, while
packets from nodes stuck beyond it fail to decode as ``unknown_epoch``.

The sink degrades gracefully under faults: decode failures are counted
per cause (see :mod:`repro.core.decoder`), a :class:`~repro.net.faults.FaultPlan`
can corrupt/truncate/duplicate deliveries or take the sink down, and the
hop prefix decoded before a failure is salvaged into the estimator when
it passes a topology path-consistency check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.annotation import AnnotationCodec, DophyAnnotation
from repro.core.config import DophyConfig
from repro.core.decoder import (
    DECODE_FAILURE_CAUSES,
    AnnotationDecodeError,
    DecodedAnnotation,
    decode_annotation,
)
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.core.model import ModelManager
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet
from repro.net.faults import FaultPlan
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, NullObserver

__all__ = ["DophySystem", "DophyReport", "DecodeListener"]

#: Callback invoked for every decoded annotation: ``fn(decoded, sim_time)``.
DecodeListener = Callable[[DecodedAnnotation, float], None]


@dataclass
class DophyReport:
    """Summary of what Dophy measured and what it cost."""

    estimates: Dict[Tuple[int, int], LinkEstimate]
    packets_decoded: int
    decode_failures: int
    #: Wire bits of every delivered annotation.
    annotation_bits: List[int] = field(default_factory=list)
    #: Hop counts of every delivered annotation (for bits-per-hop).
    annotation_hops: List[int] = field(default_factory=list)
    dissemination_bits: int = 0
    model_updates: int = 0
    #: Decode failures attributed by cause (always all four causes).
    decode_failure_causes: Dict[str, int] = field(default_factory=dict)
    #: Deliveries discarded because the sink was inside an outage window.
    sink_outage_discards: int = 0
    #: Repeat deliveries of an already-processed packet (tolerated, counted).
    duplicate_deliveries: int = 0
    #: Hop events for packets with no in-flight annotation (pre-attach etc.).
    orphan_hop_events: int = 0
    #: Failed decodes whose clean hop prefix passed the consistency check.
    salvaged_packets: int = 0
    salvaged_hops: int = 0
    #: Lossy-dissemination activity (0 in idealized mode).
    dissemination_rounds: int = 0
    repair_rounds: int = 0
    #: Nodes still behind the newest epoch when the run ended.
    stale_nodes: int = 0

    @property
    def total_annotation_bits(self) -> int:
        return sum(self.annotation_bits)

    @property
    def mean_annotation_bits(self) -> float:
        if not self.annotation_bits:
            return 0.0
        return sum(self.annotation_bits) / len(self.annotation_bits)

    @property
    def mean_bits_per_hop(self) -> float:
        hops = sum(self.annotation_hops)
        if hops == 0:
            return 0.0
        return sum(self.annotation_bits) / hops

    @property
    def total_overhead_bits(self) -> int:
        """Annotations + control plane — the paper's overall overhead metric."""
        return self.total_annotation_bits + self.dissemination_bits

    @property
    def attributed_failures(self) -> int:
        """Per-cause counters plus outage discards; equals ``decode_failures``."""
        return sum(self.decode_failure_causes.values()) + self.sink_outage_discards


class DophySystem(NullObserver):
    """Dophy wired into the collection simulation."""

    def __init__(
        self,
        config: Optional[DophyConfig] = None,
        *,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config or DophyConfig()
        self._faults = faults
        # Populated on attach (needs topology/MAC facts).
        self._codec: Optional[AnnotationCodec] = None
        self._models: Optional[ModelManager] = None
        self._estimator: Optional[PerLinkEstimator] = None
        self._sink: Optional[int] = None
        # Per-packet in-flight annotations, keyed by (origin, seqno). Kept
        # internal (not on Packet.annotation) so multiple measurement
        # observers can share one run without clobbering each other.
        self._inflight: Dict[Tuple[int, int], DophyAnnotation] = {}
        self._annotation_bits: List[int] = []
        self._annotation_hops: List[int] = []
        self._packets_decoded = 0
        self._decode_failures = 0
        self._decode_failure_causes: Dict[str, int] = {
            cause: 0 for cause in DECODE_FAILURE_CAUSES
        }
        self._sink_outage_discards = 0
        self._duplicate_deliveries = 0
        self._orphan_hop_events = 0
        self._salvaged_packets = 0
        self._salvaged_hops = 0
        self._dissemination_rounds = 0
        self._repair_rounds = 0
        self._blocked: Set[int] = set()
        self._edges: Set[Tuple[int, int]] = set()
        self._attached = False
        #: Callbacks fn(decoded, time) invoked for every decoded annotation —
        #: e.g. a SlidingLinkEstimator's add_decoded for drift tracking.
        self._decode_listeners: List[DecodeListener] = []

    def add_decode_listener(self, listener: "DecodeListener") -> None:
        """Register ``fn(decoded: DecodedAnnotation, time: float)``."""
        if not callable(listener):
            raise TypeError("listener must be callable")
        self._decode_listeners.append(listener)

    # -- simulation lifecycle -----------------------------------------------------

    def attach(self, simulation: CollectionSimulation) -> None:
        cfg = self.config
        mac_max_retries = simulation.config.mac.max_retries
        if cfg.max_count != mac_max_retries:
            # Re-derive the symbol alphabet from the actual MAC cap so every
            # possible count is encodable and none are wasted. ``replace``
            # (not a field-by-field rebuild) so every other knob survives.
            k = cfg.aggregation_threshold
            if k is not None:
                k = min(k, mac_max_retries) if mac_max_retries >= 1 else None
            cfg = replace(
                cfg,
                max_count=max(mac_max_retries, 0),
                aggregation_threshold=k,
            )
            self.config = cfg
        symbol_set = SymbolSet(cfg.max_count, cfg.aggregation_threshold)
        self._models = ModelManager(
            symbol_set,
            initial_expected_loss=cfg.initial_expected_loss,
            update_period=cfg.model_update_period,
            estimation_window=cfg.estimation_window,
            table_precision=cfg.table_precision,
            epoch_history=cfg.epoch_history,
            num_nodes_for_dissemination=simulation.topology.num_nodes,
            bits_per_frequency=cfg.bits_per_frequency,
            num_classes=cfg.link_classes,
            activation_delay=cfg.dissemination_delay,
            auto_aggregation=cfg.auto_aggregation,
        )
        path_model = (
            PathRankModel(simulation.topology, rank_decay=cfg.path_rank_decay)
            if cfg.path_encoding == "compressed"
            else None
        )
        self._codec = AnnotationCodec(
            cfg, self._models, simulation.topology.num_nodes, path_model
        )
        self._estimator = PerLinkEstimator(max_attempts=cfg.max_count + 1)
        self._sink = simulation.topology.sink
        self._edges = set(simulation.topology.directed_edges())
        if cfg.lossy_dissemination:
            tracked = [n for n in simulation.topology.nodes if n != self._sink]
            self._models.enable_per_node_epochs(tracked)
            self._blocked = set(cfg.dissemination_blocked_nodes) & set(tracked)
        self._attached = True
        if cfg.model_update_period is not None:
            simulation.sim.every(
                cfg.model_update_period,
                lambda: self._model_update_tick(simulation),
            )

    def _model_update_tick(self, simulation: CollectionSimulation) -> None:
        published = self._models.maybe_update(simulation.sim.now)
        if published and self.config.lossy_dissemination:
            self._broadcast_round(simulation, self._models.current_epoch, 0)

    def _broadcast_round(
        self, simulation: CollectionSimulation, epoch: int, round_index: int
    ) -> None:
        """One (re-)broadcast of ``epoch``'s model to its stragglers."""
        cfg = self.config
        targets = self._models.nodes_behind(epoch)
        if not targets:
            return  # everyone converged; no repair needed
        # The sink does not know who missed previous rounds, so it pays
        # for every straggler it addresses — blocked receivers included.
        self._models.charge_broadcast(epoch, len(targets))
        if round_index == 0:
            self._dissemination_rounds += 1
        else:
            self._repair_rounds += 1
        eligible = [n for n in targets if n not in self._blocked]
        received = simulation.control_broadcast(eligible, cfg.dissemination_loss)
        for node in received:
            if cfg.dissemination_delay > 0:
                simulation.sim.after(
                    cfg.dissemination_delay,
                    lambda n=node: self._models.deliver_epoch(n, epoch),
                )
            else:
                self._models.deliver_epoch(node, epoch)
        if round_index < cfg.dissemination_retries:
            delay = min(
                cfg.dissemination_backoff * (2.0**round_index),
                cfg.dissemination_backoff_cap,
            )
            simulation.sim.after(
                delay,
                lambda: self._broadcast_round(simulation, epoch, round_index + 1),
            )

    # -- packet lifecycle --------------------------------------------------------------

    def on_packet_created(self, packet: Packet, time: float) -> None:
        self._inflight[packet.key] = self._codec.new_annotation(
            time, origin=packet.origin
        )

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:
        annotation = self._inflight.get(packet.key)
        if annotation is None:
            # Packet created before attach, or already consumed at the
            # sink (duplicate-path hop): count, never crash.
            self._orphan_hop_events += 1
            return
        self._codec.annotate_hop(annotation, sender, receiver, first_attempt - 1)

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        self._inflight.pop(packet.key, None)

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        annotation = self._inflight.pop(packet.key, None)
        if annotation is None:
            # Duplicate delivery (e.g. a lost-ACK copy) or a packet created
            # before attach: the evidence was already consumed once.
            self._duplicate_deliveries += 1
            return
        if self._faults is not None and self._faults.sink_down(time):
            self._sink_outage_discards += 1
            self._decode_failures += 1
            return
        data, bit_length = self._codec.serialize(annotation)
        if self._faults is not None:
            data, bit_length, _ = self._faults.corrupt_annotation(data, bit_length)
        assumed_path = (
            packet.path if self.config.path_encoding == "assumed" else None
        )
        try:
            decoded = decode_annotation(
                data,
                bit_length,
                self._codec,
                origin=packet.origin,
                sink=self._sink,
                assumed_path=assumed_path,
            )
        except AnnotationDecodeError as exc:
            self._decode_failures += 1
            self._decode_failure_causes[exc.cause] += 1
            self._try_salvage(exc, packet, time)
        else:
            self._packets_decoded += 1
            self._annotation_bits.append(decoded.wire_bits)
            self._annotation_hops.append(len(decoded.hops))
            self._estimator.add_decoded(decoded, time)
            # Feed raw counts (escape lower bounds when censored) so model
            # re-estimation — and auto-K selection — see the count histogram.
            self._models.observe_hops(
                [
                    (hop.link, hop.retx_count if hop.exact else hop.retx_bounds[0])
                    for hop in decoded.hops
                ],
                time,
            )
            for listener in self._decode_listeners:
                listener(decoded, time)
        if self._faults is not None and self._faults.draw_duplicate():
            # Replay the delivery: the annotation is consumed, so this
            # exercises (and counts under) the duplicate-tolerant path.
            self.on_packet_delivered(packet, time)

    def _try_salvage(
        self, exc: AnnotationDecodeError, packet: Packet, time: float
    ) -> None:
        """Feed the cleanly-decoded hop prefix of a failed decode to the
        estimator — only when its path is consistent with the topology."""
        hops = exc.partial_hops
        path = exc.partial_path
        if not hops or len(path) != len(hops) + 1:
            return
        if path[0] != packet.origin:
            return
        for u, v in zip(path, path[1:]):
            if (u, v) not in self._edges:
                return
        self._estimator.add_hops(hops, time)
        self._salvaged_packets += 1
        self._salvaged_hops += len(hops)

    def control_overhead_bits(self) -> int:
        if self._models is None:
            return 0
        return self._models.total_dissemination_bits

    # -- results -------------------------------------------------------------------------

    @property
    def estimator(self) -> PerLinkEstimator:
        if self._estimator is None:
            raise RuntimeError("DophySystem not attached yet")
        return self._estimator

    @property
    def models(self) -> ModelManager:
        if self._models is None:
            raise RuntimeError("DophySystem not attached yet")
        return self._models

    def report(self) -> DophyReport:
        """Summarize estimates and overhead after a run."""
        if self._estimator is None or self._models is None:
            raise RuntimeError("DophySystem not attached yet")
        stale = (
            len(self._models.nodes_behind(self._models.current_epoch))
            if self._models.per_node_epochs
            else 0
        )
        return DophyReport(
            estimates=self._estimator.estimates(),
            packets_decoded=self._packets_decoded,
            decode_failures=self._decode_failures,
            annotation_bits=list(self._annotation_bits),
            annotation_hops=list(self._annotation_hops),
            dissemination_bits=self._models.total_dissemination_bits,
            model_updates=self._models.updates_performed,
            decode_failure_causes=dict(self._decode_failure_causes),
            sink_outage_discards=self._sink_outage_discards,
            duplicate_deliveries=self._duplicate_deliveries,
            orphan_hop_events=self._orphan_hop_events,
            salvaged_packets=self._salvaged_packets,
            salvaged_hops=self._salvaged_hops,
            dissemination_rounds=self._dissemination_rounds,
            repair_rounds=self._repair_rounds,
            stale_nodes=stale,
        )
