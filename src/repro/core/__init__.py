"""Dophy: fine-grained loss tomography for dynamic sensor networks.

The paper's contribution, built on :mod:`repro.coding` and plugged into
:mod:`repro.net` as a :class:`~repro.net.simulation.CollectionObserver`:

* :mod:`repro.core.symbols` — the aggregated retransmission-count symbol
  set (counts >= K collapse into one escape symbol);
* :mod:`repro.core.model` — per-epoch probability models, periodically
  re-estimated by the sink and disseminated to the network;
* :mod:`repro.core.annotation` — the in-packet annotation: incremental
  arithmetic codeword + escape extension + path section;
* :mod:`repro.core.decoder` — sink-side annotation decoding;
* :mod:`repro.core.estimator` — per-link loss MLE from (truncated,
  possibly censored) geometric retransmission-count samples;
* :mod:`repro.core.dophy` — :class:`DophySystem`, wiring it all together.
"""

from repro.core.annotation import AnnotationCodec, DophyAnnotation
from repro.core.autotune import aggregation_cost_bits_per_hop, choose_aggregation_threshold
from repro.core.bayes import BayesianLinkEstimate, BayesianLinkEstimator
from repro.core.config import DophyConfig
from repro.core.decoder import (
    DECODE_FAILURE_CAUSES,
    AnnotationDecodeError,
    DecodedAnnotation,
    decode_annotation,
)
from repro.core.dophy import DophyReport, DophySystem
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.core.huffman_variant import HuffmanDophyVariant, HuffmanVariantReport
from repro.core.model import ModelManager, geometric_symbol_probabilities
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet
from repro.core.windowed import SlidingLinkEstimator

__all__ = [
    "SymbolSet",
    "ModelManager",
    "geometric_symbol_probabilities",
    "DophyAnnotation",
    "AnnotationCodec",
    "DecodedAnnotation",
    "AnnotationDecodeError",
    "DECODE_FAILURE_CAUSES",
    "decode_annotation",
    "LinkEstimate",
    "PerLinkEstimator",
    "PathRankModel",
    "SlidingLinkEstimator",
    "BayesianLinkEstimate",
    "BayesianLinkEstimator",
    "DophyConfig",
    "DophySystem",
    "DophyReport",
    "HuffmanDophyVariant",
    "HuffmanVariantReport",
    "aggregation_cost_bits_per_hop",
    "choose_aggregation_threshold",
]
