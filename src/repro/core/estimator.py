"""Per-link loss estimation from retransmission-count evidence.

On a link with frame-loss probability ``p``, the attempt index of the
first successfully received frame is geometric with success ``1 - p``.
Two corrections make the estimate honest:

* **truncation** — the MAC aborts after ``A = max_retries + 1`` attempts,
  and hops that abort never deliver their annotation; observations are
  therefore draws of ``X | X <= A``;
* **censoring** — in Dophy's censored escape mode, counts ``>= K`` arrive
  only as the interval "between K and A-1 retransmissions".

:class:`PerLinkEstimator` maximizes the exact likelihood under both
(numerically, per link), and also exposes the naive moment estimator
``1 - n / sum(attempts)`` used by the estimator-ablation benchmark.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from scipy import optimize

from repro.core.decoder import DecodedAnnotation, DecodedHop

__all__ = ["LinkEstimate", "PerLinkEstimator"]

_P_LO = 1e-6
_P_HI = 1.0 - 1e-6


@dataclass(frozen=True)
class LinkEstimate:
    """Point estimate of one directed link's loss ratio."""

    link: Tuple[int, int]
    loss: float
    #: Standard error from observed Fisher information (None if degenerate).
    stderr: Optional[float]
    n_exact: int
    n_censored: int

    @property
    def n_samples(self) -> int:
        return self.n_exact + self.n_censored

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI clipped to [0, 1]."""
        if self.stderr is None:
            return (0.0, 1.0)
        return (
            max(0.0, self.loss - z * self.stderr),
            min(1.0, self.loss + z * self.stderr),
        )


class _LinkData:
    """Evidence accumulated for one directed link."""

    __slots__ = ("exact_attempts", "censored", "times")

    def __init__(self) -> None:
        #: Histogram attempt-index -> count (1-based attempts).
        self.exact_attempts: Dict[int, int] = defaultdict(int)
        #: List of (lo_attempt, hi_attempt) inclusive censored intervals.
        self.censored: List[Tuple[int, int]] = []
        #: Observation times (for diagnostics / windowing by re-building).
        self.times: List[float] = []

    @property
    def n_exact(self) -> int:
        return sum(self.exact_attempts.values())

    @property
    def n_censored(self) -> int:
        return len(self.censored)


class PerLinkEstimator:
    """Accumulates per-link evidence and produces loss MLEs."""

    def __init__(self, max_attempts: int, *, truncation_correction: bool = True) -> None:
        """``max_attempts`` = MAC retry cap + 1 (the truncation point A).

        ``truncation_correction=False`` drops the ``X <= A`` conditioning
        from the likelihood (the biased variant, kept for the ablation).
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.truncation_correction = truncation_correction
        self._data: Dict[Tuple[int, int], _LinkData] = defaultdict(_LinkData)

    # -- feeding evidence -----------------------------------------------------------

    def add_exact(
        self, link: Tuple[int, int], retx_count: int, time: float = 0.0
    ) -> None:
        """Record an exact observation of ``retx_count`` retransmissions."""
        attempt = retx_count + 1
        if not 1 <= attempt <= self.max_attempts:
            raise ValueError(
                f"attempt {attempt} outside [1, {self.max_attempts}]"
            )
        d = self._data[link]
        d.exact_attempts[attempt] += 1
        d.times.append(time)

    def add_censored(
        self,
        link: Tuple[int, int],
        retx_lo: int,
        retx_hi: int,
        time: float = 0.0,
    ) -> None:
        """Record that the count was in [retx_lo, retx_hi] (inclusive)."""
        lo, hi = retx_lo + 1, retx_hi + 1
        if not 1 <= lo <= hi <= self.max_attempts:
            raise ValueError(f"censored attempts [{lo}, {hi}] invalid")
        d = self._data[link]
        d.censored.append((lo, hi))
        d.times.append(time)

    def add_hops(self, hops: Sequence[DecodedHop], time: float = 0.0) -> None:
        """Feed a sequence of decoded hops (a full annotation's, or the
        consistency-checked prefix salvaged from a failed decode)."""
        for hop in hops:
            if hop.exact:
                self.add_exact(hop.link, hop.exact_count(), time)
            else:
                lo, hi = hop.retx_bounds
                self.add_censored(hop.link, lo, min(hi, self.max_attempts - 1), time)

    def add_decoded(self, decoded: DecodedAnnotation, time: float = 0.0) -> None:
        """Feed every hop of a decoded annotation."""
        self.add_hops(decoded.hops, time)

    # -- likelihood -------------------------------------------------------------------

    def _neg_log_likelihood(self, p: float, data: _LinkData) -> float:
        """Negative log-likelihood of loss ``p`` for one link's evidence."""
        q = 1.0 - p
        A = self.max_attempts
        log_p = math.log(p)
        log_q = math.log(q)
        ll = 0.0
        for attempt, count in data.exact_attempts.items():
            ll += count * (log_q + (attempt - 1) * log_p)
        for lo, hi in data.censored:
            # P(lo <= X <= hi) = p^(lo-1) - p^hi
            mass = p ** (lo - 1) - p**hi
            ll += math.log(max(mass, 1e-300))
        if self.truncation_correction:
            n = data.n_exact + data.n_censored
            ll -= n * math.log(max(1.0 - p**A, 1e-300))
        return -ll

    # -- estimation --------------------------------------------------------------------

    def links(self) -> List[Tuple[int, int]]:
        return sorted(self._data.keys())

    def n_samples(self, link: Tuple[int, int]) -> int:
        d = self._data.get(link)
        return 0 if d is None else d.n_exact + d.n_censored

    def estimate(self, link: Tuple[int, int]) -> Optional[LinkEstimate]:
        """MLE for one link; None if the link has no evidence."""
        data = self._data.get(link)
        if data is None or (data.n_exact + data.n_censored) == 0:
            return None
        # All-first-attempt evidence -> boundary MLE p=0 (handle explicitly).
        only_first = (
            not data.censored
            and set(data.exact_attempts.keys()) == {1}
        )
        if only_first:
            n = data.n_exact
            # Jeffreys-style shrinkage keeps the estimate off the boundary
            # and gives a meaningful "no losses in n trials" uncertainty.
            loss = 0.5 / (n + 1)
            stderr = math.sqrt(loss * (1 - loss) / n) if n > 0 else None
            return LinkEstimate(link, loss, stderr, n, 0)
        result = optimize.minimize_scalar(
            self._neg_log_likelihood,
            bounds=(_P_LO, _P_HI),
            args=(data,),
            method="bounded",
            options={"xatol": 1e-7},
        )
        p_hat = float(result.x)
        stderr = self._fisher_stderr(p_hat, data)
        return LinkEstimate(link, p_hat, stderr, data.n_exact, data.n_censored)

    def _fisher_stderr(self, p_hat: float, data: _LinkData) -> Optional[float]:
        """Standard error from a numeric second derivative at the MLE."""
        h = max(1e-6, 1e-4 * p_hat)
        lo, hi = p_hat - h, p_hat + h
        if lo <= _P_LO or hi >= _P_HI:
            return None
        f = self._neg_log_likelihood
        second = (f(hi, data) - 2.0 * f(p_hat, data) + f(lo, data)) / (h * h)
        if second <= 0 or not math.isfinite(second):
            return None
        return 1.0 / math.sqrt(second)

    def estimates(self) -> Dict[Tuple[int, int], LinkEstimate]:
        """MLEs for all links with evidence."""
        out: Dict[Tuple[int, int], LinkEstimate] = {}
        for link in self.links():
            est = self.estimate(link)
            if est is not None:
                out[link] = est
        return out

    def naive_estimate(self, link: Tuple[int, int]) -> Optional[float]:
        """Moment estimator ``1 - n / sum(attempts)`` ignoring truncation.

        Censored observations are counted at their lower bound — exactly
        the shortcut a naive implementation would take. Kept as the
        ablation baseline quantifying what the corrections buy.
        """
        data = self._data.get(link)
        if data is None:
            return None
        total_attempts = sum(a * c for a, c in data.exact_attempts.items())
        total_attempts += sum(lo for lo, _ in data.censored)
        n = data.n_exact + data.n_censored
        if n == 0 or total_attempts == 0:
            return None
        return max(0.0, 1.0 - n / total_attempts)

    def merge(self, other: "PerLinkEstimator") -> None:
        """Fold another estimator's evidence into this one (same A required)."""
        if other.max_attempts != self.max_attempts:
            raise ValueError("cannot merge estimators with different max_attempts")
        for link, data in other._data.items():
            mine = self._data[link]
            for attempt, count in data.exact_attempts.items():
                mine.exact_attempts[attempt] += count
            mine.censored.extend(data.censored)
            mine.times.extend(data.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(d.n_exact + d.n_censored for d in self._data.values())
        return f"PerLinkEstimator(links={len(self._data)}, samples={total})"
