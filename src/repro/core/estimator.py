"""Per-link loss estimation from retransmission-count evidence.

On a link with frame-loss probability ``p``, the attempt index of the
first successfully received frame is geometric with success ``1 - p``.
Two corrections make the estimate honest:

* **truncation** — the MAC aborts after ``A = max_retries + 1`` attempts,
  and hops that abort never deliver their annotation; observations are
  therefore draws of ``X | X <= A``;
* **censoring** — in Dophy's censored escape mode, counts ``>= K`` arrive
  only as the interval "between K and A-1 retransmissions".

The likelihood depends on the raw observations only through a small set
of sufficient statistics per link (:class:`SuffStats`): the number of
exact observations, their summed retransmission count, and a multiset of
censored attempt intervals. :class:`PerLinkEstimator` accumulates those
and :func:`solve_batch` maximizes the exact likelihood for **all links
at once** — closed form when neither censoring nor truncation applies,
otherwise a vectorized safeguarded Newton iteration on the scalar score
(falling back to bisection whenever a Newton step leaves the bracket).
The scipy-based per-link solve the batched path replaced is kept as
:meth:`PerLinkEstimator.estimate_scipy`, the reference oracle for the
differential tests and the perf bench.

The naive moment estimator ``1 - n / sum(attempts)`` used by the
estimator-ablation benchmark is also exposed.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from repro.core.decoder import DecodedAnnotation, DecodedHop

__all__ = ["LinkEstimate", "PerLinkEstimator", "SuffStats", "solve_batch"]

#: Version tag of the serialized estimator state (see ``state_dict``).
ESTIMATOR_STATE_SCHEMA = 1

Link = Tuple[int, int]

_P_LO = 1e-6
_P_HI = 1.0 - 1e-6
#: Floor for probability masses inside logs (keeps the scipy-era value).
_MASS_FLOOR = 1e-300
#: Iteration cap for the safeguarded Newton loop. The bisection fallback
#: halves the bracket every round, so this bounds the root location far
#: below float precision even if no Newton step is ever accepted.
_MAX_ITER = 90
#: Step-size convergence threshold (well inside the 1e-6 oracle band).
_X_TOL = 1e-12


@dataclass(frozen=True)
class LinkEstimate:
    """Point estimate of one directed link's loss ratio."""

    link: Tuple[int, int]
    loss: float
    #: Standard error from observed Fisher information (None if degenerate).
    stderr: Optional[float]
    n_exact: int
    n_censored: int

    @property
    def n_samples(self) -> int:
        return self.n_exact + self.n_censored

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation CI clipped to [0, 1]."""
        if self.stderr is None:
            return (0.0, 1.0)
        return (
            max(0.0, self.loss - z * self.stderr),
            min(1.0, self.loss + z * self.stderr),
        )


@dataclass(frozen=True)
class SuffStats:
    """Sufficient statistics of one link's evidence.

    The truncated/censored geometric likelihood factors through exactly
    these quantities: exact observations collapse to a count and a summed
    retransmission count; censored observations to a multiset of
    attempt-space intervals ``(lo, hi)`` (inclusive, 1-based attempts).
    """

    link: Link
    n_exact: int
    #: Sum of retransmission counts (``attempt - 1``) over exact obs.
    sum_retx: int
    #: Attempt-space interval -> observation count.
    censored: Mapping[Tuple[int, int], int]

    @property
    def n_censored(self) -> int:
        return sum(self.censored.values())

    @property
    def n_samples(self) -> int:
        return self.n_exact + self.n_censored


class _Batch:
    """Array-of-links view of sufficient statistics for vectorized math.

    Censored intervals are padded into an ``(n_links, width)`` matrix of
    per-interval counts; padding rows use the benign interval ``(1, 1)``
    with count zero so they contribute nothing to any sum.
    """

    def __init__(
        self,
        stats: Sequence[SuffStats],
        max_attempts: int,
        truncation_correction: bool,
    ) -> None:
        n = len(stats)
        self.A = float(max_attempts)
        self.trunc = truncation_correction
        self.n_exact = np.array([s.n_exact for s in stats], dtype=np.float64)
        self.sum_retx = np.array([s.sum_retx for s in stats], dtype=np.float64)
        n_cens = np.array([s.n_censored for s in stats], dtype=np.float64)
        self.n_total = self.n_exact + n_cens
        width = max((len(s.censored) for s in stats), default=0)
        self.cens_lo = np.ones((n, width))
        self.cens_hi = np.ones((n, width))
        self.cens_cnt = np.zeros((n, width))
        for i, s in enumerate(stats):
            for j, ((lo, hi), cnt) in enumerate(sorted(s.censored.items())):
                self.cens_lo[i, j] = lo
                self.cens_hi[i, j] = hi
                self.cens_cnt[i, j] = cnt

    # -- likelihood pieces ------------------------------------------------------------

    @staticmethod
    def _colsum(terms: np.ndarray) -> np.ndarray:
        """Left-to-right sum over the censored axis.

        ``np.sum`` reduces pairwise, and its grouping depends on the padded
        width — the same link could round differently in batches of
        different sizes. Sequential accumulation (each padding column adds
        an exact ``0.0``) keeps every link's value batch-independent.
        """
        out = np.zeros(terms.shape[0])
        for j in range(terms.shape[1]):
            out += terms[:, j]
        return out

    def nll(self, p: np.ndarray) -> np.ndarray:
        """Negative log-likelihood per link at the loss vector ``p``."""
        ll = self.n_exact * np.log(1.0 - p) + self.sum_retx * np.log(p)
        if self.cens_cnt.size:
            pc = p[:, None]
            mass = pc ** (self.cens_lo - 1.0) - pc**self.cens_hi
            ll = ll + self._colsum(
                self.cens_cnt * np.log(np.maximum(mass, _MASS_FLOOR))
            )
        if self.trunc:
            ll = ll - self.n_total * np.log(np.maximum(1.0 - p**self.A, _MASS_FLOOR))
        return -ll

    def score(self, p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-link (d/dp log-likelihood, d2/dp2 log-likelihood)."""
        q = 1.0 - p
        g = self.sum_retx / p - self.n_exact / q
        gp = -self.sum_retx / (p * p) - self.n_exact / (q * q)
        if self.cens_cnt.size:
            pc = p[:, None]
            lo1 = self.cens_lo - 1.0
            m = np.maximum(pc**lo1 - pc**self.cens_hi, _MASS_FLOOR)
            mp = lo1 * pc ** (lo1 - 1.0) - self.cens_hi * pc ** (self.cens_hi - 1.0)
            mpp = lo1 * (lo1 - 1.0) * pc ** (lo1 - 2.0) - self.cens_hi * (
                self.cens_hi - 1.0
            ) * pc ** (self.cens_hi - 2.0)
            r = mp / m
            g = g + self._colsum(self.cens_cnt * r)
            gp = gp + self._colsum(self.cens_cnt * (mpp / m - r * r))
        if self.trunc:
            pA = p**self.A
            denom = np.maximum(1.0 - pA, _MASS_FLOOR)
            g = g + self.n_total * self.A * p ** (self.A - 1.0) / denom
            gp = gp + self.n_total * self.A * (
                (self.A - 1.0) * p ** (self.A - 2.0) * denom
                + self.A * p ** (2.0 * self.A - 2.0)
            ) / (denom * denom)
        return g, gp

    # -- solving ----------------------------------------------------------------------

    def solve(self) -> np.ndarray:
        """Per-link MLE via safeguarded Newton with bisection fallback.

        Maintains a per-link bracket from the sign of the score (the
        likelihood is unimodal in p, the same assumption the scipy
        bounded minimizer made); a Newton step that leaves its bracket,
        or whose curvature is degenerate, is replaced by the midpoint.
        """
        n = self.n_exact.shape[0]
        if n == 0:
            return np.empty(0)
        lo = np.full(n, _P_LO)
        hi = np.full(n, _P_HI)
        g_lo, _ = self.score(lo)
        g_hi, _ = self.score(hi)
        at_lo = g_lo <= 0.0  # likelihood already decreasing at the left edge
        at_hi = ~at_lo & (g_hi >= 0.0)  # still increasing at the right edge
        # Moment-style initial guess: censored intervals counted at lo.
        attempts = (
            self.n_exact
            + self.sum_retx
            + self._colsum(self.cens_cnt * self.cens_lo)
        )
        p = 1.0 - self.n_total / np.maximum(attempts, 1.0)
        p = np.clip(p, 1e-3, 1.0 - 1e-3)
        # Links are frozen individually the moment their step converges:
        # every link's trajectory is elementwise and stop-rule independent
        # of its batch-mates, so estimate() == estimates() bitwise.
        active = np.ones(n, dtype=bool)
        for _ in range(_MAX_ITER):
            g, gp = self.score(p)
            above = g > 0.0  # root lies to the right of p
            lo = np.where(above, p, lo)
            hi = np.where(above, hi, p)
            with np.errstate(divide="ignore", invalid="ignore"):
                newton = p - g / gp
            ok = np.isfinite(newton) & (newton > lo) & (newton < hi)
            p_next = np.where(active, np.where(ok, newton, 0.5 * (lo + hi)), p)
            active = active & (np.abs(p_next - p) >= _X_TOL)
            p = p_next
            if not active.any():
                break
        p = np.where(at_lo, _P_LO, np.where(at_hi, _P_HI, p))
        return p

    def stderr(self, p: np.ndarray) -> np.ndarray:
        """Fisher standard errors (NaN where degenerate).

        Same numeric second difference (and the same degeneracy rules)
        as the scalar ``_fisher_stderr`` the scipy path used.
        """
        h = np.maximum(1e-6, 1e-4 * p)
        lo = p - h
        hi = p + h
        valid = (lo > _P_LO) & (hi < _P_HI)
        lo_c = np.clip(lo, _P_LO, _P_HI)
        hi_c = np.clip(hi, _P_LO, _P_HI)
        second = (self.nll(hi_c) - 2.0 * self.nll(p) + self.nll(lo_c)) / (h * h)
        with np.errstate(divide="ignore", invalid="ignore"):
            se = 1.0 / np.sqrt(second)
        good = valid & (second > 0.0) & np.isfinite(second) & np.isfinite(se)
        return np.where(good, se, np.nan)


def _jeffreys_estimate(s: SuffStats) -> LinkEstimate:
    """Boundary MLE for all-first-attempt evidence (p_hat = 0).

    Jeffreys-style shrinkage keeps the estimate off the boundary and
    gives a meaningful "no losses in n trials" uncertainty.
    """
    n = s.n_exact
    loss = 0.5 / (n + 1)
    stderr = math.sqrt(loss * (1 - loss) / n) if n > 0 else None
    return LinkEstimate(s.link, loss, stderr, n, 0)


def solve_batch(
    stats: Sequence[SuffStats],
    max_attempts: int,
    *,
    truncation_correction: bool = True,
) -> List[Optional[LinkEstimate]]:
    """MLE for many links in one vectorized solve.

    Returns one :class:`LinkEstimate` per input entry (None for entries
    with no evidence). Links whose evidence is all-first-attempt take the
    Jeffreys boundary estimate; uncensored links without truncation
    correction take the closed-form geometric MLE ``S / (n + S)``; the
    rest go through the safeguarded Newton batch.
    """
    out: List[Optional[LinkEstimate]] = [None] * len(stats)
    closed_idx: List[int] = []
    newton_idx: List[int] = []
    for i, s in enumerate(stats):
        if s.n_samples == 0:
            continue
        if s.n_censored == 0 and s.sum_retx == 0:
            out[i] = _jeffreys_estimate(s)
        elif s.n_censored == 0 and not truncation_correction:
            closed_idx.append(i)
        else:
            newton_idx.append(i)

    def fill(indices: List[int], p_hat: np.ndarray, batch: _Batch) -> None:
        errs = batch.stderr(p_hat)
        for k, i in enumerate(indices):
            s = stats[i]
            stderr = float(errs[k]) if math.isfinite(errs[k]) else None
            out[i] = LinkEstimate(
                s.link, float(p_hat[k]), stderr, s.n_exact, s.n_censored
            )

    if closed_idx:
        batch = _Batch(
            [stats[i] for i in closed_idx], max_attempts, truncation_correction
        )
        p_hat = np.clip(
            batch.sum_retx / (batch.n_exact + batch.sum_retx), _P_LO, _P_HI
        )
        fill(closed_idx, p_hat, batch)
    if newton_idx:
        batch = _Batch(
            [stats[i] for i in newton_idx], max_attempts, truncation_correction
        )
        fill(newton_idx, batch.solve(), batch)
    return out


class _LinkData:
    """Evidence accumulated for one directed link (sufficient statistics)."""

    __slots__ = ("n_exact", "sum_retx", "censored", "times")

    def __init__(self) -> None:
        #: Number of exact observations.
        self.n_exact = 0
        #: Summed retransmission counts over exact observations.
        self.sum_retx = 0
        #: Attempt-space (lo, hi) inclusive censored interval -> count.
        self.censored: Dict[Tuple[int, int], int] = {}
        #: Observation times (for diagnostics / windowing by re-building).
        self.times: List[float] = []

    @property
    def n_censored(self) -> int:
        return sum(self.censored.values())


class PerLinkEstimator:
    """Accumulates per-link evidence and produces loss MLEs."""

    def __init__(self, max_attempts: int, *, truncation_correction: bool = True) -> None:
        """``max_attempts`` = MAC retry cap + 1 (the truncation point A).

        ``truncation_correction=False`` drops the ``X <= A`` conditioning
        from the likelihood (the biased variant, kept for the ablation).
        """
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.truncation_correction = truncation_correction
        self._data: Dict[Tuple[int, int], _LinkData] = defaultdict(_LinkData)

    # -- feeding evidence -----------------------------------------------------------

    def add_exact(
        self, link: Tuple[int, int], retx_count: int, time: float = 0.0
    ) -> None:
        """Record an exact observation of ``retx_count`` retransmissions."""
        attempt = retx_count + 1
        if not 1 <= attempt <= self.max_attempts:
            raise ValueError(
                f"attempt {attempt} outside [1, {self.max_attempts}]"
            )
        d = self._data[link]
        d.n_exact += 1
        d.sum_retx += retx_count
        d.times.append(time)

    def add_censored(
        self,
        link: Tuple[int, int],
        retx_lo: int,
        retx_hi: int,
        time: float = 0.0,
    ) -> None:
        """Record that the count was in [retx_lo, retx_hi] (inclusive)."""
        lo, hi = retx_lo + 1, retx_hi + 1
        if not 1 <= lo <= hi <= self.max_attempts:
            raise ValueError(f"censored attempts [{lo}, {hi}] invalid")
        d = self._data[link]
        d.censored[(lo, hi)] = d.censored.get((lo, hi), 0) + 1
        d.times.append(time)

    def add_hops(self, hops: Sequence[DecodedHop], time: float = 0.0) -> None:
        """Feed a sequence of decoded hops (a full annotation's, or the
        consistency-checked prefix salvaged from a failed decode).

        Censored bounds are clamped into ``[0, max_attempts - 1]`` so one
        out-of-range hop (a corrupted or stale annotation) cannot raise
        mid-feed and silently drop the rest of the annotation's hops.
        """
        for hop in hops:
            if hop.exact:
                self.add_exact(hop.link, hop.exact_count(), time)
            else:
                lo, hi = hop.retx_bounds
                hi = max(0, min(hi, self.max_attempts - 1))
                lo = max(0, min(lo, hi))
                self.add_censored(hop.link, lo, hi, time)

    def add_decoded(self, decoded: DecodedAnnotation, time: float = 0.0) -> None:
        """Feed every hop of a decoded annotation."""
        self.add_hops(decoded.hops, time)

    # -- likelihood -------------------------------------------------------------------

    def _neg_log_likelihood(self, p: float, data: _LinkData) -> float:
        """Negative log-likelihood of loss ``p`` for one link's evidence."""
        q = 1.0 - p
        A = self.max_attempts
        ll = data.n_exact * math.log(q) + data.sum_retx * math.log(p)
        for (lo, hi), count in data.censored.items():
            # P(lo <= X <= hi) = p^(lo-1) - p^hi
            mass = p ** (lo - 1) - p**hi
            ll += count * math.log(max(mass, _MASS_FLOOR))
        if self.truncation_correction:
            n = data.n_exact + data.n_censored
            ll -= n * math.log(max(1.0 - p**A, _MASS_FLOOR))
        return -ll

    # -- estimation --------------------------------------------------------------------

    def links(self) -> List[Tuple[int, int]]:
        return sorted(self._data.keys())

    def n_samples(self, link: Tuple[int, int]) -> int:
        d = self._data.get(link)
        return 0 if d is None else d.n_exact + d.n_censored

    def _suff(self, link: Tuple[int, int], data: _LinkData) -> SuffStats:
        return SuffStats(link, data.n_exact, data.sum_retx, data.censored)

    def estimate(self, link: Tuple[int, int]) -> Optional[LinkEstimate]:
        """MLE for one link; None if the link has no evidence."""
        data = self._data.get(link)
        if data is None or (data.n_exact + data.n_censored) == 0:
            return None
        return solve_batch(
            [self._suff(link, data)],
            self.max_attempts,
            truncation_correction=self.truncation_correction,
        )[0]

    def estimates(self) -> Dict[Tuple[int, int], LinkEstimate]:
        """MLEs for all links with evidence — one vectorized batch solve."""
        links = self.links()
        stats = [self._suff(link, self._data[link]) for link in links]
        results = solve_batch(
            stats, self.max_attempts, truncation_correction=self.truncation_correction
        )
        return {link: est for link, est in zip(links, results) if est is not None}

    def estimate_scipy(self, link: Tuple[int, int]) -> Optional[LinkEstimate]:
        """The pre-batching per-link scipy solve, kept as reference oracle.

        The differential tests pin :meth:`estimate` to this within 1e-6;
        the perf bench measures the batched speedup against it. Not used
        on any production path.
        """
        data = self._data.get(link)
        if data is None or (data.n_exact + data.n_censored) == 0:
            return None
        # All-first-attempt evidence -> boundary MLE p=0 (handle explicitly).
        if not data.censored and data.sum_retx == 0:
            return _jeffreys_estimate(self._suff(link, data))
        result = optimize.minimize_scalar(
            self._neg_log_likelihood,
            bounds=(_P_LO, _P_HI),
            args=(data,),
            method="bounded",
            options={"xatol": 1e-7},
        )
        p_hat = float(result.x)
        stderr = self._fisher_stderr(p_hat, data)
        return LinkEstimate(link, p_hat, stderr, data.n_exact, data.n_censored)

    def _fisher_stderr(self, p_hat: float, data: _LinkData) -> Optional[float]:
        """Standard error from a numeric second derivative at the MLE."""
        h = max(1e-6, 1e-4 * p_hat)
        lo, hi = p_hat - h, p_hat + h
        if lo <= _P_LO or hi >= _P_HI:
            return None
        f = self._neg_log_likelihood
        second = (f(hi, data) - 2.0 * f(p_hat, data) + f(lo, data)) / (h * h)
        if second <= 0 or not math.isfinite(second):
            return None
        return 1.0 / math.sqrt(second)

    def naive_estimate(self, link: Tuple[int, int]) -> Optional[float]:
        """Moment estimator ``1 - n / sum(attempts)`` ignoring truncation.

        Censored observations are counted at their lower bound — exactly
        the shortcut a naive implementation would take. Kept as the
        ablation baseline quantifying what the corrections buy.
        """
        data = self._data.get(link)
        if data is None:
            return None
        total_attempts = data.n_exact + data.sum_retx
        total_attempts += sum(lo * cnt for (lo, _), cnt in data.censored.items())
        n = data.n_exact + data.n_censored
        if n == 0 or total_attempts == 0:
            return None
        return max(0.0, 1.0 - n / total_attempts)

    def naive_estimates(self) -> Dict[Tuple[int, int], float]:
        """Naive moment estimates for every link with evidence."""
        out: Dict[Tuple[int, int], float] = {}
        for link in self.links():
            naive = self.naive_estimate(link)
            if naive is not None:
                out[link] = naive
        return out

    def merge(self, other: "PerLinkEstimator") -> None:
        """Fold another estimator's evidence into this one.

        Both the truncation point A and the truncation-correction flag
        must match: pooling evidence accumulated under a different
        likelihood would silently bias the merged estimates.
        """
        if other.max_attempts != self.max_attempts:
            raise ValueError("cannot merge estimators with different max_attempts")
        if other.truncation_correction != self.truncation_correction:
            raise ValueError(
                "cannot merge estimators with different truncation_correction"
            )
        for link, data in other._data.items():
            mine = self._data[link]
            mine.n_exact += data.n_exact
            mine.sum_retx += data.sum_retx
            for interval, count in data.censored.items():
                mine.censored[interval] = mine.censored.get(interval, 0) + count
            mine.times.extend(data.times)

    # -- serialization ----------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of all accumulated evidence.

        The layout is canonical — links and censored intervals are
        sorted — so two estimators holding the same evidence serialize
        to identical structures regardless of feeding order (per link,
        observation *times* keep their arrival order; they are
        diagnostics and never influence estimates).
        """
        links: List[Dict[str, Any]] = []
        for link in self.links():
            d = self._data[link]
            links.append(
                {
                    "link": [link[0], link[1]],
                    "n_exact": d.n_exact,
                    "sum_retx": d.sum_retx,
                    "censored": [
                        [lo, hi, cnt] for (lo, hi), cnt in sorted(d.censored.items())
                    ],
                    "times": list(d.times),
                }
            )
        return {
            "schema": ESTIMATOR_STATE_SCHEMA,
            "max_attempts": self.max_attempts,
            "truncation_correction": self.truncation_correction,
            "links": links,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "PerLinkEstimator":
        """Rebuild an estimator from :meth:`state_dict` output.

        Raises ``ValueError`` on schema mismatches or structurally
        invalid payloads (the checkpoint layer wraps this into its typed
        :class:`~repro.stream.checkpoint.CheckpointError`).
        """
        schema = state.get("schema")
        if schema != ESTIMATOR_STATE_SCHEMA:
            raise ValueError(
                f"unsupported estimator state schema {schema!r} "
                f"(expected {ESTIMATOR_STATE_SCHEMA})"
            )
        est = cls(
            int(state["max_attempts"]),
            truncation_correction=bool(state["truncation_correction"]),
        )
        entries = state["links"]
        if not isinstance(entries, (list, tuple)):
            raise ValueError("estimator state 'links' must be a sequence")
        for entry in entries:
            u, v = entry["link"]
            link = (int(u), int(v))
            d = est._data[link]
            d.n_exact = int(entry["n_exact"])
            d.sum_retx = int(entry["sum_retx"])
            if d.n_exact < 0 or d.sum_retx < 0:
                raise ValueError(f"negative evidence counts for link {link}")
            for lo, hi, cnt in entry["censored"]:
                lo, hi, cnt = int(lo), int(hi), int(cnt)
                if not 1 <= lo <= hi <= est.max_attempts or cnt <= 0:
                    raise ValueError(
                        f"invalid censored interval [{lo}, {hi}] x{cnt} "
                        f"for link {link}"
                    )
                d.censored[(lo, hi)] = cnt
            d.times = [float(t) for t in entry.get("times", [])]
        return est

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(d.n_exact + d.n_censored for d in self._data.values())
        return f"PerLinkEstimator(links={len(self._data)}, samples={total})"
