"""Retransmission-count symbol sets with aggregation.

Dophy's first optimization: rather than giving every possible
retransmission count 0..max_retries its own arithmetic-coding symbol
(a large, mostly-empty model that is expensive to estimate, disseminate,
and code against), counts ``>= K`` are *aggregated* into a single escape
symbol. The exact value of an escaped count travels in a cheap
Elias-gamma extension — or, in ``censored`` mode, is not sent at all and
the estimator treats the observation as "at least K" (saving the
extension bits at a small accuracy cost; see the F3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["SymbolSet", "EncodedCount"]


@dataclass(frozen=True)
class EncodedCount:
    """A retransmission count mapped into the symbol alphabet."""

    symbol: int
    #: Extra value (count - K) to ship in the gamma extension; None if exact.
    escape_extra: Optional[int]


class SymbolSet:
    """Maps retransmission counts to arithmetic-coding symbols and back.

    ``aggregation_threshold`` is Dophy's K: counts ``0 .. K-1`` are
    distinct symbols; every count ``>= K`` is the escape symbol ``K``.
    ``aggregation_threshold=None`` disables aggregation — the alphabet
    spans ``0 .. max_count`` (bounded by the MAC's retry cap).
    """

    def __init__(
        self,
        max_count: int,
        aggregation_threshold: Optional[int] = None,
    ) -> None:
        if max_count < 0:
            raise ValueError("max_count must be >= 0")
        if aggregation_threshold is not None:
            if not 1 <= aggregation_threshold <= max_count:
                raise ValueError(
                    "aggregation_threshold must be in [1, max_count] or None"
                )
        self.max_count = max_count
        self.aggregation_threshold = aggregation_threshold

    # -- properties -----------------------------------------------------------------

    @property
    def aggregated(self) -> bool:
        return self.aggregation_threshold is not None

    @property
    def num_symbols(self) -> int:
        """Alphabet size (K+1 when aggregated: exact symbols + escape)."""
        if self.aggregation_threshold is None:
            return self.max_count + 1
        return self.aggregation_threshold + 1

    @property
    def escape_symbol(self) -> Optional[int]:
        """The escape symbol's index, or None when not aggregating."""
        if self.aggregation_threshold is None:
            return None
        return self.aggregation_threshold

    def is_escape(self, symbol: int) -> bool:
        return self.aggregated and symbol == self.aggregation_threshold

    # -- mapping --------------------------------------------------------------------

    def to_symbol(self, count: int) -> EncodedCount:
        """Map a retransmission count to (symbol, escape extra)."""
        if not 0 <= count <= self.max_count:
            raise ValueError(
                f"count {count} out of range [0, {self.max_count}]"
            )
        k = self.aggregation_threshold
        if k is None or count < k:
            return EncodedCount(symbol=count, escape_extra=None)
        return EncodedCount(symbol=k, escape_extra=count - k)

    def from_symbol(self, symbol: int, escape_extra: Optional[int] = None) -> int:
        """Invert :meth:`to_symbol`. ``escape_extra`` required for the escape."""
        if not 0 <= symbol < self.num_symbols:
            raise ValueError(f"symbol {symbol} out of range [0, {self.num_symbols})")
        k = self.aggregation_threshold
        if k is not None and symbol == k:
            if escape_extra is None:
                raise ValueError("escape symbol requires escape_extra")
            count = k + escape_extra
            if count > self.max_count:
                raise ValueError(
                    f"escape extra {escape_extra} exceeds max_count {self.max_count}"
                )
            return count
        if escape_extra is not None:
            raise ValueError("non-escape symbol must not carry escape_extra")
        return symbol

    def symbol_counts_range(self, symbol: int) -> Tuple[int, int]:
        """Inclusive range of counts a symbol stands for (censored-mode support)."""
        if not 0 <= symbol < self.num_symbols:
            raise ValueError(f"symbol {symbol} out of range [0, {self.num_symbols})")
        k = self.aggregation_threshold
        if k is not None and symbol == k:
            return (k, self.max_count)
        return (symbol, symbol)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SymbolSet)
            and self.max_count == other.max_count
            and self.aggregation_threshold == other.aggregation_threshold
        )

    def __hash__(self) -> int:
        return hash((self.max_count, self.aggregation_threshold))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SymbolSet(max_count={self.max_count},"
            f" K={self.aggregation_threshold}, symbols={self.num_symbols})"
        )
