"""Sink-side decoding of Dophy annotations.

Inverts the wire format documented in :mod:`repro.core.annotation`:
header → path ids → single arithmetic stream in which escape extras are
bypass-coded inline. The result is the per-link retransmission evidence
the estimator consumes — for each traversed link either an exact count
or, in censored mode for escaped symbols, a ``count >= K`` interval.

Decode failures carry a **cause taxonomy** so the sink can attribute
every packet it could not decode:

* ``unknown_epoch`` — the annotation pins a model epoch the sink no
  longer (or never) retained;
* ``truncated`` — the bit stream is shorter than its own structure
  claims (header or path section cut off, impossible hop count);
* ``corrupt_symbol`` — a decoded symbol or escape extension is outside
  the alphabet (CRC-escaping bit corruption);
* ``inconsistent_path`` — the recovered node sequence contradicts the
  packet (wrong origin/sink endpoints, unknown neighbor rank).

When a failure happens *after* some hops decoded cleanly, the error
carries that prefix (``partial_hops`` / ``partial_path``) so the sink
can salvage the evidence — gated by a path-consistency check at the
protocol layer (see :meth:`repro.core.dophy.DophySystem`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.coding.arithmetic import ArithmeticDecoder
from repro.coding.baseline_codes import EliasGammaCode
from repro.coding.bitio import BitReader, BitWriter
from repro.core.annotation import BYPASS_MODEL, AnnotationCodec
from repro.core.symbols import SymbolSet

__all__ = [
    "AnnotationDecodeError",
    "DECODE_FAILURE_CAUSES",
    "DecodedHop",
    "DecodedAnnotation",
    "decode_annotation",
]

_GAMMA = EliasGammaCode()

#: Every cause :class:`AnnotationDecodeError` can carry (plus the
#: sink-level ``"sink_outage"`` counted by the protocol layer).
DECODE_FAILURE_CAUSES = (
    "unknown_epoch",
    "truncated",
    "corrupt_symbol",
    "inconsistent_path",
)


class AnnotationDecodeError(Exception):
    """The annotation bits are inconsistent with the expected format.

    ``cause`` is one of :data:`DECODE_FAILURE_CAUSES`. ``partial_hops``
    and ``partial_path`` hold the hop prefix decoded cleanly before the
    failure point (empty when the failure precedes any hop).
    """

    def __init__(
        self,
        message: str,
        *,
        cause: str = "corrupt_symbol",
        partial_hops: Sequence["DecodedHop"] = (),
        partial_path: Sequence[int] = (),
    ) -> None:
        super().__init__(message)
        if cause not in DECODE_FAILURE_CAUSES:
            raise ValueError(f"unknown decode-failure cause {cause!r}")
        self.cause = cause
        self.partial_hops: Tuple["DecodedHop", ...] = tuple(partial_hops)
        self.partial_path: Tuple[int, ...] = tuple(partial_path)


@dataclass(frozen=True)
class DecodedHop:
    """One hop's evidence recovered at the sink."""

    link: Tuple[int, int]
    #: Exact retransmission count, when known.
    retx_count: Optional[int]
    #: Inclusive bounds when only an interval is known (censored escape).
    retx_bounds: Tuple[int, int]

    @property
    def exact(self) -> bool:
        return self.retx_count is not None

    def exact_count(self) -> int:
        """The exact count, raising on censored hops (narrows Optional
        for type checkers; call only after checking :attr:`exact`)."""
        if self.retx_count is None:
            raise ValueError("hop is censored; only retx_bounds is known")
        return self.retx_count


@dataclass(frozen=True)
class DecodedAnnotation:
    """Full decode result for one delivered packet."""

    epoch: int
    path: List[int]
    hops: List[DecodedHop]
    symbols: List[int]
    wire_bits: int


def _decode_bypass_gamma(arith: ArithmeticDecoder, *, max_zeros: int = 64) -> int:
    """Read one Elias-gamma value whose bits are bypass-coded in the stream."""
    zeros = 0
    while True:
        bit = arith.decode_symbol(BYPASS_MODEL)
        if bit == 1:
            break
        zeros += 1
        if zeros > max_zeros:
            raise AnnotationDecodeError(
                "malformed bypass gamma code", cause="corrupt_symbol"
            )
    n = 1
    for _ in range(zeros):
        n = (n << 1) | arith.decode_symbol(BYPASS_MODEL)
    return n - 1


def decode_annotation(
    data: bytes,
    bit_length: int,
    codec: AnnotationCodec,
    *,
    origin: int,
    sink: int,
    assumed_path: Optional[List[int]] = None,
) -> DecodedAnnotation:
    """Decode one annotation delivered by a packet from ``origin``.

    ``assumed_path`` supplies the node sequence when the codec runs in
    ``"assumed"`` path mode (the sink is presumed to learn paths out of
    band); it must be the full path origin..sink.
    """
    reader = BitReader(data, bit_length)
    models = codec.models
    if bit_length < models.epoch_field_bits + 1:
        raise AnnotationDecodeError(
            f"annotation shorter than its header ({bit_length} bits)",
            cause="truncated",
        )
    epoch_field = reader.read_uint(models.epoch_field_bits)
    try:
        hop_count = _GAMMA.decode_value(reader)
    except ValueError as exc:
        raise AnnotationDecodeError(
            f"bad hop-count field: {exc}",
            cause="truncated" if reader.exhausted else "corrupt_symbol",
        ) from exc
    try:
        epoch = models.resolve_epoch_field(epoch_field)
        models.table(epoch)  # raises if the epoch's tables expired
    except KeyError as exc:
        raise AnnotationDecodeError(str(exc), cause="unknown_epoch") from exc

    # A corrupted gamma field can claim an absurd hop count; reject it
    # before looping (each hop needs at least one payload bit somewhere).
    if hop_count > bit_length:
        raise AnnotationDecodeError(
            f"hop count {hop_count} impossible for a {bit_length}-bit annotation",
            cause="truncated",
        )

    # Path section (compressed mode reconstructs the path in-stream below).
    mode = codec.config.path_encoding
    path: List[int]
    if mode == "explicit":
        if hop_count * codec.node_id_bits > reader.bits_remaining:
            raise AnnotationDecodeError(
                "annotation truncated inside path section", cause="truncated"
            )
        path = [origin]
        for _ in range(hop_count):
            path.append(reader.read_uint(codec.node_id_bits))
    elif mode == "assumed":
        if assumed_path is None:
            raise AnnotationDecodeError(
                "assumed path mode requires assumed_path", cause="inconsistent_path"
            )
        if len(assumed_path) != hop_count + 1:
            raise AnnotationDecodeError(
                f"assumed path length {len(assumed_path)} != hop_count+1 ({hop_count + 1})",
                cause="inconsistent_path",
            )
        path = list(assumed_path)
    else:  # compressed
        path = [origin]

    # Arithmetic section: everything that remains.
    payload = BitWriter()
    while reader.bits_remaining > 0:
        payload.write_bit(reader.read_bit())
    arith = ArithmeticDecoder(payload.getvalue(), payload.bit_length)
    symbol_set: SymbolSet = models.symbol_set_for(epoch)

    hops: List[DecodedHop] = []
    symbols: List[int] = []

    def fail(message: str, cause: str) -> AnnotationDecodeError:
        # Attach whatever decoded cleanly before this point for salvage.
        return AnnotationDecodeError(
            message,
            cause=cause,
            partial_hops=hops,
            partial_path=path[: len(hops) + 1],
        )

    for i in range(hop_count):
        if mode == "compressed":
            rank = arith.decode_symbol(codec.path_model.table)
            try:
                path.append(codec.path_model.neighbor_at(path[-1], rank))
            except ValueError as exc:
                raise fail(str(exc), "inconsistent_path") from exc
        link = (path[i], path[i + 1])
        try:
            table = models.table_for_link(epoch, link)
        except KeyError as exc:  # pragma: no cover - epoch checked above
            raise fail(str(exc), "unknown_epoch") from exc
        symbol = arith.decode_symbol(table)
        if not 0 <= symbol < symbol_set.num_symbols:
            raise fail("decoded symbol out of alphabet", "corrupt_symbol")
        symbols.append(symbol)
        if symbol_set.is_escape(symbol):
            if codec.config.escape_mode == "exact":
                try:
                    extra = _decode_bypass_gamma(arith)
                    count = symbol_set.from_symbol(symbol, extra)
                except AnnotationDecodeError as exc:
                    raise fail(str(exc), exc.cause) from exc
                except ValueError as exc:
                    raise fail(str(exc), "corrupt_symbol") from exc
                hops.append(DecodedHop(link, count, (count, count)))
            else:
                lo, hi = symbol_set.symbol_counts_range(symbol)
                hops.append(DecodedHop(link, None, (lo, hi)))
        else:
            count = symbol_set.from_symbol(symbol)
            hops.append(DecodedHop(link, count, (count, count)))

    if path[0] != origin:
        raise AnnotationDecodeError(
            "path does not start at the packet origin",
            cause="inconsistent_path",
            partial_hops=hops,
            partial_path=path,
        )
    if hop_count > 0 and path[-1] != sink:
        raise AnnotationDecodeError(
            "path does not end at the sink",
            cause="inconsistent_path",
            partial_hops=hops,
            partial_path=path,
        )
    return DecodedAnnotation(
        epoch=epoch, path=path, hops=hops, symbols=symbols, wire_bits=bit_length
    )
