"""Probability-model management — Dophy's second optimization.

All nodes in an epoch encode against shared static frequency tables, so
the sink's decoder never desynchronizes from the fleet of encoders. The
sink re-estimates the symbol distribution from recently decoded
annotations and, every ``update_period`` seconds, freezes new tables,
bumps the epoch, and *disseminates* them (we account the dissemination
bits — a table broadcast costs roughly one transmission per node).

Epoch numbers ride in every packet's annotation header (a small modular
field), and the sink keeps a window of recent tables so packets encoded
just before an update still decode.

**Lossy dissemination (extension).** By default dissemination is
idealized: every node switches to a published epoch after the global
``activation_delay``. With per-node epoch tracking enabled
(:meth:`ModelManager.enable_per_node_epochs`), each node instead tracks
the latest epoch it *actually received* from broadcast/repair rounds
(delivered by the protocol layer via :meth:`deliver_epoch`) and encodes
against that. Stale nodes keep using their old tables — each node
retains its last received model, mirrored here by an encoder-side
archive of expired epochs — and the sink's ``epoch_history`` window
absorbs moderately-stale packets; packets pinned to epochs beyond the
window fail to decode with cause ``unknown_epoch``.

**Link-class contexts (extension).** With ``num_classes > 1`` the sink
additionally classifies links into quality classes (by their recent mean
retransmission symbol) and maintains one table per class: good links
encode against a sharply-peaked model, bad links against a flatter one —
sharper than any single network-wide mixture. The per-link class map is
part of each dissemination (and is charged for), and both the encoding
node (for its inbound link) and the decoder look classes up in the
*packet's* epoch, so they always agree.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.coding.freq import FrequencyTable
from repro.core.symbols import SymbolSet
from repro.utils.validation import check_positive, check_probability

__all__ = ["ModelManager", "geometric_symbol_probabilities"]

Link = Tuple[int, int]


def geometric_symbol_probabilities(
    symbol_set: SymbolSet, expected_loss: float
) -> List[float]:
    """Symbol distribution implied by a geometric retransmission process.

    If every link lost frames iid with probability ``expected_loss``, a
    retransmission count of ``c`` occurs with probability
    ``(1-p) * p^c`` (truncated at ``max_count``); aggregated symbols sum
    the tail. This is Dophy's *prior* model — what nodes encode against
    before the sink has measured anything.
    """
    p = check_probability(expected_loss, "expected_loss")
    counts = symbol_set.max_count + 1
    raw = [(1.0 - p) * (p**c) if p < 1.0 else 0.0 for c in range(counts)]
    total = sum(raw)
    if total <= 0:
        raw = [1.0] * counts
        total = float(counts)
    raw = [x / total for x in raw]
    probs = [0.0] * symbol_set.num_symbols
    for count, mass in enumerate(raw):
        probs[symbol_set.to_symbol(count).symbol] += mass
    return probs


class ModelManager:
    """Per-epoch static models with periodic sink-side re-estimation."""

    def __init__(
        self,
        symbol_set: SymbolSet,
        *,
        initial_expected_loss: float = 0.2,
        update_period: Optional[float] = 60.0,
        estimation_window: Optional[float] = None,
        table_precision: int = 4096,
        epoch_history: int = 4,
        num_nodes_for_dissemination: int = 0,
        bits_per_frequency: int = 12,
        num_classes: int = 1,
        activation_delay: float = 0.0,
        auto_aggregation: bool = False,
    ) -> None:
        """``update_period=None`` disables updates (the static-model ablation).

        ``estimation_window`` limits re-estimation to symbols decoded in the
        last window seconds (defaults to ``update_period``), so the model
        tracks drifting links instead of averaging over all history.
        ``num_classes > 1`` enables per-link-quality-class tables.
        ``activation_delay`` models dissemination latency: a published
        epoch only becomes current *for encoders* that many seconds after
        the sink froze it (the sink itself retains all recent epochs, so
        decoding is unaffected).
        ``auto_aggregation`` re-selects the aggregation threshold K at
        every update (per-epoch symbol sets), minimizing expected
        annotation + dissemination bits per hop — see
        :mod:`repro.core.autotune`.
        """
        if update_period is not None:
            check_positive(update_period, "update_period")
        if estimation_window is not None:
            check_positive(estimation_window, "estimation_window")
        if epoch_history < 1:
            raise ValueError("epoch_history must be >= 1")
        if num_classes < 1:
            raise ValueError("num_classes must be >= 1")
        if activation_delay < 0:
            raise ValueError("activation_delay must be >= 0")
        self.symbol_set = symbol_set
        self.update_period = update_period
        self.estimation_window = (
            estimation_window if estimation_window is not None else update_period
        )
        self.table_precision = table_precision
        self.epoch_history = epoch_history
        self.num_nodes_for_dissemination = num_nodes_for_dissemination
        self.bits_per_frequency = bits_per_frequency
        self.num_classes = num_classes
        self.activation_delay = activation_delay
        self.auto_aggregation = auto_aggregation

        initial = FrequencyTable.from_probabilities(
            geometric_symbol_probabilities(symbol_set, initial_expected_loss),
            precision=table_precision,
        )
        #: epoch -> per-class tables (all classes start identical).
        self._tables: Dict[int, List[FrequencyTable]] = {0: [initial] * num_classes}
        #: epoch -> directed link -> class id (missing = class 0).
        self._class_maps: Dict[int, Dict[Link, int]] = {0: {}}
        #: epoch -> symbol set (varies only under auto_aggregation).
        self._symbol_sets: Dict[int, SymbolSet] = {0: symbol_set}
        self._epoch = 0
        #: epoch -> time at which encoders start using it.
        self._activation: Dict[int, float] = {0: 0.0}
        #: (time, link-or-None, symbol) decode observations.
        self._observations: List[Tuple[float, Optional[Link], int]] = []
        self._dissemination_bits = 0
        self._updates_performed = 0
        #: node -> latest epoch the node received (None = idealized mode).
        self._node_epoch: Optional[Dict[int, int]] = None
        #: When False, :meth:`maybe_update` does not self-charge a flood;
        #: the protocol layer charges per broadcast round instead.
        self._auto_charge_dissemination = True
        #: Encoder-side retention of epochs evicted from the sink's decode
        #: window (every node keeps the last model it received, so stale
        #: encoders can still produce well-formed annotations).
        self._archive_tables: Dict[int, List[FrequencyTable]] = {}
        self._archive_class_maps: Dict[int, Dict[Link, int]] = {}
        self._archive_symbol_sets: Dict[int, SymbolSet] = {}

    # -- encoder-facing -----------------------------------------------------------

    @property
    def current_epoch(self) -> int:
        """The newest epoch (the sink's view)."""
        return self._epoch

    def current_epoch_for(self, time: float) -> int:
        """The epoch encoders use at ``time`` (respects activation delay)."""
        candidates = [
            e for e, t in self._activation.items() if t <= time and e in self._tables
        ]
        if not candidates:
            return min(self._tables)  # everything still propagating: oldest retained
        return max(candidates)

    def table(self, epoch: Optional[int] = None, class_id: int = 0) -> FrequencyTable:
        """A class's model for ``epoch`` (default: current). KeyError if expired."""
        key = self._epoch if epoch is None else epoch
        if key not in self._tables:
            raise KeyError(
                f"model epoch {key} not available (have {sorted(self._tables)})"
            )
        if not 0 <= class_id < self.num_classes:
            raise ValueError(f"class_id {class_id} out of range")
        return self._tables[key][class_id]

    def class_of(self, epoch: int, link: Link) -> int:
        """The link's quality class in ``epoch`` (0 if unclassified)."""
        if epoch not in self._class_maps:
            raise KeyError(f"model epoch {epoch} not available")
        return self._class_maps[epoch].get(link, 0)

    def table_for_link(self, epoch: int, link: Link) -> FrequencyTable:
        """The table a hop over ``link`` encodes/decodes against in ``epoch``."""
        return self.table(epoch, self.class_of(epoch, link))

    def symbol_set_for(self, epoch: int) -> SymbolSet:
        """The symbol alphabet of ``epoch`` (varies only under auto mode)."""
        if epoch not in self._symbol_sets:
            raise KeyError(f"model epoch {epoch} not available")
        return self._symbol_sets[epoch]

    # -- per-node epochs (lossy dissemination) -------------------------------------

    @property
    def per_node_epochs(self) -> bool:
        """True when lossy dissemination (per-node epoch tracking) is enabled."""
        return self._node_epoch is not None

    def enable_per_node_epochs(
        self, nodes: Sequence[int], *, auto_charge_dissemination: bool = False
    ) -> None:
        """Switch to per-node epoch tracking for ``nodes`` (all start at 0).

        With ``auto_charge_dissemination=False`` (the default here) the
        caller owns overhead accounting per broadcast round via
        :meth:`charge_broadcast`; :meth:`maybe_update` then publishes
        without charging.
        """
        self._node_epoch = {n: 0 for n in nodes}
        self._auto_charge_dissemination = auto_charge_dissemination

    def deliver_epoch(self, node: int, epoch: int) -> bool:
        """Record that ``node`` received ``epoch``; True if it advanced."""
        if self._node_epoch is None:
            raise RuntimeError("per-node epochs not enabled")
        if node not in self._node_epoch:
            raise KeyError(f"node {node} not tracked for dissemination")
        if epoch <= self._node_epoch[node]:
            return False  # duplicate or out-of-order repair delivery
        self._node_epoch[node] = epoch
        return True

    def epoch_of_node(self, node: int) -> int:
        """The epoch ``node`` encodes against (its latest received one)."""
        if self._node_epoch is None:
            raise RuntimeError("per-node epochs not enabled")
        return self._node_epoch[node]

    def nodes_behind(self, epoch: int) -> List[int]:
        """Tracked nodes that have not yet received ``epoch`` (stragglers)."""
        if self._node_epoch is None:
            return []
        return sorted(n for n, e in self._node_epoch.items() if e < epoch)

    def encoder_symbol_set_for(self, epoch: int) -> SymbolSet:
        """Like :meth:`symbol_set_for`, but also sees archived epochs."""
        got = self._symbol_sets.get(epoch)
        if got is None:
            got = self._archive_symbol_sets.get(epoch)
        if got is None:
            raise KeyError(f"model epoch {epoch} unknown to any encoder")
        return got

    def encoder_table_for_link(self, epoch: int, link: Link) -> FrequencyTable:
        """Like :meth:`table_for_link`, but also sees archived epochs.

        A node pinned to an epoch the sink already expired still holds
        its own copy of that epoch's tables — it encodes consistently;
        whether the *sink* can decode is a separate question answered by
        the (history-window-limited) decode-side lookups.
        """
        tables = self._tables.get(epoch)
        class_map = self._class_maps.get(epoch)
        if tables is None:
            tables = self._archive_tables.get(epoch)
            class_map = self._archive_class_maps.get(epoch, {})
        if tables is None:
            raise KeyError(f"model epoch {epoch} unknown to any encoder")
        return tables[(class_map or {}).get(link, 0)]

    @property
    def epoch_field_bits(self) -> int:
        """Bits of the per-packet epoch field (modular over the history window)."""
        return max(1, math.ceil(math.log2(self.epoch_history + 1)))

    def resolve_epoch_field(self, field_value: int) -> int:
        """Map a modular epoch-field value back to an absolute epoch.

        Chooses the most recent retained epoch congruent to ``field_value``.
        """
        modulus = 1 << self.epoch_field_bits
        candidates = [
            e for e in self._tables if e % modulus == field_value % modulus
        ]
        if not candidates:
            raise KeyError(f"no retained epoch matches field value {field_value}")
        return max(candidates)

    # -- sink-facing ----------------------------------------------------------------
    #
    # Observations are retransmission *counts* (clamped to max_count); in
    # censored escape mode the sink feeds the escape's lower bound — a
    # conservative tail attribution that folds into the same tail symbol.

    def observe_symbols(self, counts: Sequence[int], time: float) -> None:
        """Record decoded counts without link attribution (single-class feed)."""
        self._observations.extend((time, None, c) for c in counts)

    def observe_hops(self, pairs: Sequence[Tuple[Link, int]], time: float) -> None:
        """Record decoded (link, count) pairs — enables class contexts."""
        self._observations.extend((time, link, c) for link, c in pairs)

    def _classify_links(
        self, per_link_counts: Dict[Link, List[int]]
    ) -> Dict[Link, int]:
        """Quantile-classify links by their mean observed count."""
        if self.num_classes == 1 or not per_link_counts:
            return {}
        means = {
            link: sum(i * c for i, c in enumerate(counts)) / max(1, sum(counts))
            for link, counts in per_link_counts.items()
        }
        ordered = sorted(means.items(), key=lambda kv: kv[1])
        n = len(ordered)
        mapping: Dict[Link, int] = {}
        for idx, (link, _) in enumerate(ordered):
            mapping[link] = min(self.num_classes - 1, idx * self.num_classes // n)
        return mapping

    def _fold(self, count_histogram: Sequence[int], symbol_set: SymbolSet) -> List[int]:
        """Fold a raw count histogram into symbol frequencies."""
        out = [0] * symbol_set.num_symbols
        for count, c in enumerate(count_histogram):
            out[symbol_set.to_symbol(count).symbol] += c
        return out

    def maybe_update(self, time: float) -> bool:
        """Re-estimate and publish a new model epoch; True if published.

        Call this on the update schedule; it is also safe to call when
        updates are disabled (returns False).
        """
        if self.update_period is None:
            return False
        window = self.estimation_window
        cutoff = time - window if window is not None else -math.inf
        max_count = self.symbol_set.max_count
        kept: List[Tuple[float, Optional[Link], int]] = []
        global_hist = [0] * (max_count + 1)
        per_link: Dict[Link, List[int]] = defaultdict(
            lambda: [0] * (max_count + 1)
        )
        for t, link, c in self._observations:
            if t >= cutoff:
                kept.append((t, link, c))
                c = min(c, max_count)
                global_hist[c] += 1
                if link is not None:
                    per_link[link][c] += 1
        self._observations = kept
        total_hops = sum(global_hist)
        if total_hops == 0:
            return False  # nothing decoded yet; keep the old model
        # The alphabet for the new epoch: re-tuned under auto mode, else
        # the same set every epoch.
        if self.auto_aggregation and max_count >= 1:
            from repro.core.autotune import choose_aggregation_threshold

            k = choose_aggregation_threshold(
                global_hist,
                max_count=max_count,
                num_nodes=self.num_nodes_for_dissemination,
                hops_per_update=float(total_hops),
                bits_per_frequency=self.bits_per_frequency,
            )
            symbol_set = SymbolSet(max_count, k)
        else:
            symbol_set = self.symbol_set_for(self._epoch)
        class_map = self._classify_links(per_link)
        tables: List[FrequencyTable] = []
        for class_id in range(self.num_classes):
            hist = [0] * (max_count + 1)
            for link, link_hist in per_link.items():
                if class_map.get(link, 0) == class_id:
                    for i, c in enumerate(link_hist):
                        hist[i] += c
            if self.num_classes == 1 or sum(hist) == 0:
                hist = global_hist  # single class / empty class -> pool
            counts = self._fold(hist, symbol_set)
            table = FrequencyTable.from_counts(counts, smoothing=1)
            # Re-quantize for a fixed dissemination size.
            tables.append(
                FrequencyTable.from_probabilities(
                    table.probabilities(), precision=self.table_precision
                )
            )
        self._epoch += 1
        self._tables[self._epoch] = tables
        self._class_maps[self._epoch] = class_map
        self._symbol_sets[self._epoch] = symbol_set
        self._activation[self._epoch] = time + self.activation_delay
        while len(self._tables) > self.epoch_history:
            victim = min(self._tables)
            # The sink's decode window drops the epoch, but encoders out
            # in the network still hold their copies — archive for them.
            self._archive_tables[victim] = self._tables.pop(victim)
            self._archive_class_maps[victim] = self._class_maps.pop(victim)
            if victim in self._symbol_sets:
                self._archive_symbol_sets[victim] = self._symbol_sets.pop(victim)
            self._activation.pop(victim, None)
        if self._auto_charge_dissemination:
            self._dissemination_bits += self.dissemination_cost_bits(tables, class_map)
        self._updates_performed += 1
        return True

    # -- cost accounting -----------------------------------------------------------

    @property
    def class_id_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.num_classes))))

    def dissemination_cost_bits(
        self,
        tables: Sequence[FrequencyTable] | FrequencyTable,
        class_map: Optional[Dict[Link, int]] = None,
    ) -> int:
        """Network-wide cost of broadcasting one model update.

        A flood reaches every node once; its payload is every class's
        serialized table plus (for multi-class operation) the per-link
        class map. Cost = payload * node count (0 if dissemination
        accounting is disabled).
        """
        if isinstance(tables, FrequencyTable):
            tables = [tables]
        payload = sum(
            t.serialized_size_bits(bits_per_frequency=self.bits_per_frequency)
            for t in tables
        )
        if self.num_classes > 1 and class_map:
            # Each map entry: two node ids are implicit in a canonical link
            # ordering known network-wide, so only the class id is carried.
            payload += len(class_map) * self.class_id_bits
        return payload * max(0, self.num_nodes_for_dissemination)

    def epoch_payload_bits(self, epoch: int) -> int:
        """Per-receiver payload of broadcasting ``epoch``'s model."""
        tables = self._tables.get(epoch)
        class_map = self._class_maps.get(epoch)
        if tables is None:
            tables = self._archive_tables.get(epoch)
            class_map = self._archive_class_maps.get(epoch)
        if tables is None:
            raise KeyError(f"model epoch {epoch} unknown")
        payload = sum(
            t.serialized_size_bits(bits_per_frequency=self.bits_per_frequency)
            for t in tables
        )
        if self.num_classes > 1 and class_map:
            payload += len(class_map) * self.class_id_bits
        return payload

    def charge_broadcast(self, epoch: int, num_receivers: int) -> int:
        """Charge one broadcast/repair round of ``epoch`` to the control plane.

        Returns the bits charged (payload × receivers). Used by the
        protocol layer when per-round accounting replaces the idealized
        one-flood-per-update charge.
        """
        if num_receivers < 0:
            raise ValueError("num_receivers must be >= 0")
        bits = self.epoch_payload_bits(epoch) * num_receivers
        self._dissemination_bits += bits
        return bits

    @property
    def total_dissemination_bits(self) -> int:
        return self._dissemination_bits

    @property
    def updates_performed(self) -> int:
        return self._updates_performed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ModelManager(epoch={self._epoch}, classes={self.num_classes},"
            f" updates={self._updates_performed},"
            f" dissem_bits={self._dissemination_bits})"
        )
