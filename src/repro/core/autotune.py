"""Automatic aggregation-threshold (K) selection.

The paper's phrasing — Dophy "*intelligently* reduces the size of the
symbol set" — implies K is chosen, not hard-coded. Given the recent
retransmission-count histogram, the total cost of a candidate K is:

* **symbol bits/hop** — entropy of the K-aggregated distribution (what
  the arithmetic coder pays against a matched model);
* **escape-extra bits/hop** — for counts >= K, the bypass-coded
  Elias-gamma of (count - K), weighted by their probability;
* **dissemination bits/hop** — a (K+2)-entry table flooded to every
  node, amortized over the hops expected before the next update.

:func:`choose_aggregation_threshold` returns the argmin — large K when
traffic is heavy and counts are spread (dissemination amortizes), small
K when traffic is light or counts concentrate near zero.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.coding.baseline_codes import EliasGammaCode

__all__ = ["aggregation_cost_bits_per_hop", "choose_aggregation_threshold"]

_GAMMA = EliasGammaCode()


def _normalized(histogram: Sequence[float]) -> List[float]:
    total = float(sum(histogram))
    if total <= 0:
        raise ValueError("histogram must contain mass")
    # Light smoothing keeps every count representable.
    smoothed = [h + 0.5 for h in histogram]
    total = sum(smoothed)
    return [h / total for h in smoothed]


def aggregation_cost_bits_per_hop(
    histogram: Sequence[float],
    k: int,
    *,
    num_nodes: int,
    hops_per_update: float,
    bits_per_frequency: int = 12,
) -> float:
    """Expected annotation+dissemination bits per hop under threshold ``k``."""
    if k < 1 or k > len(histogram) - 1:
        raise ValueError("k must be in [1, max_count]")
    if hops_per_update <= 0:
        raise ValueError("hops_per_update must be > 0")
    probs = _normalized(histogram)
    # Fold counts into the K-aggregated symbol distribution.
    symbol_probs = probs[:k] + [sum(probs[k:])]
    entropy = -sum(p * math.log2(p) for p in symbol_probs if p > 0)
    escape_bits = sum(
        probs[c] * _GAMMA.code_length(c - k) for c in range(k, len(probs))
    )
    table_bits = 8 + (k + 1) * bits_per_frequency
    dissemination = table_bits * max(1, num_nodes) / hops_per_update
    return entropy + escape_bits + dissemination


def choose_aggregation_threshold(
    histogram: Sequence[float],
    *,
    max_count: int,
    num_nodes: int,
    hops_per_update: float,
    bits_per_frequency: int = 12,
) -> int:
    """The K minimizing :func:`aggregation_cost_bits_per_hop`.

    ``histogram[c]`` is the observed frequency of retransmission count
    ``c`` (length ``max_count + 1``).
    """
    if len(histogram) != max_count + 1:
        raise ValueError("histogram must have max_count + 1 buckets")
    if max_count < 1:
        return 1
    candidates = range(1, max_count + 1)
    return min(
        candidates,
        key=lambda k: aggregation_cost_bits_per_hop(
            histogram,
            k,
            num_nodes=num_nodes,
            hops_per_update=hops_per_update,
            bits_per_frequency=bits_per_frequency,
        ),
    )
