"""Sliding-window loss estimation for non-stationary links (extension).

The batch :class:`~repro.core.estimator.PerLinkEstimator` pools all
evidence, which is optimal for stationary links but smears over drift.
:class:`SlidingLinkEstimator` keeps per-link evidence time-stamped and
answers "what was this link's loss *around time t*" using only the
observations in a trailing window — turning Dophy's per-packet evidence
into a link-quality *time series* (fine-grained in time as well as in
space).

Queries are incremental: each link maintains the sufficient statistics
of the current window (see :class:`~repro.core.estimator.SuffStats`) and
slides them as ``now`` advances — newly covered observations are added,
expired ones subtracted — so :meth:`estimate` and :meth:`timeline` cost
O(observations slid over), not O(window size) per query, and never
rebuild a :class:`~repro.core.estimator.PerLinkEstimator`. Backward
queries (a ``now`` earlier than the previous query) and :meth:`prune`
fall back to recomputing the window aggregate from the sorted log.

Attach it to a running :class:`~repro.core.dophy.DophySystem` via
``dophy.add_decode_listener(sliding.add_decoded)``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.decoder import DecodedAnnotation
from repro.core.estimator import LinkEstimate, SuffStats, solve_batch
from repro.utils.validation import check_positive

__all__ = ["SlidingLinkEstimator"]

Link = Tuple[int, int]

#: Version tag of the serialized sliding-window state (see ``state_dict``).
WINDOWED_STATE_SCHEMA = 1


@dataclass
class _TimedObservation:
    time: float
    #: Exact retransmission count, or None for censored.
    retx: Optional[int]
    #: (lo, hi) inclusive retransmission bounds when censored.
    bounds: Optional[Tuple[int, int]]


class _WindowState:
    """One link's deque-style window over its observation log.

    ``[start, end)`` indexes the observations inside the last queried
    window; the aggregate fields are their sufficient statistics,
    maintained by adding arrivals and subtracting expiries as the window
    slides forward. ``dirty`` forces a from-scratch rebuild (set on
    pruning; backward queries are detected via ``last_now``).
    """

    __slots__ = ("start", "end", "n_exact", "sum_retx", "censored", "last_now", "dirty")

    def __init__(self) -> None:
        self.start = 0
        self.end = 0
        self.n_exact = 0
        self.sum_retx = 0
        #: Attempt-space (lo, hi) censored interval -> count in window.
        self.censored: Dict[Tuple[int, int], int] = {}
        self.last_now = -float("inf")
        self.dirty = False

    def clear(self) -> None:
        self.n_exact = 0
        self.sum_retx = 0
        self.censored.clear()

    def add(self, obs: _TimedObservation) -> None:
        if obs.retx is not None:
            self.n_exact += 1
            self.sum_retx += obs.retx
        else:
            assert obs.bounds is not None
            key = (obs.bounds[0] + 1, obs.bounds[1] + 1)
            self.censored[key] = self.censored.get(key, 0) + 1

    def remove(self, obs: _TimedObservation) -> None:
        if obs.retx is not None:
            self.n_exact -= 1
            self.sum_retx -= obs.retx
        else:
            assert obs.bounds is not None
            key = (obs.bounds[0] + 1, obs.bounds[1] + 1)
            left = self.censored[key] - 1
            if left:
                self.censored[key] = left
            else:
                del self.censored[key]

    @property
    def n_samples(self) -> int:
        return self.n_exact + sum(self.censored.values())


class SlidingLinkEstimator:
    """Time-windowed per-link loss MLE over Dophy's decoded evidence."""

    def __init__(
        self,
        max_attempts: int,
        window: float,
        *,
        truncation_correction: bool = True,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        check_positive(window, "window")
        self.max_attempts = max_attempts
        self.window = window
        self.truncation_correction = truncation_correction
        self._times: Dict[Link, List[float]] = {}
        self._obs: Dict[Link, List[_TimedObservation]] = {}
        self._state: Dict[Link, _WindowState] = {}

    # -- feeding ---------------------------------------------------------------------

    def _append(self, link: Link, obs: _TimedObservation) -> None:
        times = self._times.get(link)
        if times is None:
            times = self._times[link] = []
            self._obs[link] = []
            self._state[link] = _WindowState()
        obs_list = self._obs[link]
        if times and obs.time < times[-1]:
            # Out-of-order arrival (possible with in-flight reordering):
            # insert at the right position to keep bisect valid, and fix
            # up the window indices around the insertion point.
            idx = bisect.bisect_right(times, obs.time)
            times.insert(idx, obs.time)
            obs_list.insert(idx, obs)
            state = self._state[link]
            if idx < state.start:
                state.start += 1
                state.end += 1
            elif idx < state.end:
                if obs.time > state.last_now - self.window:
                    # Lands inside the current window span: include it.
                    state.add(obs)
                    state.end += 1
                else:
                    # At/before the cutoff (only possible at idx == start):
                    # the span shifts right without gaining the sample.
                    state.start += 1
                    state.end += 1
        else:
            times.append(obs.time)
            obs_list.append(obs)

    def add_exact(self, link: Link, retx_count: int, time: float) -> None:
        if not 0 <= retx_count <= self.max_attempts - 1:
            raise ValueError(f"retx_count {retx_count} out of range")
        self._append(link, _TimedObservation(time, retx_count, None))

    def add_censored(
        self, link: Link, retx_lo: int, retx_hi: int, time: float
    ) -> None:
        if not 0 <= retx_lo <= retx_hi <= self.max_attempts - 1:
            raise ValueError(f"censored bounds [{retx_lo}, {retx_hi}] invalid")
        self._append(link, _TimedObservation(time, None, (retx_lo, retx_hi)))

    def add_decoded(self, decoded: DecodedAnnotation, time: float) -> None:
        """Listener-compatible hook: feed every hop of one annotation.

        Censored bounds are clamped into range (matching
        :meth:`PerLinkEstimator.add_hops`) so one out-of-range hop cannot
        raise mid-feed and drop the rest of the annotation's hops.
        """
        for hop in decoded.hops:
            if hop.exact:
                self.add_exact(hop.link, hop.exact_count(), time)
            else:
                lo, hi = hop.retx_bounds
                hi = max(0, min(hi, self.max_attempts - 1))
                lo = max(0, min(lo, hi))
                self.add_censored(hop.link, lo, hi, time)

    # -- window maintenance ------------------------------------------------------------

    def _slide(self, link: Link, now: float) -> Optional[_WindowState]:
        """Bring ``link``'s window state to (now - window, now]."""
        times = self._times.get(link)
        if not times:
            return None
        state = self._state[link]
        obs = self._obs[link]
        cutoff = now - self.window
        if state.dirty or now < state.last_now:
            state.start = bisect.bisect_right(times, cutoff)
            state.end = bisect.bisect_right(times, now)
            state.clear()
            for i in range(state.start, state.end):
                state.add(obs[i])
            state.dirty = False
        else:
            end = state.end
            while end < len(times) and times[end] <= now:
                state.add(obs[end])
                end += 1
            state.end = end
            start = state.start
            while start < end and times[start] <= cutoff:
                state.remove(obs[start])
                start += 1
            state.start = start
        state.last_now = now
        return state

    def _window_suff(self, link: Link, now: float) -> Optional[SuffStats]:
        state = self._slide(link, now)
        if state is None or state.n_samples == 0:
            return None
        return SuffStats(link, state.n_exact, state.sum_retx, dict(state.censored))

    # -- queries ----------------------------------------------------------------------

    def n_samples(self, link: Link, now: float) -> int:
        """Observations within (now - window, now]."""
        times = self._times.get(link)
        if not times:
            return 0
        lo = bisect.bisect_right(times, now - self.window)
        hi = bisect.bisect_right(times, now)
        return hi - lo

    def estimate(self, link: Link, now: float) -> Optional[LinkEstimate]:
        """MLE over the trailing window ending at ``now``."""
        suff = self._window_suff(link, now)
        if suff is None:
            return None
        return solve_batch(
            [suff],
            self.max_attempts,
            truncation_correction=self.truncation_correction,
        )[0]

    def estimates(self, now: float) -> Dict[Link, LinkEstimate]:
        """Window estimates for every link with current evidence —
        one vectorized batch solve across all links."""
        links = self.links()
        stats = [self._window_suff(link, now) for link in links]
        present = [s for s in stats if s is not None]
        results = solve_batch(
            present,
            self.max_attempts,
            truncation_correction=self.truncation_correction,
        )
        return {est.link: est for est in results if est is not None}

    def timeline(
        self, link: Link, times: Sequence[float]
    ) -> List[Tuple[float, Optional[float]]]:
        """(time, windowed loss estimate) at each requested time — the
        link-quality time series a network manager would plot.

        For ascending ``times`` (the common case) the window slides
        incrementally across the whole sweep: total cost is one pass
        over the link's observations plus one solve per query point.
        """
        out: List[Tuple[float, Optional[float]]] = []
        for t in times:
            est = self.estimate(link, t)
            out.append((t, est.loss if est is not None else None))
        return out

    def prune(self, before: float) -> int:
        """Drop observations older than ``before``; returns count removed."""
        removed = 0
        for link in list(self._times):
            times = self._times[link]
            cut = bisect.bisect_left(times, before)
            if cut:
                del times[:cut]
                del self._obs[link][:cut]
                removed += cut
                state = self._state[link]
                state.start = max(0, state.start - cut)
                state.end = max(0, state.end - cut)
                state.dirty = True
            if not times:
                del self._times[link]
                del self._obs[link]
                del self._state[link]
        return removed

    def links(self) -> List[Link]:
        return sorted(self._times.keys())

    # -- serialization ----------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the time-stamped observation log.

        Window spans and running aggregates are *derived* state and are
        not serialized; :meth:`from_state` rebuilds them lazily on the
        first query, which is bitwise-equivalent to never having been
        serialized at all.
        """
        links: List[Dict[str, Any]] = []
        for link in self.links():
            links.append(
                {
                    "link": [link[0], link[1]],
                    "obs": [
                        [o.time, o.retx, None if o.bounds is None else list(o.bounds)]
                        for o in self._obs[link]
                    ],
                }
            )
        return {
            "schema": WINDOWED_STATE_SCHEMA,
            "max_attempts": self.max_attempts,
            "window": self.window,
            "truncation_correction": self.truncation_correction,
            "links": links,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SlidingLinkEstimator":
        """Rebuild a sliding estimator from :meth:`state_dict` output.

        Raises ``ValueError`` on schema mismatches or malformed payloads.
        """
        schema = state.get("schema")
        if schema != WINDOWED_STATE_SCHEMA:
            raise ValueError(
                f"unsupported windowed state schema {schema!r} "
                f"(expected {WINDOWED_STATE_SCHEMA})"
            )
        est = cls(
            int(state["max_attempts"]),
            float(state["window"]),
            truncation_correction=bool(state["truncation_correction"]),
        )
        for entry in state["links"]:
            u, v = entry["link"]
            link = (int(u), int(v))
            last_time = -float("inf")
            for time, retx, bounds in entry["obs"]:
                time = float(time)
                if time < last_time:
                    raise ValueError(
                        f"observation times for link {link} not sorted"
                    )
                last_time = time
                if retx is not None:
                    est.add_exact(link, int(retx), time)
                else:
                    if bounds is None:
                        raise ValueError(
                            f"observation for link {link} has neither exact "
                            "count nor censored bounds"
                        )
                    est.add_censored(link, int(bounds[0]), int(bounds[1]), time)
        return est

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(v) for v in self._obs.values())
        return f"SlidingLinkEstimator(window={self.window}, samples={total})"
