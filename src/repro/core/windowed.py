"""Sliding-window loss estimation for non-stationary links (extension).

The batch :class:`~repro.core.estimator.PerLinkEstimator` pools all
evidence, which is optimal for stationary links but smears over drift.
:class:`SlidingLinkEstimator` keeps per-link evidence time-stamped and
answers "what was this link's loss *around time t*" using only the
observations in a trailing window — turning Dophy's per-packet evidence
into a link-quality *time series* (fine-grained in time as well as in
space).

Attach it to a running :class:`~repro.core.dophy.DophySystem` via
``dophy.add_decode_listener(sliding.add_decoded)``.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.decoder import DecodedAnnotation
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.utils.validation import check_positive

__all__ = ["SlidingLinkEstimator"]

Link = Tuple[int, int]


@dataclass
class _TimedObservation:
    time: float
    #: Exact retransmission count, or None for censored.
    retx: Optional[int]
    #: (lo, hi) inclusive retransmission bounds when censored.
    bounds: Optional[Tuple[int, int]]


class SlidingLinkEstimator:
    """Time-windowed per-link loss MLE over Dophy's decoded evidence."""

    def __init__(
        self,
        max_attempts: int,
        window: float,
        *,
        truncation_correction: bool = True,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        check_positive(window, "window")
        self.max_attempts = max_attempts
        self.window = window
        self.truncation_correction = truncation_correction
        self._times: Dict[Link, List[float]] = defaultdict(list)
        self._obs: Dict[Link, List[_TimedObservation]] = defaultdict(list)

    # -- feeding ---------------------------------------------------------------------

    def _append(self, link: Link, obs: _TimedObservation) -> None:
        times = self._times[link]
        if times and obs.time < times[-1]:
            # Out-of-order arrival (possible with in-flight reordering):
            # insert at the right position to keep bisect valid.
            idx = bisect.bisect_right(times, obs.time)
            times.insert(idx, obs.time)
            self._obs[link].insert(idx, obs)
        else:
            times.append(obs.time)
            self._obs[link].append(obs)

    def add_exact(self, link: Link, retx_count: int, time: float) -> None:
        if not 0 <= retx_count <= self.max_attempts - 1:
            raise ValueError(f"retx_count {retx_count} out of range")
        self._append(link, _TimedObservation(time, retx_count, None))

    def add_censored(
        self, link: Link, retx_lo: int, retx_hi: int, time: float
    ) -> None:
        self._append(link, _TimedObservation(time, None, (retx_lo, retx_hi)))

    def add_decoded(self, decoded: DecodedAnnotation, time: float) -> None:
        """Listener-compatible hook: feed every hop of one annotation."""
        for hop in decoded.hops:
            if hop.exact:
                self.add_exact(hop.link, hop.exact_count(), time)
            else:
                lo, hi = hop.retx_bounds
                self.add_censored(
                    hop.link, lo, min(hi, self.max_attempts - 1), time
                )

    # -- queries ----------------------------------------------------------------------

    def n_samples(self, link: Link, now: float) -> int:
        """Observations within (now - window, now]."""
        times = self._times.get(link)
        if not times:
            return 0
        lo = bisect.bisect_right(times, now - self.window)
        hi = bisect.bisect_right(times, now)
        return hi - lo

    def estimate(self, link: Link, now: float) -> Optional[LinkEstimate]:
        """MLE over the trailing window ending at ``now``."""
        times = self._times.get(link)
        if not times:
            return None
        lo = bisect.bisect_right(times, now - self.window)
        hi = bisect.bisect_right(times, now)
        if lo == hi:
            return None
        batch = PerLinkEstimator(
            self.max_attempts, truncation_correction=self.truncation_correction
        )
        for obs in self._obs[link][lo:hi]:
            if obs.retx is not None:
                batch.add_exact(link, obs.retx, 0.0)
            else:
                assert obs.bounds is not None
                batch.add_censored(link, obs.bounds[0], obs.bounds[1], 0.0)
        return batch.estimate(link)

    def estimates(self, now: float) -> Dict[Link, LinkEstimate]:
        """Window estimates for every link with current evidence."""
        out: Dict[Link, LinkEstimate] = {}
        for link in self._times:
            est = self.estimate(link, now)
            if est is not None:
                out[link] = est
        return out

    def timeline(
        self, link: Link, times: Sequence[float]
    ) -> List[Tuple[float, Optional[float]]]:
        """(time, windowed loss estimate) at each requested time — the
        link-quality time series a network manager would plot."""
        out = []
        for t in times:
            est = self.estimate(link, t)
            out.append((t, est.loss if est is not None else None))
        return out

    def prune(self, before: float) -> int:
        """Drop observations older than ``before``; returns count removed."""
        removed = 0
        for link in list(self._times):
            times = self._times[link]
            cut = bisect.bisect_left(times, before)
            if cut:
                del times[:cut]
                del self._obs[link][:cut]
                removed += cut
            if not times:
                del self._times[link]
                del self._obs[link]
        return removed

    def links(self) -> List[Link]:
        return sorted(self._times.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        total = sum(len(v) for v in self._obs.values())
        return f"SlidingLinkEstimator(window={self.window}, samples={total})"
