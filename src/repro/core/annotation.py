"""The Dophy in-packet annotation and its wire codec.

Every data packet carries one :class:`DophyAnnotation`. At each hop the
*receiver* (which learns the attempt index from the received frame's MAC
header) appends the hop's retransmission-count symbol to the running
arithmetic codeword, and (in explicit path mode) records its own node id.

Wire format (bit-packed, MSB-first):

====================  =======================================================
field                 width
====================  =======================================================
epoch                 ``model_manager.epoch_field_bits`` (modular epoch id)
hop_count             Elias gamma (short paths pay few bits)
path ids              ``hop_count * node_id_bits``   (explicit mode only)
arithmetic payload    everything to the end of the annotation
====================  =======================================================

The arithmetic section is the *last* section, so it needs no length
field — the radio frame's own length delimits it (our accounting uses
exact bit counts; byte padding would add < 8 bits uniformly to every
scheme). Escape extras are **bypass-coded**: the gamma bits of an
escaped count are fed through the arithmetic coder under a uniform
binary model, costing exactly one output bit each, which keeps the whole
annotation a single self-contained stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.coding.arithmetic import ArithmeticEncoder
from repro.coding.baseline_codes import EliasGammaCode
from repro.coding.bitio import BitWriter
from repro.coding.freq import FrequencyTable
from repro.core.config import DophyConfig
from repro.core.model import ModelManager
from repro.core.path_codec import PathRankModel
from repro.core.symbols import SymbolSet

__all__ = ["DophyAnnotation", "AnnotationCodec", "BYPASS_MODEL"]

_GAMMA = EliasGammaCode()
#: Uniform binary model for bypass-coded bits (exactly 1 bit each).
BYPASS_MODEL = FrequencyTable([1, 1])


@dataclass
class DophyAnnotation:
    """Mutable in-flight annotation state carried inside a packet."""

    epoch: int
    encoder: ArithmeticEncoder = field(default_factory=ArithmeticEncoder)
    path_ids: List[int] = field(default_factory=list)
    #: Encoder-side record of emitted symbols (diagnostics; not transmitted).
    symbols: List[int] = field(default_factory=list)

    @property
    def hop_count(self) -> int:
        return len(self.symbols)


class AnnotationCodec:
    """Encodes hops into annotations and computes wire sizes.

    One codec instance is shared by all (simulated) nodes — it holds the
    symbol set, the model manager (for per-epoch tables) and the header
    geometry. Decoding lives in :mod:`repro.core.decoder`.
    """

    def __init__(
        self,
        config: DophyConfig,
        model_manager: ModelManager,
        num_nodes: int,
        path_model: "PathRankModel | None" = None,
    ) -> None:
        self.config = config
        self.models = model_manager
        self.num_nodes = num_nodes
        self.symbol_set: SymbolSet = model_manager.symbol_set
        if config.path_encoding == "compressed" and path_model is None:
            raise ValueError("compressed path encoding requires a PathRankModel")
        self.path_model = path_model
        self.node_id_bits = (
            DophyConfig.node_id_bits(num_nodes)
            if config.path_encoding == "explicit"
            else 0
        )

    # -- encoding ---------------------------------------------------------------

    def new_annotation(
        self, time: Optional[float] = None, origin: Optional[int] = None
    ) -> DophyAnnotation:
        """Fresh annotation pinned to the model epoch active at ``time``.

        Without a time the newest epoch is used (zero-delay dissemination).
        Under lossy dissemination (per-node epoch tracking) the packet is
        pinned to ``origin``'s *locally received* epoch instead — a stale
        origin keeps encoding against the last model it actually got.
        """
        if origin is not None and self.models.per_node_epochs:
            epoch = self.models.epoch_of_node(origin)
        elif time is not None:
            epoch = self.models.current_epoch_for(time)
        else:
            epoch = self.models.current_epoch
        return DophyAnnotation(epoch=epoch)

    def annotate_hop(
        self,
        annotation: DophyAnnotation,
        sender_id: int,
        receiver_id: int,
        retx_count: int,
    ) -> None:
        """Append one hop's contribution (called at the receiving node)."""
        if self.config.path_encoding == "compressed":
            # Rank symbol first: the decoder must identify the receiver
            # before attributing the following count symbol to a link.
            rank = self.path_model.rank(sender_id, receiver_id)
            annotation.encoder.encode_symbol(self.path_model.table, rank)
        # Encoder-side lookups: nodes keep the last model they received,
        # so these also see epochs the sink's decode window already evicted.
        symbol_set = self.models.encoder_symbol_set_for(annotation.epoch)
        count = min(retx_count, symbol_set.max_count)
        encoded = symbol_set.to_symbol(count)
        table = self.models.encoder_table_for_link(
            annotation.epoch, (sender_id, receiver_id)
        )
        annotation.encoder.encode_symbol(table, encoded.symbol)
        annotation.symbols.append(encoded.symbol)
        if encoded.escape_extra is not None and self.config.escape_mode == "exact":
            # Bypass-code the gamma bits of the extra into the same stream.
            gamma_bits = BitWriter()
            _GAMMA.encode_value(gamma_bits, encoded.escape_extra)
            for bit in gamma_bits.to_bits():
                annotation.encoder.encode_symbol(BYPASS_MODEL, bit)
        if self.config.path_encoding == "explicit":
            annotation.path_ids.append(receiver_id)

    # -- wire size / serialization ---------------------------------------------------

    def header_bits(self, annotation: DophyAnnotation) -> int:
        """Epoch field plus the gamma-coded hop count."""
        return self.models.epoch_field_bits + _GAMMA.code_length(annotation.hop_count)

    def wire_size_bits(self, annotation: DophyAnnotation) -> int:
        """Exact on-air size the annotation would have if delivered now."""
        return (
            self.header_bits(annotation)
            + annotation.hop_count * self.node_id_bits
            + annotation.encoder.finalized_bit_length()
        )

    def serialize(self, annotation: DophyAnnotation) -> Tuple[bytes, int]:
        """Produce the actual wire bits (finalizes a copy of the codeword)."""
        arith_data, arith_bits = annotation.encoder.copy().finish()
        out = BitWriter()
        modulus = 1 << self.models.epoch_field_bits
        out.write_uint(annotation.epoch % modulus, self.models.epoch_field_bits)
        _GAMMA.encode_value(out, annotation.hop_count)
        if self.config.path_encoding == "explicit":
            for node_id in annotation.path_ids:
                out.write_uint(node_id, self.node_id_bits)
        # Copy the arithmetic payload bit-exactly; it runs to the end.
        for i in range(arith_bits):
            byte = arith_data[i // 8]
            out.write_bit((byte >> (7 - (i % 8))) & 1)
        return out.getvalue(), out.bit_length
