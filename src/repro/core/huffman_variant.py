"""Dophy-with-Huffman: the surgical arithmetic-coding ablation.

Identical to :class:`~repro.core.dophy.DophySystem` in every mechanism —
symbol aggregation, escape extras, per-epoch model updates, explicit or
assumed paths — except that per-hop symbols are coded with the *optimal
prefix code* (canonical Huffman) built from the same disseminated
frequency table. Whatever separates this variant from Dophy in the T1
bench is attributable to arithmetic coding alone.

Overhead is computed from exact per-symbol code lengths (Huffman
decoding round-trips are covered by the coder's own tests; this observer
is an accounting + estimation harness, like the other baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.coding.baseline_codes import EliasGammaCode
from repro.coding.huffman import HuffmanCode
from repro.core.config import DophyConfig
from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.core.model import ModelManager
from repro.core.symbols import SymbolSet
from repro.net.packet import Packet
from repro.net.simulation import CollectionSimulation, NullObserver

__all__ = ["HuffmanDophyVariant", "HuffmanVariantReport"]

_GAMMA = EliasGammaCode()


@dataclass
class HuffmanVariantReport:
    """Estimates plus overhead for the Huffman variant."""

    estimates: Dict[Tuple[int, int], LinkEstimate]
    annotation_bits: List[int] = field(default_factory=list)
    annotation_hops: List[int] = field(default_factory=list)
    dissemination_bits: int = 0
    model_updates: int = 0

    @property
    def mean_annotation_bits(self) -> float:
        if not self.annotation_bits:
            return 0.0
        return sum(self.annotation_bits) / len(self.annotation_bits)

    @property
    def mean_bits_per_hop(self) -> float:
        hops = sum(self.annotation_hops)
        return sum(self.annotation_bits) / hops if hops else 0.0

    @property
    def total_annotation_bits(self) -> int:
        return sum(self.annotation_bits)

    @property
    def total_overhead_bits(self) -> int:
        return self.total_annotation_bits + self.dissemination_bits


@dataclass
class _Inflight:
    epoch: int
    bits: int = 0
    hops: int = 0
    records: List[Tuple[Tuple[int, int], int]] = field(default_factory=list)


class HuffmanDophyVariant(NullObserver):
    """Dophy's pipeline with canonical Huffman instead of arithmetic coding."""

    def __init__(self, config: Optional[DophyConfig] = None) -> None:
        self.config = config or DophyConfig()
        if self.config.path_encoding == "compressed":
            raise ValueError(
                "compressed paths require in-stream arithmetic coding; "
                "use 'explicit' or 'assumed' for the Huffman variant"
            )
        self._models: Optional[ModelManager] = None
        self._estimator: Optional[PerLinkEstimator] = None
        self._symbol_set: Optional[SymbolSet] = None
        self._node_id_bits = 0
        self._huffman_cache: Dict[Tuple[int, int], HuffmanCode] = {}
        self._inflight: Dict[Tuple[int, int], _Inflight] = {}
        self._annotation_bits: List[int] = []
        self._annotation_hops: List[int] = []

    def attach(self, simulation: CollectionSimulation) -> None:
        cfg = self.config
        max_count = simulation.config.mac.max_retries
        k = cfg.aggregation_threshold
        if k is not None:
            k = min(k, max_count) if max_count >= 1 else None
        self._symbol_set = SymbolSet(max(max_count, 0), k)
        self._models = ModelManager(
            self._symbol_set,
            initial_expected_loss=cfg.initial_expected_loss,
            update_period=cfg.model_update_period,
            estimation_window=cfg.estimation_window,
            table_precision=cfg.table_precision,
            epoch_history=cfg.epoch_history,
            num_nodes_for_dissemination=simulation.topology.num_nodes,
            bits_per_frequency=cfg.bits_per_frequency,
            num_classes=cfg.link_classes,
        )
        self._estimator = PerLinkEstimator(max_attempts=max_count + 1)
        self._node_id_bits = (
            DophyConfig.node_id_bits(simulation.topology.num_nodes)
            if cfg.path_encoding == "explicit"
            else 0
        )
        if cfg.model_update_period is not None:
            simulation.sim.every(
                cfg.model_update_period,
                lambda: self._on_model_update(simulation.sim.now),
            )

    def _on_model_update(self, now: float) -> None:
        if self._models.maybe_update(now):
            self._huffman_cache.clear()  # new epoch -> rebuild codes lazily

    def _code_for(self, epoch: int, link: Tuple[int, int]) -> HuffmanCode:
        class_id = self._models.class_of(epoch, link)
        key = (epoch, class_id)
        code = self._huffman_cache.get(key)
        if code is None:
            code = HuffmanCode(self._models.table(epoch, class_id))
            self._huffman_cache[key] = code
        return code

    # -- packet lifecycle ----------------------------------------------------------

    def on_packet_created(self, packet: Packet, time: float) -> None:
        self._inflight[packet.key] = _Inflight(epoch=self._models.current_epoch)

    def on_hop_delivered(
        self, packet: Packet, sender: int, receiver: int, first_attempt: int, time: float
    ) -> None:
        state = self._inflight[packet.key]
        count = min(first_attempt - 1, self._symbol_set.max_count)
        encoded = self._symbol_set.to_symbol(count)
        code = self._code_for(state.epoch, (sender, receiver))
        state.bits += code.code_length(encoded.symbol)
        if encoded.escape_extra is not None and self.config.escape_mode == "exact":
            state.bits += _GAMMA.code_length(encoded.escape_extra)
        state.bits += self._node_id_bits
        state.hops += 1
        state.records.append(((sender, receiver), count))

    def on_packet_dropped(self, packet: Packet, time: float) -> None:
        self._inflight.pop(packet.key, None)

    def on_packet_delivered(self, packet: Packet, time: float) -> None:
        state = self._inflight.pop(packet.key)
        header = self._models.epoch_field_bits + _GAMMA.code_length(state.hops)
        self._annotation_bits.append(header + state.bits)
        self._annotation_hops.append(state.hops)
        pairs = []
        for link, count in state.records:
            if (
                self.config.escape_mode == "censored"
                and self._symbol_set.to_symbol(count).escape_extra is not None
            ):
                lo, hi = self._symbol_set.symbol_counts_range(
                    self._symbol_set.escape_symbol
                )
                self._estimator.add_censored(link, lo, hi, time)
            else:
                self._estimator.add_exact(link, count, time)
            pairs.append((link, count))
        self._models.observe_hops(pairs, time)

    def control_overhead_bits(self) -> int:
        return self._models.total_dissemination_bits if self._models else 0

    # -- results ------------------------------------------------------------------------

    def report(self) -> HuffmanVariantReport:
        if self._estimator is None:
            raise RuntimeError("HuffmanDophyVariant not attached yet")
        return HuffmanVariantReport(
            estimates=self._estimator.estimates(),
            annotation_bits=list(self._annotation_bits),
            annotation_hops=list(self._annotation_hops),
            dissemination_bits=self._models.total_dissemination_bits,
            model_updates=self._models.updates_performed,
        )
