"""Parallel execution engine for replicated runs and benchmark sweeps.

:class:`ParallelRunner` shards independent simulation tasks — one
``(scenario, seed)`` replicate each — over a process pool. Determinism
is the design constraint everything else bends around:

* every task carries its *own* seed (derived up-front via
  :func:`repro.utils.rng.spawn_seeds`), so a replicate's random streams
  never depend on which worker ran it or in what order;
* workers execute exactly the same function the serial path executes,
  so ``jobs=N`` output is byte-identical to ``jobs=1`` (enforced by
  ``tests/exec/test_determinism.py``);
* results are collected positionally, so aggregation order matches the
  serial loop regardless of completion order.

Dispatch is chunked (``chunksize`` tasks per worker invocation), with a
per-task timeout and crashed-worker retry: a worker that dies (OOM
killer, segfaulting native code) breaks the pool, which is rebuilt and
the affected chunks re-enqueued up to ``max_retries`` times. Exceptions
*raised by the task itself* are never retried — a deterministic failure
would only fail identically again, and hiding it behind retries would
mask real bugs.

When a cache directory is configured, each comparison task is keyed by
``(code version, scenario, approaches, seed, scoring knobs)`` in a
:class:`repro.exec.cache.ResultCache`; re-running a bench only computes
the replicates that are missing, and a fully warm rerun executes zero
simulations (see :attr:`ParallelRunner.stats`).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.exec.cache import ResultCache

if TYPE_CHECKING:  # avoid a circular import; workers import lazily
    from repro.workloads.runner import ApproachSpec, ComparisonRow
    from repro.workloads.scenarios import Scenario

__all__ = [
    "ComparisonTask",
    "ComparisonTaskResult",
    "RunSummary",
    "ExecutionStats",
    "ExecutionError",
    "ParallelRunner",
]

#: Version tag baked into every comparison cache key; bump on layout changes.
_COMPARISON_KEY = "comparison-task/v1"


class ExecutionError(RuntimeError):
    """A task could not be completed (crashes/timeouts beyond the retry budget)."""


@dataclass(frozen=True)
class ComparisonTask:
    """One self-contained ``run_comparison`` unit of work.

    Everything a worker needs is in here and picklable; the scenario and
    approach specs must therefore be built from module-level callables
    (see ``tests/workloads/test_dispatchable.py``).
    """

    scenario: "Scenario"
    approaches: Tuple["ApproachSpec", ...]
    seed: int
    min_support: int = 0
    truth_kind: str = "empirical"


@dataclass(frozen=True)
class _TaskPayload:
    """What actually crosses the process boundary for one task.

    Separate from :class:`ComparisonTask` on purpose: the result-cache
    key digests the *task* alone, so runner-level execution settings
    (like the scenario-cache directory, which cannot change results by
    the bit-identity contract) ride alongside without invalidating every
    cached result when they change.
    """

    task: ComparisonTask
    scenario_cache_dir: Optional[str] = None


@dataclass(frozen=True)
class RunSummary:
    """Small, picklable digest of a SimulationResult (the full result —
    packets, channel, routing state — never crosses the process boundary)."""

    delivery_ratio: float
    churn_rate: float
    packets_generated: int
    packets_delivered: int
    mean_hop_count: float


@dataclass(frozen=True)
class ComparisonTaskResult:
    """What one replicate sends back to the coordinating process."""

    rows: Dict[str, "ComparisonRow"]
    summary: RunSummary


@dataclass
class ExecutionStats:
    """What one engine invocation did (exposed as ``runner.stats``)."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    wall_seconds: float = 0.0

    def describe(self) -> str:
        parts = [
            f"tasks={self.tasks}",
            f"cache_hits={self.cache_hits}",
            f"executed={self.executed}",
        ]
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.timeouts:
            parts.append(f"timeouts={self.timeouts}")
        parts.append(f"wall={self.wall_seconds:.2f}s")
        return ", ".join(parts)


def _execute_comparison_task(
    payload: "ComparisonTask | _TaskPayload",
) -> ComparisonTaskResult:
    """Run one replicate — the *same* code path serial execution uses.

    Accepts a bare :class:`ComparisonTask` (direct callers, older tests)
    or a :class:`_TaskPayload` carrying runner-level settings.
    """
    from repro.workloads.runner import run_comparison

    if isinstance(payload, _TaskPayload):
        task = payload.task
        scenario_cache_dir = payload.scenario_cache_dir
    else:
        task = payload
        scenario_cache_dir = None
    rows, result = run_comparison(
        task.scenario,
        list(task.approaches),
        seed=task.seed,
        min_support=task.min_support,
        truth_kind=task.truth_kind,
        scenario_cache_dir=scenario_cache_dir,
    )
    delivered = result.delivered_packets
    mean_hops = (
        sum(p.hop_count for p in delivered) / len(delivered) if delivered else 0.0
    )
    summary = RunSummary(
        delivery_ratio=result.delivery_ratio,
        churn_rate=result.churn_rate,
        packets_generated=result.ground_truth.packets_generated,
        packets_delivered=len(delivered),
        mean_hop_count=mean_hops,
    )
    return ComparisonTaskResult(rows=rows, summary=summary)


def _chunk_worker(fn: Callable[[Any], Any], payloads: Tuple[Any, ...]) -> List[Any]:
    """Executed inside a worker process: run one chunk of tasks in order."""
    return [fn(p) for p in payloads]


@dataclass
class _Chunk:
    indices: Tuple[int, ...]
    payloads: Tuple[Any, ...]
    attempts: int = 0


class ParallelRunner:
    """Process-pool executor for independent simulation tasks.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (the default) runs everything in-process
        — no pool, no pickling — which is also the reference output the
        determinism suite compares parallel runs against.
    cache_dir:
        Enable the content-addressed result cache at this directory.
    task_timeout:
        Seconds allowed per task (scaled by chunk length). A chunk that
        exceeds it is abandoned (its pool is discarded) and re-enqueued.
        None disables timeouts.
    max_retries:
        How many times a chunk may be re-enqueued after a worker crash
        or timeout before :class:`ExecutionError` is raised.
    chunksize:
        Tasks per worker invocation. The default (1) maximizes load
        balance and gives exact per-task timeout/retry granularity;
        raise it only for very large fleets of very short tasks.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache_dir: Optional[str] = None,
        scenario_cache_dir: Optional[str] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        chunksize: int = 1,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be > 0 or None")
        self.jobs = jobs
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.chunksize = chunksize
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if cache_dir is not None else None
        )
        #: Built-scenario cache directory handed to every comparison task
        #: (see :mod:`repro.workloads.scenario_cache`). Result-neutral by
        #: contract, so it is not part of the result-cache key.
        self.scenario_cache_dir = scenario_cache_dir
        self.stats = ExecutionStats()

    # -- public API -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply a picklable module-level ``fn`` to every item, in order.

        Results come back positionally, whatever the completion order.
        No caching (use :meth:`run_comparisons` for cached simulation
        tasks).
        """
        # Host-clock reads below only feed ExecutionStats/timeout tracking;
        # results are collected positionally, so timing never changes output.
        t0 = time.monotonic()  # reprolint: disable=RPL002
        self.stats = ExecutionStats(tasks=len(items))
        out = self._dispatch(fn, list(enumerate(items)), self.stats)
        self.stats.wall_seconds = time.monotonic() - t0  # reprolint: disable=RPL002
        return out

    def run_comparisons(
        self, tasks: Sequence[ComparisonTask]
    ) -> List[ComparisonTaskResult]:
        """Execute comparison replicates, consulting/filling the cache."""
        t0 = time.monotonic()  # reprolint: disable=RPL002  (stats only)
        stats = ExecutionStats(tasks=len(tasks))
        self.stats = stats
        results: Dict[int, ComparisonTaskResult] = {}
        keys: Dict[int, str] = {}
        missing: List[int] = []
        for i, task in enumerate(tasks):
            if self.cache is not None:
                key = self.cache.key_for(_COMPARISON_KEY, task)
                keys[i] = key
                hit = self.cache.load(key)
                if hit is not None:
                    results[i] = hit
                    stats.cache_hits += 1
                    continue
            missing.append(i)
        computed = self._dispatch(
            _execute_comparison_task,
            [
                (i, _TaskPayload(tasks[i], self.scenario_cache_dir))
                for i in missing
            ],
            stats,
        )
        for i, value in zip(missing, computed):
            results[i] = value
            if self.cache is not None:
                self.cache.store(keys[i], value, _COMPARISON_KEY, tasks[i])
        stats.wall_seconds = time.monotonic() - t0  # reprolint: disable=RPL002
        return [results[i] for i in range(len(tasks))]

    # -- dispatch core ----------------------------------------------------------

    def _dispatch(
        self,
        fn: Callable[[Any], Any],
        indexed: List[Tuple[int, Any]],
        stats: ExecutionStats,
    ) -> List[Any]:
        """Run ``fn`` over ``(original_index, payload)`` pairs; return values
        ordered by position in ``indexed``."""
        stats.executed += len(indexed)
        if not indexed:
            return []
        if self.jobs == 1:
            # The reference path: same function, same order, no pool.
            # (Even a single task goes through the pool when jobs > 1 —
            # crash/timeout isolation needs the process boundary.)
            return [fn(payload) for _, payload in indexed]
        by_index: Dict[int, Any] = {}
        chunks = deque(
            _Chunk(
                indices=tuple(i for i, _ in indexed[pos : pos + self.chunksize]),
                payloads=tuple(p for _, p in indexed[pos : pos + self.chunksize]),
            )
            for pos in range(0, len(indexed), self.chunksize)
        )
        active: Dict[Future, _Chunk] = {}
        started: Dict[Future, float] = {}
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while chunks or active:
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
                # Keep a window of at most `jobs` chunks in flight so a
                # submitted chunk starts (almost) immediately — that makes
                # wall-clock-since-submit an honest per-task timeout.
                while chunks and len(active) < self.jobs:
                    chunk = chunks.popleft()
                    fut = pool.submit(_chunk_worker, fn, chunk.payloads)
                    active[fut] = chunk
                    # reprolint: disable-next-line=RPL002  (timeout tracking)
                    started[fut] = time.monotonic()
                done, _ = wait(
                    set(active),
                    timeout=0.05 if self.task_timeout is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for fut in done:
                    chunk = active.pop(fut)
                    started.pop(fut, None)
                    try:
                        values = fut.result()
                    except BrokenProcessPool:
                        self._requeue(chunk, chunks, stats, reason="crash")
                        broken = True
                    except Exception as exc:
                        raise ExecutionError(
                            f"task {chunk.indices} raised {type(exc).__name__}: {exc}"
                        ) from exc
                    else:
                        for i, value in zip(chunk.indices, values):
                            by_index[i] = value
                if broken:
                    # The pool is dead: every in-flight chunk is lost too.
                    # We cannot tell which task killed the worker, so every
                    # casualty's attempt counter advances.
                    for chunk in active.values():
                        self._requeue(chunk, chunks, stats, reason="crash")
                    active.clear()
                    started.clear()
                    pool.shutdown(wait=False)
                    pool = None
                    continue
                if self.task_timeout is not None:
                    now = time.monotonic()  # reprolint: disable=RPL002
                    limit_exceeded = [
                        fut
                        for fut, chunk in active.items()
                        if now - started[fut]
                        > self.task_timeout * len(chunk.payloads)
                    ]
                    if limit_exceeded:
                        stats.timeouts += len(limit_exceeded)
                        for fut in limit_exceeded:
                            self._requeue(
                                active.pop(fut), chunks, stats, reason="timeout"
                            )
                            started.pop(fut, None)
                        # Hung workers can't be interrupted portably —
                        # abandon the whole pool and resubmit the innocent
                        # in-flight chunks (no attempt penalty for those).
                        for chunk in active.values():
                            chunks.append(chunk)
                        active.clear()
                        started.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return [by_index[i] for i, _ in indexed]

    def _requeue(
        self,
        chunk: _Chunk,
        chunks: "deque[_Chunk]",
        stats: ExecutionStats,
        *,
        reason: str,
    ) -> None:
        chunk.attempts += 1
        if chunk.attempts > self.max_retries:
            raise ExecutionError(
                f"task {chunk.indices} failed by {reason} "
                f"{chunk.attempts} times (max_retries={self.max_retries})"
            )
        stats.retries += 1
        chunks.append(chunk)
