"""Stable content hashing for cache keys.

The result cache (:mod:`repro.exec.cache`) keys every stored replicate by
a digest of *everything that determines its value*: the scenario, the
approach specs, the seed, the scoring knobs, and the version of the code
itself. Two requirements shape the implementation:

* the digest must be identical across processes and interpreter
  invocations (so a cache written by one run is readable by the next) —
  plain ``hash()`` and ``pickle`` memoization are both out;
* the description must be *inspectable*: each cache entry stores the
  canonical text it was keyed by, so a human can ``ResultCache.inspect``
  an entry and see exactly which configuration produced it.

:func:`stable_describe` therefore renders an object graph into a
canonical string (sorted dict keys, qualified names for callables,
dataclasses by field) and :func:`stable_digest` hashes that string.
:func:`code_version` digests every ``.py`` file of the installed
``repro`` package so that editing any source file invalidates the cache.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import pathlib
from typing import Any

__all__ = ["stable_describe", "stable_digest", "code_version"]


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "?")
    qualname = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(obj)))
    return f"{module}:{qualname}"


def stable_describe(obj: Any) -> str:
    """Render ``obj`` into a canonical, process-independent string."""
    if obj is None or isinstance(obj, (bool, int)):
        return repr(obj)
    if isinstance(obj, float):
        # repr round-trips doubles exactly and is stable across platforms.
        return repr(obj)
    if isinstance(obj, str):
        return repr(obj)
    if isinstance(obj, bytes):
        return f"bytes:{obj.hex()}"
    if isinstance(obj, (list, tuple)):
        kind = "list" if isinstance(obj, list) else "tuple"
        return f"{kind}[" + ",".join(stable_describe(x) for x in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "set{" + ",".join(sorted(stable_describe(x) for x in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted(
            (stable_describe(k), stable_describe(v)) for k, v in obj.items()
        )
        return "dict{" + ",".join(f"{k}=>{v}" for k, v in items) + "}"
    if isinstance(obj, functools.partial):
        return (
            f"partial({stable_describe(obj.func)},"
            f"args={stable_describe(obj.args)},"
            f"kwargs={stable_describe(obj.keywords)})"
        )
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={stable_describe(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{_qualified_name(type(obj))}({fields})"
    if isinstance(obj, type) or callable(obj):
        # Plain functions, methods and classes are identified by where
        # they live; their behaviour is covered by code_version().
        return f"callable:{_qualified_name(obj)}"
    # numpy scalars and anything else exposing item()/tolist().
    for attr in ("tolist", "item"):
        converter = getattr(obj, attr, None)
        if converter is not None:
            try:
                return stable_describe(converter())
            except Exception:  # pragma: no cover - fall through to vars()
                break
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return f"{_qualified_name(type(obj))}*{stable_describe(state)}"
    raise TypeError(f"cannot stably describe {type(obj)!r}")


def stable_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical description of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        h.update(stable_describe(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``.py`` source file of the ``repro`` package.

    Any edit to the package invalidates all cache entries — crude but
    safe, and cheap (one read of the source tree per process).
    """
    import repro

    root = pathlib.Path(repro.__file__).parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode("utf-8"))
        h.update(b"\x00")
        h.update(path.read_bytes())
        h.update(b"\x00")
    return h.hexdigest()
