"""Parallel replicated-run engine: process-pool sharding with a
content-addressed result cache and determinism guarantees (DESIGN.md §6)."""

from repro.exec.cache import ResultCache
from repro.exec.hashing import code_version, stable_describe, stable_digest
from repro.exec.parallel import (
    ComparisonTask,
    ComparisonTaskResult,
    ExecutionError,
    ExecutionStats,
    ParallelRunner,
    RunSummary,
)

__all__ = [
    "ComparisonTask",
    "ComparisonTaskResult",
    "ExecutionError",
    "ExecutionStats",
    "ParallelRunner",
    "ResultCache",
    "RunSummary",
    "code_version",
    "stable_describe",
    "stable_digest",
]
