"""Content-addressed on-disk cache of replicate results.

Each entry is one computed task result (e.g. one ``run_comparison``
replicate), stored under a key that digests the full task description
plus :func:`repro.exec.hashing.code_version`. Re-running a bench or a
replicated sweep therefore only computes the replicates that are
actually missing; everything else is a file read.

Layout (two-level fan-out keeps directories small)::

    <cache_dir>/<key[:2]>/<key>.pkl

Every entry pickles a ``{"description": <canonical key text>,
"result": <object>}`` mapping, so entries can be audited with
:meth:`ResultCache.inspect` without re-deriving the key. Writes are
atomic (temp file + ``os.replace``) so a crashed or parallel writer can
never leave a truncated entry behind; concurrent writers of the same key
simply race to an identical file.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exec.hashing import code_version, stable_describe, stable_digest

__all__ = ["ResultCache"]


class ResultCache:
    """Content-addressed pickle store keyed by task description + code version."""

    def __init__(self, cache_dir: "str | os.PathLike[str]") -> None:
        self.root = Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- keys -------------------------------------------------------------------

    def key_for(self, *parts: Any) -> str:
        """Digest of ``parts`` plus the current code version."""
        return stable_digest(code_version(), *parts)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- store / load -----------------------------------------------------------

    def load(self, key: str) -> Optional[Any]:
        """Return the cached result for ``key``, or None on miss.

        Unreadable entries (truncated, written by an incompatible
        pickle) are treated as misses and removed.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            return entry["result"]
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - cleanup race  # reprolint: disable=RPL009 - cleanup race is benign: the entry is re-deleted on next miss
                pass
            return None

    def store(self, key: str, result: Any, *parts: Any) -> None:
        """Atomically persist ``result`` under ``key``.

        ``parts`` (the same values passed to :meth:`key_for`) are stored
        as canonical text alongside the result for later inspection.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "description": stable_describe(tuple(parts)),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                # Durability, not just atomicity: without the fsync a crash
                # shortly after os.replace can leave a zero-length entry.
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # reprolint: disable=RPL009 - tmp-file cleanup race; the original exception is re-raised
                pass
            raise

    # -- maintenance / inspection -----------------------------------------------

    def _entries(self) -> Iterator[Path]:
        yield from self.root.glob("??/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def inspect(self, key: str) -> Optional[Tuple[str, Any]]:
        """(canonical description, result) for an entry, or None."""
        path = self._path(key)
        if not path.exists():
            return None
        with path.open("rb") as fh:
            entry = pickle.load(fh)
        return entry["description"], entry["result"]

    def keys(self) -> Iterator[str]:
        for path in self._entries():
            yield path.stem

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent wipe  # reprolint: disable=RPL009 - concurrent wipe already removed it; `removed` stays accurate
                pass
        return removed

    def size_bytes(self) -> int:
        """Total bytes of all entries (for `du`-style reporting)."""
        return sum(p.stat().st_size for p in self._entries())

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self), "bytes": self.size_bytes()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
