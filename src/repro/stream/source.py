"""Stream sources: turn traces and simulations into packet-record streams.

The sink consumes an ordered iterable of
:class:`~repro.stream.records.PacketRecord` plus two pieces of run
metadata (``max_attempts`` for the estimator's truncated likelihood and,
when available, the ground-truth loss map for offline scoring). A
:class:`StreamBundle` carries exactly that, built from either of the two
sources the repo already has:

* a recorded JSONL trace (:mod:`repro.net.tracefile`) — replay without
  re-simulating, or ingest data recorded elsewhere;
* a live :class:`~repro.net.simulation.SimulationResult` / scenario run —
  ``repro serve --scenario ...`` simulates and streams in one step.

Records preserve source order (trace line order / simulation packet
order); the sink's zero-fault bit-equivalence guarantee is stated
against that order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.net.tracefile import PathLike, TracePacket, load_trace, truth_from_header
from repro.stream.records import PacketRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.simulation import SimulationResult
    from repro.workloads.scenarios import Scenario

__all__ = [
    "StreamBundle",
    "bundle_from_result",
    "bundle_from_scenario",
    "bundle_from_trace",
]


@dataclass(frozen=True)
class StreamBundle:
    """An ordered record stream plus the metadata the sink needs."""

    max_attempts: int
    records: Tuple[PacketRecord, ...]
    #: Ground-truth link losses when the source carried them (else empty).
    true_losses: Dict[Tuple[int, int], float] = field(default_factory=dict)


def _record_from_trace_packet(packet: TracePacket) -> PacketRecord:
    return PacketRecord(
        origin=packet.origin,
        seqno=packet.seqno,
        created_at=packet.created_at,
        delivered=packet.delivered,
        hops=tuple(packet.hops),
    )


def bundle_from_trace(path: PathLike) -> StreamBundle:
    """Load a recorded JSONL trace as a stream bundle."""
    header, packets = load_trace(path)
    return StreamBundle(
        max_attempts=header.max_attempts,
        records=tuple(_record_from_trace_packet(p) for p in packets),
        true_losses=truth_from_header(header),
    )


def bundle_from_result(result: "SimulationResult") -> StreamBundle:
    """Reduce a finished simulation to a stream bundle."""
    records: List[PacketRecord] = []
    for packet in result.packets:
        records.append(
            PacketRecord(
                origin=packet.origin,
                seqno=packet.seqno,
                created_at=packet.created_at,
                delivered=packet.delivered,
                hops=tuple(
                    (h.sender, h.receiver, h.attempts, h.delivered)
                    for h in packet.hops
                ),
            )
        )
    return StreamBundle(
        max_attempts=result.config.mac.max_attempts,
        records=tuple(records),
        true_losses=dict(result.ground_truth.true_loss_map()),
    )


def bundle_from_scenario(scenario: "Scenario", seed: int) -> StreamBundle:
    """Run one scenario replicate and stream its packets."""
    result = scenario.make_simulation(seed).run()
    return bundle_from_result(result)
