"""Picklable packet records and the stable shard hash.

The streaming sink moves packet evidence across three boundaries — the
bounded ingest queue, the per-shard write-ahead spool, and (at
``jobs > 1``) the :class:`~repro.exec.parallel.ParallelRunner` process
pool — so the unit of work must be a small, immutable, picklable and
JSON-able value. :class:`PacketRecord` is that unit: one packet's
journey reduced to exactly what the estimator consumes.

Shard assignment must be identical in every process and across restarts
(Python's builtin ``hash`` is salted per process), so :func:`shard_index`
uses the same unsalted FNV-1a construction as
:mod:`repro.utils.rng`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.core.estimator import PerLinkEstimator

__all__ = [
    "PacketRecord",
    "evidence_links",
    "feed_estimator",
    "record_from_dict",
    "record_to_dict",
    "shard_index",
]

#: (sender, receiver, attempts, delivered) — one hop of a packet's path.
Hop = Tuple[int, int, int, bool]


@dataclass(frozen=True)
class PacketRecord:
    """One packet's journey, reduced to what the sink's estimators need."""

    origin: int
    seqno: int
    created_at: float
    delivered: bool
    #: (sender, receiver, attempts, delivered) per hop attempt.
    hops: Tuple[Hop, ...]


def record_to_dict(record: PacketRecord) -> Dict[str, Any]:
    """JSON-able form (used by the WAL spool and the sink manifest)."""
    return {
        "origin": record.origin,
        "seqno": record.seqno,
        "created_at": record.created_at,
        "delivered": record.delivered,
        "hops": [[s, r, a, d] for s, r, a, d in record.hops],
    }


def record_from_dict(data: Dict[str, Any]) -> PacketRecord:
    """Inverse of :func:`record_to_dict` (raises on malformed input)."""
    return PacketRecord(
        origin=int(data["origin"]),
        seqno=int(data["seqno"]),
        created_at=float(data["created_at"]),
        delivered=bool(data["delivered"]),
        hops=tuple(
            (int(s), int(r), int(a), bool(d)) for s, r, a, d in data["hops"]
        ),
    )


def shard_index(origin: int, seqno: int, n_shards: int) -> int:
    """Stable shard for a packet: FNV-1a over (origin, seqno), mod shards.

    Process- and restart-invariant (no hash salting), and uniform enough
    that shards stay balanced under round-robin seqnos.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    acc = 0x811C9DC5
    for value in (origin, seqno):
        for byte in (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big"):
            acc ^= byte
            acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc % n_shards


def feed_estimator(
    estimator: PerLinkEstimator, records: Iterable[PacketRecord]
) -> int:
    """Feed records' hop evidence into an estimator; returns hops added.

    This is the **single** evidence rule of the streaming sink, and it
    deliberately mirrors :func:`repro.net.tracefile.replay_into_estimator`
    with ``delivered_only=True``: only delivered packets reach the sink
    in-band, and only delivered hops carry an attempt count. Keeping one
    rule in one place is what makes "zero-fault streaming is bit-identical
    to the batch sink" a structural property rather than a coincidence.
    """
    added = 0
    for record in records:
        if not record.delivered:
            continue
        for sender, receiver, attempts, delivered in record.hops:
            if not delivered:
                continue
            estimator.add_exact(
                (sender, receiver), attempts - 1, record.created_at
            )
            added += 1
    return added


def evidence_links(records: Iterable[PacketRecord]) -> List[Tuple[int, int]]:
    """Sorted set of links the records would have contributed evidence to."""
    links = {
        (sender, receiver)
        for record in records
        if record.delivered
        for sender, receiver, _attempts, delivered in record.hops
        if delivered
    }
    return sorted(links)
