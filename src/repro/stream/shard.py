"""One shard of the streaming sink: estimator + spool + checkpoint.

A :class:`ShardWorker` owns one :class:`~repro.core.estimator.PerLinkEstimator`
covering the links whose packets hash to it, and the two durable
artifacts recovery needs: a write-ahead spool (every record is logged
before any estimator sees it) and a versioned checkpoint (written every
few snapshots, after which the spool's acked prefix is truncated).

The apply step is factored as the *stateless* module-level
:func:`shard_apply_task` — fold a batch into a fresh estimator, return
its ``state_dict()`` delta — so the sink can run it inline (``jobs=1``)
or ship it through :class:`repro.exec.parallel.ParallelRunner`'s process
pool (``jobs>1``, with its chunked dispatch, per-task timeout and
crashed-worker retry) and merge the delta positionally either way.
Because :meth:`PerLinkEstimator.merge` is commutative/associative over
sufficient statistics (the property ``tests/stream/test_merge_properties.py``
pins), both paths produce byte-identical shard state.

Recovery invariant: ``restore()`` rebuilds the estimator *from durable
state only* (checkpoint + spool replay), never from what the crashed
worker had in memory — so restore is idempotent, and a restored shard is
field-identical to one that never crashed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.estimator import PerLinkEstimator
from repro.stream.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.records import (
    PacketRecord,
    feed_estimator,
    record_from_dict,
    record_to_dict,
)
from repro.sanitize import hooks as _sanitize_hooks
from repro.stream.storage import BlobStore
from repro.stream.wal import WriteAheadLog

__all__ = ["ShardStats", "ShardWorker", "shard_apply_task"]

#: (max_attempts, truncation_correction, record dicts) — one apply batch.
ApplyPayload = Tuple[int, bool, Tuple[Dict[str, Any], ...]]


def shard_apply_task(payload: ApplyPayload) -> Dict[str, Any]:
    """Stateless apply: fold a record batch into a fresh estimator.

    Returns the fresh estimator's ``state_dict()`` — a pure function of
    the payload, safe to run in any process and to retry after a worker
    crash. The coordinator merges the delta into the shard's live
    estimator.
    """
    max_attempts, truncation_correction, rec_dicts = payload
    delta = PerLinkEstimator(
        max_attempts, truncation_correction=truncation_correction
    )
    feed_estimator(delta, [record_from_dict(d) for d in rec_dicts])
    return delta.state_dict()


@dataclass
class ShardStats:
    """What one shard did over the sink's lifetime."""

    logged: int = 0
    applied: int = 0
    crashes: int = 0
    stalls: int = 0
    restores: int = 0
    checkpoints: int = 0
    replayed: int = 0


class ShardWorker:
    """Supervised owner of one shard's estimator and durable state."""

    def __init__(
        self,
        index: int,
        max_attempts: int,
        store: BlobStore,
        *,
        truncation_correction: bool = True,
    ) -> None:
        if index < 0:
            raise ValueError("shard index must be >= 0")
        self.index = index
        self.max_attempts = max_attempts
        self.truncation_correction = truncation_correction
        self.store = store
        self.wal = WriteAheadLog(store, f"shard-{index:03d}.wal")
        self.checkpoint_name = f"shard-{index:03d}.ckpt"
        self.estimator: Optional[PerLinkEstimator] = self._fresh()
        #: Highest spool sequence ever logged / folded into ``estimator``.
        self.seq_logged = 0
        self.seq_applied = 0
        self.stats = ShardStats()

    def _fresh(self) -> PerLinkEstimator:
        return PerLinkEstimator(
            self.max_attempts, truncation_correction=self.truncation_correction
        )

    # -- the write-ahead contract -----------------------------------------------------

    def log(self, records: Sequence[PacketRecord]) -> None:
        """Spool records durably *before* any apply step may see them."""
        for record in records:
            self.seq_logged += 1
            self.wal.append(self.seq_logged, record)
        self.stats.logged += len(records)

    def payload(self, records: Sequence[PacketRecord]) -> ApplyPayload:
        """Picklable apply-task payload for this round's batch."""
        return (
            self.max_attempts,
            self.truncation_correction,
            tuple(record_to_dict(r) for r in records),
        )

    def absorb(self, delta_state: Dict[str, Any], count: int) -> None:
        """Merge an apply task's delta; advances the applied watermark."""
        if self.estimator is None:
            raise RuntimeError(f"shard {self.index} is down; restore first")
        self.estimator.merge(PerLinkEstimator.from_state(delta_state))
        self.seq_applied += count
        self.stats.applied += count
        sanitizer = _sanitize_hooks.ACTIVE
        if sanitizer is not None:
            sanitizer.record_effect("apply", self.wal.name, self.seq_applied)

    @property
    def lag(self) -> int:
        """Spooled-but-unapplied records (non-zero while down/backing off)."""
        return self.seq_logged - self.seq_applied

    # -- crash / recovery -------------------------------------------------------------

    def crash(self) -> None:
        """The worker died: in-memory estimator state is gone."""
        self.estimator = None

    def peek_durable(self) -> Tuple[PerLinkEstimator, int, float]:
        """(estimator, seq, max record time) rebuilt from durable state only.

        Checkpoint (if any) plus full spool replay — exactly what
        :meth:`restore` installs, but without touching worker state, so
        the sink can fold a *down* shard's last durable view into global
        snapshots while its backoff elapses.
        """
        try:
            ckpt = load_checkpoint(self.store, self.checkpoint_name)
        except CheckpointError as exc:
            if exc.cause != "missing":
                raise
            est, seq = self._fresh(), 0
        else:
            if ckpt.get("shard") != self.index:
                raise CheckpointError(
                    "malformed",
                    f"checkpoint names shard {ckpt.get('shard')!r}, "
                    f"expected {self.index}",
                )
            try:
                est = PerLinkEstimator.from_state(ckpt["estimator"])
                seq = int(ckpt["seq"])
            except (KeyError, TypeError, ValueError) as exc2:
                raise CheckpointError(
                    "malformed", f"invalid estimator state: {exc2}"
                ) from exc2
        max_time = 0.0
        replayed: List[PacketRecord] = []
        for seq, record in self.wal.replay(seq):
            replayed.append(record)
            max_time = max(max_time, record.created_at)
        feed_estimator(est, replayed)
        self.stats.replayed += len(replayed)
        return est, seq, max_time

    def restore(self) -> float:
        """Rebuild the live estimator from checkpoint + spool replay.

        Returns the max record time replayed (0.0 if none) so the sink
        can keep its stream clock honest. Idempotent: restoring twice is
        the same as restoring once.
        """
        est, seq, max_time = self.peek_durable()
        self.estimator = est
        self.seq_applied = max(seq, self.wal.max_seq())
        self.seq_logged = max(self.seq_logged, self.seq_applied)
        self.stats.restores += 1
        return max_time

    def checkpoint(self) -> None:
        """Durably snapshot the estimator; truncate the acked spool prefix."""
        if self.estimator is None:
            raise RuntimeError(f"shard {self.index} is down; cannot checkpoint")
        if self.lag != 0:
            raise RuntimeError(
                f"shard {self.index} has {self.lag} unapplied spooled records; "
                "checkpointing now would ack evidence the estimator never saw"
            )
        save_checkpoint(
            self.store,
            self.checkpoint_name,
            {
                "shard": self.index,
                "seq": self.seq_applied,
                "estimator": self.estimator.state_dict(),
            },
        )
        self.wal.truncate_through(self.seq_applied)
        self.stats.checkpoints += 1
        sanitizer = _sanitize_hooks.ACTIVE
        if sanitizer is not None:
            sanitizer.record_effect(
                "checkpoint-write", self.wal.name, self.seq_applied
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self.estimator is None else "up"
        return (
            f"ShardWorker({self.index}, {state}, logged={self.seq_logged}, "
            f"applied={self.seq_applied})"
        )
