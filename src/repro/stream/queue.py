"""Bounded ingest queue with explicit backpressure policy.

The decode→estimate pipeline is pull-based and deterministic, but the
arrival rate (``arrival_burst`` records per round) and the service rate
(``service_batch`` records per round, further throttled by shard
backoff) are configured independently — exactly like a real sink whose
reporting fan-in outpaces its estimator workers. The queue between them
is *bounded* and the overflow behaviour is a named policy, never an
accident:

* ``block`` — a full queue refuses the record and the **source is
  paced**: ingestion stops pulling until service catches up. Nothing is
  lost; latency grows. (For a trace replay this is flow control; for a
  live UDP sink it would be socket-buffer pushback.)
* ``shed`` — a full queue **drops the newest arrival** (counted, and
  per-link shed evidence is observable via the sink's stats). Latency
  stays bounded; estimate quality degrades smoothly — bench A8 measures
  that curve.

``high_water`` records the deepest the queue ever got, the metric a
capacity planner actually wants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List

from repro.stream.records import PacketRecord

__all__ = ["BoundedPacketQueue", "QueueStats"]

_POLICIES = ("block", "shed")


@dataclass
class QueueStats:
    """Counters of everything the queue ever did."""

    offered: int = 0
    accepted: int = 0
    shed: int = 0
    blocked: int = 0
    high_water: int = 0


class BoundedPacketQueue:
    """Capacity-bounded FIFO between ingestion and shard dispatch."""

    def __init__(self, capacity: int, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}, got {policy!r}")
        self.capacity = capacity
        self.policy = policy
        self.stats = QueueStats()
        self._items: Deque[PacketRecord] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def offer(self, record: PacketRecord) -> bool:
        """Try to enqueue; returns False when the record was not accepted.

        Under ``block`` a False return means "stop pulling the source
        and re-offer this record later"; under ``shed`` it means the
        record is gone for good (already counted as shed).
        """
        self.stats.offered += 1
        if self.full:
            if self.policy == "shed":
                self.stats.shed += 1
            else:
                self.stats.blocked += 1
            return False
        self._items.append(record)
        self.stats.accepted += 1
        if len(self._items) > self.stats.high_water:
            self.stats.high_water = len(self._items)
        return True

    def pop_batch(self, limit: int) -> List[PacketRecord]:
        """Dequeue up to ``limit`` records in FIFO order."""
        if limit < 0:
            raise ValueError("limit must be >= 0")
        out: List[PacketRecord] = []
        while self._items and len(out) < limit:
            out.append(self._items.popleft())
        return out

    def snapshot(self) -> List[PacketRecord]:
        """Current contents, oldest first (for the sink manifest)."""
        return list(self._items)

    def restore(self, records: List[PacketRecord]) -> None:
        """Replace contents from a manifest snapshot."""
        if len(records) > self.capacity:
            raise ValueError("snapshot exceeds queue capacity")
        self._items = deque(records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BoundedPacketQueue({len(self._items)}/{self.capacity}, "
            f"policy={self.policy})"
        )
