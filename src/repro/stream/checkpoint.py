"""Versioned, checksummed checkpoint encoding (satellite: no unpickling garbage).

A checkpoint is two lines of UTF-8 JSON::

    {"magic": "repro-ckpt", "version": 1, "sha256": "<hex>", "length": N}
    <canonical JSON payload, N bytes>

The header is self-contained and tiny, so every corruption mode is
*detected before the payload is interpreted* and surfaces as a typed
:class:`CheckpointError` naming the cause:

* **missing** — no blob under that name;
* **truncated** — payload shorter than the header's byte count (the
  classic torn write; cannot happen under
  :meth:`~repro.stream.storage.DirectoryStore.write_atomic`, but a
  checkpoint copied around or written by older code can still tear);
* **corrupt** — payload bytes don't hash to the header's SHA-256;
* **version** — schema from a future (or unknown) writer;
* **malformed** — header or payload is not the JSON it claims to be.

JSON (not pickle) on purpose: restoring a checkpoint must never execute
attacker- or corruption-chosen reduce callables, and canonical JSON
(sorted keys, fixed separators) makes equal states byte-equal — which
the kill-restore equivalence tests exploit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping

from repro.sanitize import hooks as _sanitize_hooks
from repro.stream.storage import BlobStore

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "decode_checkpoint",
    "encode_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
]

CHECKPOINT_VERSION = 1
_MAGIC = "repro-ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint could not be loaded or validated.

    ``cause`` is a stable machine-readable tag: ``missing``,
    ``truncated``, ``corrupt``, ``version`` or ``malformed``.
    """

    def __init__(self, cause: str, message: str) -> None:
        super().__init__(f"{cause}: {message}")
        self.cause = cause


def encode_checkpoint(payload: Mapping[str, Any]) -> bytes:
    """Serialize a JSON-able payload into the framed checkpoint format."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    body_bytes = body.encode("utf-8")
    header = {
        "magic": _MAGIC,
        "version": CHECKPOINT_VERSION,
        "sha256": hashlib.sha256(body_bytes).hexdigest(),
        "length": len(body_bytes),
    }
    return json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + body_bytes


def decode_checkpoint(data: bytes) -> Dict[str, Any]:
    """Validate framing, version and checksum; return the payload.

    Raises :class:`CheckpointError` instead of ever returning a payload
    whose bytes were not exactly what the writer hashed.
    """
    newline = data.find(b"\n")
    if newline < 0:
        raise CheckpointError("truncated", "no header line (empty or torn file)")
    try:
        header = json.loads(data[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError("malformed", f"unreadable header: {exc}") from exc
    if not isinstance(header, dict) or header.get("magic") != _MAGIC:
        raise CheckpointError("malformed", "missing checkpoint magic")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            "version",
            f"checkpoint version {version!r} unsupported "
            f"(expected {CHECKPOINT_VERSION})",
        )
    body = data[newline + 1 :]
    length = header.get("length")
    if not isinstance(length, int) or len(body) < length:
        raise CheckpointError(
            "truncated",
            f"payload has {len(body)} bytes, header promises {length!r}",
        )
    body = body[:length]
    digest = hashlib.sha256(body).hexdigest()
    if digest != header.get("sha256"):
        raise CheckpointError(
            "corrupt", "payload checksum mismatch (bit rot or partial write)"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:  # pragma: no cover
        # Unreachable without a sha256 collision; kept as defense in depth.
        raise CheckpointError("malformed", f"unreadable payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError("malformed", "payload is not a JSON object")
    return payload


def save_checkpoint(store: BlobStore, name: str, payload: Mapping[str, Any]) -> None:
    """Atomically persist a payload under ``name``."""
    store.write_atomic(name, encode_checkpoint(payload))
    sanitizer = _sanitize_hooks.ACTIVE
    if sanitizer is not None and "manifest" in name:
        # Mirrors the static classifier (dataflow._manifest_override):
        # a "manifest"-named blob is the resume index, and the effect
        # protocol requires it to precede the checkpoints it describes.
        # Shard checkpoints are recorded (with WAL correlation) by
        # ShardWorker.checkpoint instead.
        round_no = payload.get("round_no")
        detail = round_no if isinstance(round_no, int) else 0
        sanitizer.record_effect("manifest-write", name, detail)


def load_checkpoint(store: BlobStore, name: str) -> Dict[str, Any]:
    """Load and validate the checkpoint stored under ``name``."""
    try:
        data = store.read(name)
    except FileNotFoundError:
        raise CheckpointError("missing", f"no checkpoint named {name!r}") from None
    return decode_checkpoint(data)
