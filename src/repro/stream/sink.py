"""The crash-tolerant streaming sink: ingest → shard → estimate → alert.

:class:`StreamingSink` turns an ordered stream of
:class:`~repro.stream.records.PacketRecord` into a continuously merged
global per-link loss view. Per dispatch *round* (the sink's clock-free
unit of progress) it:

1. restores any shard whose backoff expired (checkpoint + WAL replay);
2. pulls up to ``arrival_burst`` records into the bounded ingest queue
   (``block`` paces the source, ``shed`` drops the newest — see
   :mod:`repro.stream.queue`);
3. pops up to ``service_batch`` records, routes each to its shard by
   the stable :func:`~repro.stream.records.shard_index` hash, and spools
   them to the shard's write-ahead log *before* anything estimates them;
4. draws injected faults (:class:`~repro.net.faults.ShardFaultPlan`) —
   a crashed/stalled shard loses its in-memory estimator and goes into
   supervised backoff, or into terminal quarantine past the retry
   budget;
5. applies each healthy shard's batch as a stateless
   :func:`~repro.stream.shard.shard_apply_task` delta — inline at
   ``jobs=1``, through :class:`~repro.exec.parallel.ParallelRunner`'s
   supervised process pool at ``jobs>1`` — and merges deltas in sorted
   shard order, so worker count never changes the result;
6. every ``merge_every`` rounds (and at end-of-stream) emits a
   :class:`SinkSnapshot`: the merged global estimator (healthy shards
   live, down shards from their durable state, quarantined shards from
   their frozen last-known-good), threshold alerts for non-stale links,
   a durable manifest, and periodic shard checkpoints.

Equivalence guarantees (pinned by ``tests/stream/``):

* **zero faults** — the final global estimator's ``state_dict()`` is
  byte-identical to a single batch estimator fed the same records;
* **kill-restore** — with injected crashes, final estimates are
  field-identical to the same-seed uninterrupted run;
* **process resume** — :meth:`StreamingSink.resume` from the manifest
  mid-stream converges to the same final state;
* **jobs** — ``jobs=N`` output is byte-identical to ``jobs=1``.

Durability ordering: the manifest is written *before* shard checkpoints
at each snapshot, so a checkpoint is never newer than the newest
manifest — a crash between the two writes can only leave checkpoints
*behind* the manifest (healed by WAL replay + source re-consumption),
never ahead of it (which would double-count evidence on resume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.estimator import LinkEstimate, PerLinkEstimator
from repro.exec.parallel import ParallelRunner
from repro.net.faults import ShardFaultPlan
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.queue import BoundedPacketQueue, QueueStats
from repro.stream.records import (
    PacketRecord,
    evidence_links,
    record_from_dict,
    record_to_dict,
    shard_index,
)
from repro.stream.shard import ShardWorker, shard_apply_task
from repro.stream.storage import BlobStore
from repro.stream.supervisor import (
    DOWN,
    HEALTHY,
    QUARANTINED,
    RetryPolicy,
    ShardSupervisor,
)

__all__ = [
    "Alert",
    "AlertPolicy",
    "SinkConfig",
    "SinkSnapshot",
    "SinkStats",
    "StreamingSink",
]

#: Blob name of the sink's resume manifest.
MANIFEST = "sink.manifest"

Link = Tuple[int, int]


@dataclass(frozen=True)
class AlertPolicy:
    """When a link's loss estimate is worth waking an operator for."""

    loss_threshold: float = 0.3
    min_samples: int = 20

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_threshold <= 1.0:
            raise ValueError("loss_threshold must be in [0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass(frozen=True)
class Alert:
    """One link crossed the alert threshold (fired at most once per link)."""

    link: Link
    loss: float
    n_samples: int
    round_no: int
    stream_time: float


@dataclass(frozen=True)
class SinkConfig:
    """Shape of the pipeline: sharding, rates, supervision, alerting."""

    n_shards: int = 4
    queue_capacity: int = 256
    queue_policy: str = "block"
    #: Records pulled from the source per round.
    arrival_burst: int = 32
    #: Records dispatched to shards per round.
    service_batch: int = 32
    #: Emit a snapshot (global merge + manifest) every this many rounds.
    merge_every: int = 8
    #: Write shard checkpoints every this many snapshots.
    checkpoint_every: int = 2
    #: Worker processes for the apply stage (1 = inline, no pool).
    jobs: int = 1
    task_timeout: Optional[float] = None
    max_retries: int = 2
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    alerts: Optional[AlertPolicy] = field(default_factory=AlertPolicy)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.arrival_burst < 1:
            raise ValueError("arrival_burst must be >= 1")
        if self.service_batch < 1:
            raise ValueError("service_batch must be >= 1")
        if self.merge_every < 1:
            raise ValueError("merge_every must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_shards": self.n_shards,
            "queue_capacity": self.queue_capacity,
            "queue_policy": self.queue_policy,
            "arrival_burst": self.arrival_burst,
            "service_batch": self.service_batch,
            "merge_every": self.merge_every,
            "checkpoint_every": self.checkpoint_every,
            "jobs": self.jobs,
            "task_timeout": self.task_timeout,
            "max_retries": self.max_retries,
            "retry": {
                "max_restarts": self.retry.max_restarts,
                "backoff_base": self.retry.backoff_base,
                "backoff_cap": self.retry.backoff_cap,
            },
            "alerts": None
            if self.alerts is None
            else {
                "loss_threshold": self.alerts.loss_threshold,
                "min_samples": self.alerts.min_samples,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SinkConfig":
        alerts = data.get("alerts")
        return cls(
            n_shards=int(data["n_shards"]),
            queue_capacity=int(data["queue_capacity"]),
            queue_policy=str(data["queue_policy"]),
            arrival_burst=int(data["arrival_burst"]),
            service_batch=int(data["service_batch"]),
            merge_every=int(data["merge_every"]),
            checkpoint_every=int(data["checkpoint_every"]),
            jobs=int(data["jobs"]),
            task_timeout=data["task_timeout"],
            max_retries=int(data["max_retries"]),
            retry=RetryPolicy(**data["retry"]),
            alerts=None if alerts is None else AlertPolicy(**alerts),
        )


@dataclass
class SinkStats:
    """What the sink did (diagnostics; not part of any equivalence claim)."""

    rounds: int = 0
    consumed: int = 0
    dispatched: int = 0
    dropped_quarantined: int = 0
    crashes: int = 0
    stalls: int = 0
    restores: int = 0
    snapshots: int = 0
    alerts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SinkStats":
        return cls(**{k: int(v) for k, v in data.items()})


@dataclass(frozen=True)
class SinkSnapshot:
    """One merged global view of the stream, emitted every ``merge_every``."""

    round_no: int
    stream_time: float
    #: True only for the end-of-stream snapshot.
    final: bool
    estimates: Dict[Link, LinkEstimate]
    #: Links whose numbers may be out of date (quarantined shards /
    #: evidence dropped past a dead shard) — never silently confident.
    stale_links: Tuple[Link, ...]
    new_alerts: Tuple[Alert, ...]
    queue_depth: int
    shard_states: Tuple[str, ...]
    stats: SinkStats
    queue_stats: QueueStats


class StreamingSink:
    """Supervised, checkpointed, backpressure-aware streaming estimator."""

    def __init__(
        self,
        max_attempts: int,
        store: BlobStore,
        config: Optional[SinkConfig] = None,
        *,
        faults: Optional[ShardFaultPlan] = None,
        truncation_correction: bool = True,
    ) -> None:
        self.config = config or SinkConfig()
        self.max_attempts = max_attempts
        self.truncation_correction = truncation_correction
        self.store = store
        self.faults = faults
        self.queue = BoundedPacketQueue(
            self.config.queue_capacity, self.config.queue_policy
        )
        self.supervisor = ShardSupervisor(self.config.n_shards, self.config.retry)
        self.shards = [
            ShardWorker(
                i,
                max_attempts,
                store,
                truncation_correction=truncation_correction,
            )
            for i in range(self.config.n_shards)
        ]
        self._runner = (
            ParallelRunner(
                jobs=self.config.jobs,
                task_timeout=self.config.task_timeout,
                max_retries=self.config.max_retries,
            )
            if self.config.jobs > 1
            else None
        )
        self.stats = SinkStats()
        self.round_no = 0
        self.stream_time = 0.0
        #: Source records consumed so far (the resume offset).
        self.consumed = 0
        self._snapshots = 0
        self._alerted: Set[Link] = set()
        self._stale: Set[Link] = set()
        #: Quarantined shards' frozen last-durable estimator states.
        self._frozen: Dict[int, Dict[str, Any]] = {}
        self.last_snapshot: Optional[SinkSnapshot] = None

    # -- the round loop ---------------------------------------------------------------

    def run(self, records: Iterable[PacketRecord]) -> Iterator[SinkSnapshot]:
        """Drive the pipeline over ``records``; yields every snapshot.

        On a resumed sink, pass the *same source from the beginning* —
        the manifest's consumed-offset prefix is skipped, then ingestion
        continues exactly where the previous process stopped.
        """
        source = iter(records)
        for _ in range(self.consumed):
            try:
                next(source)
            except StopIteration:
                raise ValueError(
                    f"source ended before the manifest's consumed offset "
                    f"({self.consumed}); resume needs the original stream"
                ) from None
        exhausted = False
        while True:
            self.round_no += 1
            round_no = self.round_no
            self._restore_due(round_no)
            exhausted = self._ingest(source, exhausted)
            per_shard = self._dispatch()
            self._inject_faults(round_no)
            self._apply(per_shard)
            done = (
                exhausted
                and len(self.queue) == 0
                and not self.supervisor.any_down()
                and all(
                    self.shards[i].lag == 0
                    for i in range(self.config.n_shards)
                    if self.supervisor.state(i) == HEALTHY
                )
            )
            self.stats.rounds = round_no
            if done or round_no % self.config.merge_every == 0:
                yield self._snapshot(round_no, final=done)
            if done:
                return

    def _restore_due(self, round_no: int) -> None:
        for i in range(self.config.n_shards):
            if self.supervisor.due_for_restore(i, round_no):
                self.shards[i].restore()
                self.supervisor.mark_restored(i)
                self.stats.restores += 1

    def _ingest(self, source: Iterator[PacketRecord], exhausted: bool) -> bool:
        pulled = 0
        while pulled < self.config.arrival_burst and not exhausted:
            if self.queue.full and self.config.queue_policy == "block":
                # Pace the source: leave the record unread, try next round.
                self.queue.stats.blocked += 1
                break
            try:
                record = next(source)
            except StopIteration:
                return True
            self.consumed += 1
            self.stats.consumed += 1
            self.stream_time = max(self.stream_time, record.created_at)
            self.queue.offer(record)  # under shed, a full queue drops it
            pulled += 1
        return exhausted

    def _dispatch(self) -> Dict[int, List[PacketRecord]]:
        batch = self.queue.pop_batch(self.config.service_batch)
        per_shard: Dict[int, List[PacketRecord]] = {}
        for record in batch:
            s = shard_index(record.origin, record.seqno, self.config.n_shards)
            if self.supervisor.is_quarantined(s):
                # Graceful degradation: count the loss, flag the links —
                # a dead shard must never be a silent gap.
                self.stats.dropped_quarantined += 1
                self._stale.update(evidence_links([record]))
                continue
            per_shard.setdefault(s, []).append(record)
        for s in sorted(per_shard):
            # WAL-before-apply: spooled even while the shard is down.
            self.shards[s].log(per_shard[s])
            self.stats.dispatched += len(per_shard[s])
        return per_shard

    def _inject_faults(self, round_no: int) -> None:
        if self.faults is None or not self.faults.active:
            return
        for s in range(self.config.n_shards):
            if self.supervisor.state(s) != HEALTHY:
                continue
            crash = self.faults.draw_crash(s, round_no)
            stall = not crash and self.faults.draw_stall(s, round_no)
            if not (crash or stall):
                continue
            shard = self.shards[s]
            shard.crash()
            if crash:
                self.stats.crashes += 1
                shard.stats.crashes += 1
                outcome = self.supervisor.record_failure(s, round_no)
            else:
                # A stall hangs the worker for `stall_rounds`, after which
                # the supervisor gives up on it — same estimator loss as a
                # crash, with the hang time as the effective backoff.
                self.stats.stalls += 1
                shard.stats.stalls += 1
                outcome = self.supervisor.record_failure(
                    s, round_no, backoff_override=self.faults.stall_rounds
                )
            if outcome == QUARANTINED:
                self._quarantine(s)

    def _quarantine(self, s: int) -> None:
        """Freeze the shard's last durable state as its final contribution."""
        frozen, _seq, _t = self.shards[s].peek_durable()
        self._frozen[s] = frozen.state_dict()
        self._stale.update(frozen.links())

    def _apply(self, per_shard: Dict[int, List[PacketRecord]]) -> None:
        applying = [
            s for s in sorted(per_shard) if self.supervisor.state(s) == HEALTHY
        ]
        if not applying:
            return
        payloads = [self.shards[s].payload(per_shard[s]) for s in applying]
        if self._runner is None:
            deltas = [shard_apply_task(p) for p in payloads]
        else:
            deltas = self._runner.map(shard_apply_task, payloads)
        for s, delta in zip(applying, deltas):
            self.shards[s].absorb(delta, len(per_shard[s]))

    # -- snapshots / global view ------------------------------------------------------

    def global_estimator(self) -> PerLinkEstimator:
        """Merge every shard's best-available state into one estimator."""
        merged = PerLinkEstimator(
            self.max_attempts, truncation_correction=self.truncation_correction
        )
        for s in range(self.config.n_shards):
            state = self.supervisor.state(s)
            if state == HEALTHY:
                est = self.shards[s].estimator
                assert est is not None  # healthy implies live
                merged.merge(est)
            elif state == DOWN:
                # Not restored yet: fold in its durable view, read-only.
                merged.merge(self.shards[s].peek_durable()[0])
            else:
                merged.merge(PerLinkEstimator.from_state(self._frozen[s]))
        return merged

    def _snapshot(self, round_no: int, *, final: bool) -> SinkSnapshot:
        merged = self.global_estimator()
        estimates = merged.estimates()
        new_alerts: List[Alert] = []
        policy = self.config.alerts
        if policy is not None:
            for link in sorted(estimates):
                if link in self._alerted or link in self._stale:
                    continue
                est = estimates[link]
                if (
                    est.n_samples >= policy.min_samples
                    and est.loss >= policy.loss_threshold
                ):
                    new_alerts.append(
                        Alert(link, est.loss, est.n_samples, round_no, self.stream_time)
                    )
                    self._alerted.add(link)
        self.stats.alerts += len(new_alerts)
        self._snapshots += 1
        self.stats.snapshots = self._snapshots
        # Manifest BEFORE checkpoints (see module docstring): a crash
        # between the writes must leave checkpoints behind the manifest.
        self._save_manifest()
        if final or self._snapshots % self.config.checkpoint_every == 0:
            for s in range(self.config.n_shards):
                if self.supervisor.state(s) == HEALTHY:
                    self.shards[s].checkpoint()
        snapshot = SinkSnapshot(
            round_no=round_no,
            stream_time=self.stream_time,
            final=final,
            estimates=estimates,
            stale_links=tuple(sorted(self._stale)),
            new_alerts=tuple(new_alerts),
            queue_depth=len(self.queue),
            shard_states=tuple(
                self.supervisor.state(s) for s in range(self.config.n_shards)
            ),
            stats=self.stats,
            queue_stats=self.queue.stats,
        )
        self.last_snapshot = snapshot
        return snapshot

    def final_estimates(self) -> Dict[Link, LinkEstimate]:
        """Estimates of the most recent snapshot (empty before the first)."""
        if self.last_snapshot is None:
            return {}
        return self.last_snapshot.estimates

    # -- manifest persistence / process resume ----------------------------------------

    def _save_manifest(self) -> None:
        qs = self.queue.stats
        save_checkpoint(
            self.store,
            MANIFEST,
            {
                "max_attempts": self.max_attempts,
                "truncation_correction": self.truncation_correction,
                "config": self.config.to_dict(),
                "round_no": self.round_no,
                "snapshots": self._snapshots,
                "consumed": self.consumed,
                "stream_time": self.stream_time,
                "watermarks": [w.seq_logged for w in self.shards],
                "supervisor": self.supervisor.state_dict(),
                "queue": [record_to_dict(r) for r in self.queue.snapshot()],
                "frozen": {str(s): st for s, st in sorted(self._frozen.items())},
                "stale_links": sorted([u, v] for (u, v) in self._stale),
                "alerted": sorted([u, v] for (u, v) in self._alerted),
                "stats": self.stats.to_dict(),
                "queue_stats": dict(qs.__dict__),
            },
        )

    @classmethod
    def resume(
        cls,
        store: BlobStore,
        *,
        faults: Optional[ShardFaultPlan] = None,
    ) -> "StreamingSink":
        """Rebuild a sink from its manifest + shard checkpoints + spools.

        Raises :class:`~repro.stream.checkpoint.CheckpointError` when the
        manifest is missing or damaged. Configuration comes from the
        manifest (resuming with a different shard count would re-route
        evidence mid-stream); only the fault plan is caller-supplied.
        """
        manifest = load_checkpoint(store, MANIFEST)
        sink = cls(
            int(manifest["max_attempts"]),
            store,
            SinkConfig.from_dict(manifest["config"]),
            faults=faults,
            truncation_correction=bool(manifest["truncation_correction"]),
        )
        sink.round_no = int(manifest["round_no"])
        sink._snapshots = int(manifest["snapshots"])
        sink.consumed = int(manifest["consumed"])
        sink.stream_time = float(manifest["stream_time"])
        sink.supervisor.restore_state(manifest["supervisor"])
        sink.queue.restore(
            [record_from_dict(d) for d in manifest["queue"]]
        )
        sink._frozen = {
            int(s): state for s, state in manifest["frozen"].items()
        }
        sink._stale = {(int(u), int(v)) for u, v in manifest["stale_links"]}
        sink._alerted = {(int(u), int(v)) for u, v in manifest["alerted"]}
        sink.stats = SinkStats.from_dict(manifest["stats"])
        for key, value in manifest["queue_stats"].items():
            setattr(sink.queue.stats, key, int(value))
        watermarks = manifest["watermarks"]
        for s, shard in enumerate(sink.shards):
            if sink.supervisor.is_quarantined(s):
                continue  # frozen contribution already carried in the manifest
            # Post-manifest WAL appends are re-covered by re-consuming the
            # source from `consumed`; replaying them too would double-count.
            shard.wal.drop_after(int(watermarks[s]))
            shard.restore()
            shard.seq_logged = int(watermarks[s])
            shard.seq_applied = shard.seq_logged
        return sink
