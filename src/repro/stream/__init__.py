"""Crash-tolerant streaming sink (continuous decode → estimate → alert).

Public surface of the pipeline built in DESIGN.md §11: picklable packet
records and the stable shard hash (:mod:`.records`), durable blob stores
(:mod:`.storage`), versioned checksummed checkpoints (:mod:`.checkpoint`),
per-shard write-ahead spools (:mod:`.wal`), the bounded backpressure
queue (:mod:`.queue`), shard supervision with retry budget and
quarantine (:mod:`.supervisor`), shard workers (:mod:`.shard`), stream
sources (:mod:`.source`) and the sink itself (:mod:`.sink`).
"""

from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    decode_checkpoint,
    encode_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.stream.queue import BoundedPacketQueue, QueueStats
from repro.stream.records import (
    PacketRecord,
    evidence_links,
    feed_estimator,
    record_from_dict,
    record_to_dict,
    shard_index,
)
from repro.stream.shard import ShardStats, ShardWorker, shard_apply_task
from repro.stream.sink import (
    Alert,
    AlertPolicy,
    SinkConfig,
    SinkSnapshot,
    SinkStats,
    StreamingSink,
)
from repro.stream.source import (
    StreamBundle,
    bundle_from_result,
    bundle_from_scenario,
    bundle_from_trace,
)
from repro.stream.storage import BlobStore, DirectoryStore, MemoryStore
from repro.stream.supervisor import RetryPolicy, ShardSupervisor
from repro.stream.wal import WalError, WriteAheadLog

__all__ = [
    "Alert",
    "AlertPolicy",
    "BlobStore",
    "BoundedPacketQueue",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "DirectoryStore",
    "MemoryStore",
    "PacketRecord",
    "QueueStats",
    "RetryPolicy",
    "ShardStats",
    "ShardSupervisor",
    "ShardWorker",
    "SinkConfig",
    "SinkSnapshot",
    "SinkStats",
    "StreamBundle",
    "StreamingSink",
    "WalError",
    "WriteAheadLog",
    "bundle_from_result",
    "bundle_from_scenario",
    "bundle_from_trace",
    "decode_checkpoint",
    "encode_checkpoint",
    "evidence_links",
    "feed_estimator",
    "load_checkpoint",
    "record_from_dict",
    "record_to_dict",
    "save_checkpoint",
    "shard_apply_task",
    "shard_index",
]
