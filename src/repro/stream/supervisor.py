"""Shard supervision: restart with backoff, retry budget, quarantine.

The supervisor is deliberately clock-free — backoff is counted in
*dispatch rounds*, the sink's own unit of progress, so a supervised run
is exactly as deterministic as an unsupervised one (reprolint's RPL002
wall-clock rule applies to this package, and nothing here needs a
pragma).

Lifecycle of a shard::

    healthy --crash/stall--> down (backoff: base * 2^(restarts-1),
      capped) --rounds elapse--> restore (checkpoint + WAL replay)
      --> healthy
    ... more than ``max_restarts`` failures --> quarantined (terminal)

Quarantine is the graceful-degradation end state: the shard's last
durable state still contributes to the global view, but its links are
flagged stale and new evidence routed to it is dropped *and counted* —
a dead shard must never surface as silently-confident numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

__all__ = ["RetryPolicy", "ShardSupervisor"]

#: Supervisor states a shard can be in.
HEALTHY = "healthy"
DOWN = "down"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class RetryPolicy:
    """Restart budget and backoff schedule (in dispatch rounds)."""

    max_restarts: int = 3
    backoff_base: int = 1
    backoff_cap: int = 8

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_base < 1:
            raise ValueError("backoff_base must be >= 1")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")

    def backoff_rounds(self, restarts: int) -> int:
        """Rounds to stay down after the ``restarts``-th failure."""
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        return min(self.backoff_cap, self.backoff_base * 2 ** (restarts - 1))


class ShardSupervisor:
    """Tracks per-shard health, backoff deadlines and the retry budget."""

    def __init__(self, n_shards: int, policy: RetryPolicy) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.policy = policy
        self.n_shards = n_shards
        self._restarts = [0] * n_shards
        self._resume_round = [0] * n_shards
        self._down = [False] * n_shards
        self._quarantined = [False] * n_shards

    # -- queries ----------------------------------------------------------------------

    def state(self, shard: int) -> str:
        if self._quarantined[shard]:
            return QUARANTINED
        if self._down[shard]:
            return DOWN
        return HEALTHY

    def is_quarantined(self, shard: int) -> bool:
        return self._quarantined[shard]

    def restarts(self, shard: int) -> int:
        return self._restarts[shard]

    def any_down(self) -> bool:
        return any(self._down)

    def quarantined_shards(self) -> List[int]:
        return [i for i in range(self.n_shards) if self._quarantined[i]]

    def due_for_restore(self, shard: int, round_no: int) -> bool:
        """Has this shard's backoff expired at ``round_no``?"""
        return (
            self._down[shard]
            and not self._quarantined[shard]
            and round_no >= self._resume_round[shard]
        )

    # -- transitions ------------------------------------------------------------------

    def record_failure(
        self, shard: int, round_no: int, *, backoff_override: int = 0
    ) -> str:
        """A shard's worker crashed or hung at ``round_no``.

        Returns the resulting state: ``down`` (restart scheduled after
        exponential backoff, or ``backoff_override`` rounds when given —
        a stall's hang time) or ``quarantined`` (budget exhausted).
        """
        if self._quarantined[shard]:
            return QUARANTINED
        self._restarts[shard] += 1
        if self._restarts[shard] > self.policy.max_restarts:
            self._quarantined[shard] = True
            self._down[shard] = False
            return QUARANTINED
        backoff = backoff_override or self.policy.backoff_rounds(
            self._restarts[shard]
        )
        self._down[shard] = True
        self._resume_round[shard] = round_no + backoff
        return DOWN

    def mark_restored(self, shard: int) -> None:
        """The sink restored this shard's state; it is healthy again."""
        if self._quarantined[shard]:
            raise ValueError(f"shard {shard} is quarantined, cannot restore")
        self._down[shard] = False

    # -- serialization (sink manifest) ------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "restarts": list(self._restarts),
            "resume_round": list(self._resume_round),
            "down": list(self._down),
            "quarantined": list(self._quarantined),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        for field in ("restarts", "resume_round", "down", "quarantined"):
            values = state[field]
            if len(values) != self.n_shards:
                raise ValueError(
                    f"supervisor state {field!r} has {len(values)} entries "
                    f"for {self.n_shards} shards"
                )
        self._restarts = [int(v) for v in state["restarts"]]
        self._resume_round = [int(v) for v in state["resume_round"]]
        self._down = [bool(v) for v in state["down"]]
        self._quarantined = [bool(v) for v in state["quarantined"]]
