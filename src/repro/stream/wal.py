"""Per-shard write-ahead spool: log before apply, replay after crash.

Every packet dispatched to a shard is appended here *before* the shard's
estimator sees it. A shard crash therefore loses only in-memory state:
recovery is "last checkpoint + replay the spool past the checkpoint's
sequence number", and the final estimates are field-identical to a run
that never crashed (the property ``tests/stream/test_crash_recovery.py``
pins).

Each line is self-checking JSON::

    {"seq": <1-based shard-local sequence>, "crc": <crc32 of the record
     JSON>, "rec": {...packet record...}}

Failure handling distinguishes the two ways a spool goes bad:

* a **torn tail** — the final line is unparseable or fails its CRC,
  i.e. the process died mid-append. The tail record was never applied
  nor acked, so replay drops it (counted in ``torn_tail_dropped``) and
  continues normally;
* **mid-file corruption** — a bad line *with valid lines after it* means
  storage damage, not a torn append; replay refuses to guess and raises
  the typed :class:`WalError` instead of silently skipping evidence.

After a checkpoint acks sequence ``n``, :meth:`truncate_through`
atomically rewrites the spool without the acked prefix, keeping spool
size proportional to the checkpoint interval rather than the stream.
"""

from __future__ import annotations

import json
import zlib
from typing import Iterator, List, Tuple

from repro.sanitize import hooks as _sanitize_hooks
from repro.stream.records import PacketRecord, record_from_dict, record_to_dict
from repro.stream.storage import BlobStore

__all__ = ["WalError", "WriteAheadLog"]


class WalError(RuntimeError):
    """A WAL spool is damaged in a way replay cannot safely repair."""


def _encode_line(seq: int, record: PacketRecord) -> str:
    rec = json.dumps(record_to_dict(record), sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(rec.encode("utf-8")) & 0xFFFFFFFF
    return json.dumps(
        {"seq": seq, "crc": crc, "rec": json.loads(rec)},
        sort_keys=True,
        separators=(",", ":"),
    )


def _decode_line(line: str) -> Tuple[int, PacketRecord]:
    """Parse one spool line; raises ``ValueError`` on any damage."""
    entry = json.loads(line)
    if not isinstance(entry, dict):
        raise ValueError("WAL line is not an object")
    seq = entry["seq"]
    if not isinstance(seq, int) or seq < 1:
        raise ValueError(f"bad WAL sequence number {seq!r}")
    rec_json = json.dumps(entry["rec"], sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(rec_json.encode("utf-8")) & 0xFFFFFFFF
    if crc != entry["crc"]:
        raise ValueError("WAL record failed its CRC")
    return seq, record_from_dict(entry["rec"])


class WriteAheadLog:
    """Append/replay/truncate view of one shard's spool blob."""

    def __init__(self, store: BlobStore, name: str) -> None:
        self.store = store
        self.name = name
        #: Torn-tail records dropped across all replays (diagnostics).
        self.torn_tail_dropped = 0

    def append(self, seq: int, record: PacketRecord) -> None:
        """Durably log ``record`` as shard-local sequence ``seq``."""
        self.store.append_line(self.name, _encode_line(seq, record))
        sanitizer = _sanitize_hooks.ACTIVE
        if sanitizer is not None:
            sanitizer.record_effect("wal-append", self.name, seq)

    def _parse_all(self) -> List[Tuple[int, PacketRecord]]:
        lines = self.store.read_lines(self.name)
        out: List[Tuple[int, PacketRecord]] = []
        for i, line in enumerate(lines):
            try:
                out.append(_decode_line(line))
            except (ValueError, KeyError, TypeError) as exc:
                if i == len(lines) - 1:
                    # Torn tail: the append died mid-line. The record was
                    # never applied or acked, so dropping it is lossless.
                    self.torn_tail_dropped += 1
                    break
                raise WalError(
                    f"{self.name}: line {i + 1} is corrupt with "
                    f"{len(lines) - i - 1} valid lines after it "
                    f"(storage damage, not a torn append): {exc}"
                ) from exc
        prev = 0
        for seq, _ in out:
            if seq <= prev:
                raise WalError(
                    f"{self.name}: non-increasing sequence {seq} after {prev}"
                )
            prev = seq
        return out

    def replay(self, after_seq: int) -> Iterator[Tuple[int, PacketRecord]]:
        """Yield ``(seq, record)`` for every entry with ``seq > after_seq``."""
        for seq, record in self._parse_all():
            if seq > after_seq:
                yield seq, record

    def max_seq(self) -> int:
        """Highest sequence in the spool (0 when empty)."""
        entries = self._parse_all()
        return entries[-1][0] if entries else 0

    def truncate_through(self, seq: int) -> int:
        """Atomically drop entries with sequence <= ``seq``; returns kept count."""
        kept = [
            _encode_line(s, record)
            for s, record in self._parse_all()
            if s > seq
        ]
        if kept:
            self.store.replace_lines(self.name, kept)
        else:
            self.store.delete(self.name)
        return len(kept)

    def drop_after(self, seq: int) -> int:
        """Atomically drop entries with sequence > ``seq``; returns dropped count.

        Used on process resume: appends made *after* the last sink
        manifest are covered by re-consuming the source, so replaying
        them as well would double-count their evidence. The manifest's
        per-shard watermark is the cut.
        """
        entries = self._parse_all()
        kept = [_encode_line(s, record) for s, record in entries if s <= seq]
        dropped = len(entries) - len(kept)
        if dropped:
            if kept:
                self.store.replace_lines(self.name, kept)
            else:
                self.store.delete(self.name)
        return dropped

    def __len__(self) -> int:
        return len(self._parse_all())
