"""Durable state stores for the streaming sink (checkpoints + WAL spools).

Checkpoints and write-ahead spools share a tiny blob-store interface so
the recovery logic is identical whether state lives on disk
(:class:`DirectoryStore` — a real ``repro serve`` deployment) or in
memory (:class:`MemoryStore` — fast tests and ephemeral runs without a
state directory).

:class:`DirectoryStore` owns the crash-safety discipline this PR's
"latent checkpoint risk" satellite demands:

* **atomic replace** — every whole-file write lands in a same-directory
  temp file, is flushed and ``fsync``-ed, then ``os.replace``-d over the
  target, and the directory entry itself is fsynced; a reader (or a
  restart) can never observe a half-written checkpoint;
* **durable appends** — WAL lines are flushed and fsynced per append,
  so an acked record survives the process dying on the next
  instruction (``fsync=False`` trades that durability for speed in
  tests and benches).

Torn *tails* (the one failure atomic replace cannot prevent: a crash
mid-append) are the WAL layer's job to detect and drop — see
:mod:`repro.stream.wal`.
"""

from __future__ import annotations

import os
import pathlib
import re
import tempfile
from typing import Dict, List, Sequence

__all__ = ["BlobStore", "DirectoryStore", "MemoryStore"]

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid blob name {name!r} (flat names only)")
    return name


class BlobStore:
    """Named-blob interface shared by checkpoint and WAL persistence."""

    def exists(self, name: str) -> bool:
        raise NotImplementedError

    def read(self, name: str) -> bytes:
        """Blob contents; raises ``FileNotFoundError`` when absent."""
        raise NotImplementedError

    def write_atomic(self, name: str, data: bytes) -> None:
        """Replace ``name`` with ``data`` all-or-nothing."""
        raise NotImplementedError

    def append_line(self, name: str, line: str) -> None:
        """Append one newline-terminated line (creating the blob)."""
        raise NotImplementedError

    def read_lines(self, name: str) -> List[str]:
        """All lines of a line-oriented blob ([] when absent)."""
        raise NotImplementedError

    def replace_lines(self, name: str, lines: Sequence[str]) -> None:
        """Atomically replace a line-oriented blob's contents."""
        joined = "".join(f"{line}\n" for line in lines)
        self.write_atomic(name, joined.encode("utf-8"))

    def delete(self, name: str) -> None:
        """Remove a blob if present (idempotent)."""
        raise NotImplementedError

    def names(self) -> List[str]:
        """Sorted names of all blobs currently stored."""
        raise NotImplementedError


class MemoryStore(BlobStore):
    """In-process store — same semantics, no filesystem."""

    def __init__(self) -> None:
        self._blobs: Dict[str, bytes] = {}

    def exists(self, name: str) -> bool:
        return _check_name(name) in self._blobs

    def read(self, name: str) -> bytes:
        try:
            return self._blobs[_check_name(name)]
        except KeyError:
            raise FileNotFoundError(name) from None

    def write_atomic(self, name: str, data: bytes) -> None:
        self._blobs[_check_name(name)] = bytes(data)

    def append_line(self, name: str, line: str) -> None:
        _check_name(name)
        existing = self._blobs.get(name, b"")
        self._blobs[name] = existing + f"{line}\n".encode("utf-8")

    def read_lines(self, name: str) -> List[str]:
        if not self.exists(name):
            return []
        return self.read(name).decode("utf-8").splitlines()

    def delete(self, name: str) -> None:
        self._blobs.pop(_check_name(name), None)

    def names(self) -> List[str]:
        return sorted(self._blobs)


class DirectoryStore(BlobStore):
    """One flat directory of state files with crash-safe writes."""

    def __init__(self, root: "str | os.PathLike[str]", *, fsync: bool = True) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync

    def _path(self, name: str) -> pathlib.Path:
        return self.root / _check_name(name)

    def _fsync_dir(self) -> None:
        if not self.fsync:
            return
        fd = os.open(str(self.root), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def read(self, name: str) -> bytes:
        return self._path(name).read_bytes()

    def write_atomic(self, name: str, data: bytes) -> None:
        path = self._path(name)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
            self._fsync_dir()
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # pragma: no cover - cleanup race  # reprolint: disable=RPL009 - tmp-file cleanup race; the original exception is re-raised
                pass
            raise

    def append_line(self, name: str, line: str) -> None:
        with self._path(name).open("a", encoding="utf-8") as fh:
            fh.write(f"{line}\n")
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def read_lines(self, name: str) -> List[str]:
        path = self._path(name)
        if not path.exists():
            return []
        return path.read_text(encoding="utf-8").splitlines()

    def delete(self, name: str) -> None:
        try:
            self._path(name).unlink()
        except FileNotFoundError:  # reprolint: disable=RPL009 - idempotent delete: absence is the desired postcondition
            pass
        self._fsync_dir()

    def names(self) -> List[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )
