"""Standard evaluation scenarios.

A :class:`Scenario` bundles everything a run needs except the seed and
the observers: topology recipe, link-quality regime, traffic and routing
parameters. The factory functions below define the scenario families the
reconstructed experiments (DESIGN.md §3) sweep over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.net.failures import FailurePlan, random_failure_plan
from repro.net.link import (
    LinkAssigner,
    drifting_loss_assigner,
    gilbert_elliott_assigner,
    uniform_loss_assigner,
)
from repro.net.mac import MacConfig
from repro.utils.rng import derive_rng
from repro.net.routing import RoutingConfig
from repro.net.simulation import (
    CollectionObserver,
    CollectionSimulation,
    SimulationConfig,
)
from repro.net.topology import (
    Topology,
    grid_topology,
    line_topology,
    random_geometric_topology,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.scenario_cache import BuiltScenario, ScenarioCache

__all__ = [
    "Scenario",
    "line_scenario",
    "static_grid_scenario",
    "static_rgg_scenario",
    "dynamic_rgg_scenario",
    "bursty_rgg_scenario",
    "drifting_rgg_scenario",
    "drifting_line_scenario",
    "failing_rgg_scenario",
    "interference_rgg_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A reproducible experimental setting (everything but seed/observers)."""

    name: str
    topology_factory: Callable[[int], Topology]
    link_assigner: Optional[LinkAssigner]
    sim_config: SimulationConfig
    #: Optional per-run failure schedule builder: (topology, seed) -> plan.
    failure_plan_factory: Optional[Callable[[Topology, int], FailurePlan]] = None
    #: Optional topology-aware assigner builder (used when the link model
    #: depends on node positions, e.g. interference fields); takes
    #: precedence over ``link_assigner``.
    link_assigner_factory: Optional[Callable[[Topology, int], LinkAssigner]] = None

    def make_simulation(
        self,
        seed: int,
        observers: Sequence[CollectionObserver] = (),
        *,
        scenario_cache: Optional["ScenarioCache"] = None,
    ) -> CollectionSimulation:
        """Instantiate one run of this scenario.

        With a ``scenario_cache``, the expensive construction skeleton
        (topology, channel layout, link-model draws, routing bootstrap)
        is served from the content-addressed cache — warm hit, cross-seed
        fork, or cold build-and-store — and only the cheap per-run state
        is instantiated fresh. Bit-identical to the cache-less path by
        the contract in :mod:`repro.workloads.scenario_cache`; scenarios
        the cache cannot serve (shared-state links, sanitized runs) fall
        through to a fresh build automatically.
        """
        if scenario_cache is not None and scenario_cache.applicable(self):
            built, _status = scenario_cache.get_or_build(self, seed)
            return self._instantiate(built, seed, observers)
        topology = self.topology_factory(seed)
        plan = (
            self.failure_plan_factory(topology, seed)
            if self.failure_plan_factory is not None
            else None
        )
        assigner = (
            self.link_assigner_factory(topology, seed)
            if self.link_assigner_factory is not None
            else self.link_assigner
        )
        return CollectionSimulation(
            topology,
            seed=seed,
            config=self.sim_config,
            link_assigner=assigner,
            observers=list(observers),
            failure_plan=plan,
        )

    def _instantiate(
        self,
        built: "BuiltScenario",
        seed: int,
        observers: Sequence[CollectionObserver],
    ) -> CollectionSimulation:
        """Cheap per-run instantiation of a cached skeleton.

        Fresh RNG registry, fresh model copies (prototypes are never
        sampled), fresh channel counters, routing restored from the
        captured warm state. Registry streams are derived independently
        per key, so building the channel on its own ``RngRegistry(seed)``
        yields exactly the streams the fresh path's shared registry
        would.
        """
        from repro.net.link import Channel
        from repro.utils.rng import RngRegistry

        registry = RngRegistry(seed)
        if built.models_immutable:
            # Stateless models: fresh_copy is the identity, and Channel
            # copies the dict itself, so aliasing is safe and skips a
            # quarter-million no-op calls at 5k nodes.
            models = built.models
        else:
            models = {
                edge: model.fresh_copy() for edge, model in built.models.items()
            }
        channel = Channel(built.topology, models, registry)
        return CollectionSimulation(
            built.topology,
            seed=seed,
            config=self.sim_config,
            channel=channel,
            observers=list(observers),
            failure_plan=built.failure_plan,
            routing_warm_state=built.routing_warm,
        )

    def with_config(self, **changes) -> "Scenario":
        """Copy of the scenario with sim-config fields replaced."""
        return replace(self, sim_config=replace(self.sim_config, **changes))


def _config(
    *,
    duration: float,
    traffic_period: float,
    noise: float,
    max_retries: int = 30,
    beacon_period: float = 2.0,
    switch_threshold: float = 0.3,
) -> SimulationConfig:
    return SimulationConfig(
        duration=duration,
        traffic_period=traffic_period,
        mac=MacConfig(max_retries=max_retries),
        routing=RoutingConfig(
            etx_noise_std=noise,
            beacon_period=beacon_period,
            parent_switch_threshold=switch_threshold,
        ),
    )


# -- picklable factory helpers -----------------------------------------------------
#
# Scenarios travel to process-pool workers (repro.exec) and into stable
# cache keys, so everything a Scenario holds must be a module-level
# callable (or a functools.partial of one) — never a lambda or closure.


def _line_topo(num_nodes: int, seed: int) -> Topology:
    return line_topology(num_nodes)


def _grid_topo(rows: int, cols: int, seed: int) -> Topology:
    return grid_topology(rows, cols, diagonal=True)


def _rgg_topo(num_nodes: int, seed: int) -> Topology:
    return random_geometric_topology(num_nodes, seed=seed)


# Line/grid recipes ignore their seed entirely, so a cross-seed scenario
# fork (workloads/scenario_cache.py) may reuse the built Topology object
# verbatim; RGG placement is seed-dependent and is rebuilt per seed.
_line_topo.seed_invariant = True  # type: ignore[attr-defined]
_grid_topo.seed_invariant = True  # type: ignore[attr-defined]


def _random_failures_plan(
    num_failures: int,
    duration: float,
    mean_downtime: float,
    topology: Topology,
    seed: int,
) -> FailurePlan:
    rng = derive_rng(seed, "failures")
    return random_failure_plan(
        topology,
        rng,
        num_failures=num_failures,
        duration=duration,
        mean_downtime=mean_downtime,
    )


def _interference_field_assigner(
    num_interferers: int,
    radius: float,
    loss_penalty: float,
    mean_on: float,
    mean_off: float,
    topology: Topology,
    seed: int,
) -> LinkAssigner:
    from repro.net.interference import InterfererField, interference_assigner

    field = InterfererField.random(
        topology,
        seed=seed,
        num_interferers=num_interferers,
        radius=radius,
        loss_penalty=loss_penalty,
        mean_on=mean_on,
        mean_off=mean_off,
    )
    return interference_assigner(topology, field)


def line_scenario(
    num_nodes: int = 8,
    *,
    loss_low: float = 0.05,
    loss_high: float = 0.3,
    duration: float = 400.0,
    traffic_period: float = 4.0,
    max_retries: int = 30,
) -> Scenario:
    """Chain topology — controlled path lengths for encoding sweeps."""
    return Scenario(
        name=f"line{num_nodes}",
        topology_factory=partial(_line_topo, num_nodes),
        link_assigner=uniform_loss_assigner(loss_low, loss_high),
        sim_config=_config(
            duration=duration,
            traffic_period=traffic_period,
            noise=0.0,
            max_retries=max_retries,
        ),
    )


def static_grid_scenario(
    rows: int = 5,
    cols: int = 5,
    *,
    loss_low: float = 0.05,
    loss_high: float = 0.35,
    duration: float = 400.0,
    traffic_period: float = 4.0,
) -> Scenario:
    """Static multi-parent grid (8-connectivity, but no ETX noise)."""
    return Scenario(
        name=f"grid{rows}x{cols}",
        topology_factory=partial(_grid_topo, rows, cols),
        link_assigner=uniform_loss_assigner(loss_low, loss_high),
        sim_config=_config(
            duration=duration, traffic_period=traffic_period, noise=0.0
        ),
    )


def static_rgg_scenario(
    num_nodes: int = 100,
    *,
    loss_low: float = 0.05,
    loss_high: float = 0.35,
    duration: float = 400.0,
    traffic_period: float = 5.0,
    max_retries: int = 2,
) -> Scenario:
    """Random deployment with frozen routing — classical tomography's home turf.

    The default retry cap (2) keeps some end-to-end loss observable so the
    classical methods have signal to work with; with deep ARQ (CTP's 30+)
    end-to-end delivery saturates at ~1.0 and end-to-end tomography learns
    *nothing* about frame loss — the F5 bench reports both regimes.
    """
    return Scenario(
        name=f"static_rgg{num_nodes}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=uniform_loss_assigner(loss_low, loss_high),
        sim_config=_config(
            duration=duration, traffic_period=traffic_period, noise=0.0,
            max_retries=max_retries,
        ),
    )


def dynamic_rgg_scenario(
    num_nodes: int = 100,
    *,
    churn_noise: float = 0.6,
    loss_low: float = 0.05,
    loss_high: float = 0.35,
    duration: float = 400.0,
    traffic_period: float = 5.0,
    switch_threshold: float = 0.2,
    max_retries: int = 2,
) -> Scenario:
    """The paper's target regime: every node re-selects parents continually.

    ``churn_noise`` is the lognormal sigma of per-beacon ETX samples; 0.4
    gives mild churn, 1.0 heavy churn (calibrate with
    ``SimulationResult.churn_rate``).
    """
    return Scenario(
        name=f"dynamic_rgg{num_nodes}_n{churn_noise:g}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=uniform_loss_assigner(loss_low, loss_high),
        sim_config=_config(
            duration=duration,
            traffic_period=traffic_period,
            noise=churn_noise,
            switch_threshold=switch_threshold,
            max_retries=max_retries,
        ),
    )


def bursty_rgg_scenario(
    num_nodes: int = 60,
    *,
    p_good_to_bad: float = 0.05,
    p_bad_to_good: float = 0.25,
    duration: float = 400.0,
    traffic_period: float = 5.0,
    churn_noise: float = 0.3,
    max_retries: int = 2,
) -> Scenario:
    """Gilbert–Elliott bursty links (violates the iid assumption)."""
    return Scenario(
        name=f"bursty_rgg{num_nodes}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=gilbert_elliott_assigner(
            p_good_to_bad=p_good_to_bad, p_bad_to_good=p_bad_to_good
        ),
        sim_config=_config(
            duration=duration, traffic_period=traffic_period, noise=churn_noise,
            max_retries=max_retries,
        ),
    )


def drifting_rgg_scenario(
    num_nodes: int = 60,
    *,
    duration: float = 600.0,
    traffic_period: float = 5.0,
    churn_noise: float = 0.3,
    period_range=(100.0, 400.0),
) -> Scenario:
    """Non-stationary link qualities — the model-update ablation's regime."""
    return Scenario(
        name=f"drifting_rgg{num_nodes}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=drifting_loss_assigner(period_range=period_range),
        sim_config=_config(
            duration=duration, traffic_period=traffic_period, noise=churn_noise
        ),
    )


def drifting_line_scenario(
    num_nodes: int = 8,
    *,
    duration: float = 600.0,
    traffic_period: float = 3.0,
    period_range=(100.0, 400.0),
) -> Scenario:
    """Drifting links on a chain — isolates model updates from routing churn."""
    return Scenario(
        name=f"drifting_line{num_nodes}",
        topology_factory=partial(_line_topo, num_nodes),
        link_assigner=drifting_loss_assigner(period_range=period_range),
        sim_config=_config(
            duration=duration, traffic_period=traffic_period, noise=0.0
        ),
    )


def failing_rgg_scenario(
    num_nodes: int = 60,
    *,
    num_failures: int = 8,
    mean_downtime: float = 60.0,
    loss_low: float = 0.05,
    loss_high: float = 0.35,
    duration: float = 500.0,
    traffic_period: float = 4.0,
    churn_noise: float = 0.0,
    max_retries: int = 2,
) -> Scenario:
    """Node crashes and recoveries — topology dynamics without ETX noise.

    Each failure episode takes a random non-sink node down for an
    exponential downtime; routes re-form around it and snap back on
    recovery. A pure test of path-churn robustness: with
    ``churn_noise=0`` the *only* dynamics are the failures.
    """

    plan_factory = partial(
        _random_failures_plan, num_failures, duration, mean_downtime
    )

    return Scenario(
        name=f"failing_rgg{num_nodes}_f{num_failures}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=uniform_loss_assigner(loss_low, loss_high),
        sim_config=_config(
            duration=duration,
            traffic_period=traffic_period,
            noise=churn_noise,
            max_retries=max_retries,
        ),
        failure_plan_factory=plan_factory,
    )


def interference_rgg_scenario(
    num_nodes: int = 50,
    *,
    num_interferers: int = 3,
    interferer_radius: float = 0.3,
    loss_penalty: float = 0.35,
    mean_on: float = 20.0,
    mean_off: float = 60.0,
    duration: float = 400.0,
    traffic_period: float = 4.0,
    churn_noise: float = 0.2,
    max_retries: int = 2,
) -> Scenario:
    """Spatially-correlated interference bursts over a random deployment.

    On/off interference sources degrade every link in their neighbourhood
    simultaneously — cross-link loss correlation no per-link model has.
    """
    assigner_factory = partial(
        _interference_field_assigner,
        num_interferers,
        interferer_radius,
        loss_penalty,
        mean_on,
        mean_off,
    )

    return Scenario(
        name=f"interference_rgg{num_nodes}_i{num_interferers}",
        topology_factory=partial(_rgg_topo, num_nodes),
        link_assigner=None,
        sim_config=_config(
            duration=duration,
            traffic_period=traffic_period,
            noise=churn_noise,
            max_retries=max_retries,
        ),
        link_assigner_factory=assigner_factory,
    )
