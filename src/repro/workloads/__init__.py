"""Reproducible evaluation workloads: scenarios, approach specs, sweeps."""

from repro.workloads.runner import (
    ApproachOutcome,
    ApproachSpec,
    ComparisonRow,
    dophy_approach,
    em_approach,
    huffman_dophy_approach,
    linear_approach,
    path_measurement_approach,
    run_comparison,
    run_replicated,
    tree_ratio_approach,
)
from repro.workloads.scenarios import (
    Scenario,
    failing_rgg_scenario,
    interference_rgg_scenario,
    bursty_rgg_scenario,
    drifting_line_scenario,
    drifting_rgg_scenario,
    dynamic_rgg_scenario,
    line_scenario,
    static_grid_scenario,
    static_rgg_scenario,
)
from repro.workloads.export import row_to_record, rows_to_records, write_csv, write_json
from repro.workloads.tables import format_table

__all__ = [
    "Scenario",
    "line_scenario",
    "static_grid_scenario",
    "static_rgg_scenario",
    "dynamic_rgg_scenario",
    "bursty_rgg_scenario",
    "drifting_rgg_scenario",
    "drifting_line_scenario",
    "failing_rgg_scenario",
    "interference_rgg_scenario",
    "ApproachSpec",
    "ApproachOutcome",
    "ComparisonRow",
    "dophy_approach",
    "huffman_dophy_approach",
    "path_measurement_approach",
    "tree_ratio_approach",
    "linear_approach",
    "em_approach",
    "run_comparison",
    "run_replicated",
    "format_table",
    "row_to_record",
    "rows_to_records",
    "write_csv",
    "write_json",
]
