"""Result export: comparison rows to CSV / JSON.

Sweeps produce :class:`~repro.workloads.runner.ComparisonRow` objects;
these helpers flatten them into plain records and write standard formats
so results can be post-processed outside Python (R, gnuplot,
spreadsheets).
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Union

from repro.workloads.runner import ComparisonRow

__all__ = ["row_to_record", "rows_to_records", "write_csv", "write_json"]

PathLike = Union[str, pathlib.Path]


def row_to_record(
    row: ComparisonRow, *, extra: Mapping[str, Any] | None = None
) -> Dict[str, Any]:
    """Flatten one comparison row into a plain dict of scalars.

    ``extra`` lets sweeps attach their independent variables (e.g.
    ``{"churn_noise": 0.6, "seed": 7}``).
    """
    record: Dict[str, Any] = {
        "approach": row.approach,
        "mae": row.accuracy.mae,
        "rmse": row.accuracy.rmse,
        "median_error": row.accuracy.median_error,
        "p90_error": row.accuracy.p90_error,
        "max_error": row.accuracy.max_error,
        "links_compared": row.accuracy.n_links_compared,
        "links_truth": row.accuracy.n_links_truth,
        "coverage": row.accuracy.coverage,
        "packets": row.overhead.packets,
        "mean_bits_per_packet": row.overhead.mean_bits_per_packet,
        "p95_bits_per_packet": row.overhead.p95_bits_per_packet,
        "mean_bits_per_hop": row.overhead.mean_bits_per_hop,
        "control_bits": row.overhead.control_bits,
        "total_bits": row.overhead.total_bits,
        "delivery_ratio": row.delivery_ratio,
        "churn_rate": row.churn_rate,
    }
    if extra:
        overlap = record.keys() & extra.keys()
        if overlap:
            raise ValueError(f"extra keys shadow record fields: {sorted(overlap)}")
        record.update(extra)
    return record


def rows_to_records(
    rows: Iterable[ComparisonRow], *, extra: Mapping[str, Any] | None = None
) -> List[Dict[str, Any]]:
    """Flatten many rows (shared ``extra`` applied to each)."""
    return [row_to_record(r, extra=extra) for r in rows]


def write_csv(records: Sequence[Mapping[str, Any]], path: PathLike) -> pathlib.Path:
    """Write records as CSV (union of keys, stable order; missing -> '')."""
    path = pathlib.Path(path)
    if not records:
        raise ValueError("no records to write")
    fieldnames: List[str] = []
    for record in records:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames, restval="")
        writer.writeheader()
        for record in records:
            writer.writerow(dict(record))
    return path


def write_json(records: Sequence[Mapping[str, Any]], path: PathLike) -> pathlib.Path:
    """Write records as a JSON array (floats untouched; NaN not emitted)."""
    path = pathlib.Path(path)

    def clean(value: Any) -> Any:
        if isinstance(value, float) and value != value:
            return None
        return value

    payload = [{k: clean(v) for k, v in record.items()} for record in records]
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
