"""Plain-text table formatting for benchmark output.

The benchmark harness prints the paper-style rows; this keeps the
formatting in one place (fixed-width columns, right-aligned numbers,
``-`` for missing values).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any, *, precision: int = 4) -> str:
    """Render one cell: floats rounded, None as '-', everything else str()."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Format a fixed-width text table (first column left-aligned)."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")
    cells: List[List[str]] = [
        [format_value(v, precision=precision) for v in row] for row in rows
    ]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def render_row(values: Sequence[str]) -> str:
        parts = []
        for i, v in enumerate(values):
            parts.append(v.ljust(widths[i]) if i == 0 else v.rjust(widths[i]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(r) for r in cells)
    return "\n".join(lines)
