"""Content-addressed cache of built scenarios (skeleton/instantiation split).

Scenario construction — topology, channel layout, link-model parameter
draws, routing bootstrap — is engine-independent and, at 5k nodes,
rivals the run phase of the array kernel. This module splits
:meth:`repro.workloads.scenarios.Scenario.make_simulation` into:

* a **skeleton**: everything deterministic given ``(scenario, seed)``
  and expensive to recompute — the :class:`BuiltScenario` below. The
  cache *key* digests only the scenario description (which excludes the
  seed), so all seeds of one scenario share a directory and a new seed
  can **fork** a sibling's skeleton: seed-invariant parts (line/grid
  topologies, marked via :func:`seed_invariant_topology`) are reused
  outright, seed-dependent parts (RGG placement, link-model parameter
  draws) are replayed through the vectorized builders. A forked skeleton
  is *identical* to a cold-built one by construction — both run the same
  deterministic builders from ``RngRegistry(seed)`` — so cache hits,
  forks and cold builds can never yield different simulations whatever
  order concurrent workers populate the cache in.

* an **instantiation**: per-run mutable state — a fresh
  :class:`~repro.utils.rng.RngRegistry`, :meth:`LinkModel.fresh_copy`
  clones of the cached model prototypes (which are never sampled), a new
  :class:`~repro.net.link.Channel` with zeroed counters, and a routing
  engine restored from the captured
  :class:`~repro.net.routing.RoutingWarmState` (construction consumes no
  RNG, so restore is bit-identical to rebuild).

Bit-identity contract: a simulation instantiated from a cached or forked
skeleton produces byte-identical packet streams, traces, and sanitizer
fingerprints to a freshly built one (pinned by
``tests/workloads/test_scenario_cache.py`` and the golden suite run with
the cache hot and cold). Two caveats are enforced by
:meth:`ScenarioCache.applicable`:

* scenarios with a ``link_assigner_factory`` (interference fields) are
  bypassed — their models read lazily-advancing *shared* state whose
  construction draws belong to the run, and prototype cloning cannot
  isolate a shared field;
* runs under the RNG sanitizer (``REPRO_SANITIZE=1``) are bypassed — a
  cache hit legitimately skips the ``("channel", "assign")`` stream, but
  fingerprints must stay stream-for-stream comparable to fresh builds.

On-disk layout mirrors :mod:`repro.exec.cache` (two-level fan-out, one
directory per skeleton key, one entry per seed)::

    <root>/<key[:2]>/<key>/<seed>.pkl

Writes are atomic and durable — ``mkstemp`` + ``fsync`` + ``os.replace``
— so a crashed or concurrent writer can never leave a truncated entry;
racing writers of the same ``(key, seed)`` converge on identical bytes.
The write discipline is lint-enforced (reprolint RPL010).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import deque
from dataclasses import dataclass, replace
from functools import partial
from itertools import repeat
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.exec.hashing import code_version, stable_describe, stable_digest
from repro.net.failures import FailurePlan
from repro.net.link import BernoulliLink, Channel, LinkModel
from repro.net.routing import RoutingEngine, RoutingWarmState
from repro.net.topology import Topology
from repro.utils.rng import RngRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.scenarios import Scenario

__all__ = [
    "BuiltScenario",
    "ScenarioCache",
    "build_scenario",
    "fork_built",
    "seed_invariant_topology",
]

#: Version tag baked into every skeleton key; bump on layout changes.
_SKELETON_KEY = "scenario-skeleton/v1"

#: Entry format tags for the dense all-Bernoulli model encodings.
_MODELS_DENSE = "bernoulli-dense/v1"
_MODELS_INTERLEAVED = "bernoulli-interleaved/v1"


def _interleaved_keys(topology: Topology) -> list:
    """Directed-edge keys in ``Channel.build`` insertion order:
    ``(u, v), (v, u)`` per undirected edge."""
    return [
        key for u, v in topology.undirected_edges() for key in ((u, v), (v, u))
    ]


def _encode_models_dense(
    models: Dict[Tuple[int, int], LinkModel], topology: Topology
) -> Optional[Dict[str, Any]]:
    """Array encoding of an all-Bernoulli model map, or None.

    A 5k-node RGG carries ~250k link models; pickling them as objects
    dominates warm-load time. When every model is exactly a
    :class:`BernoulliLink` (the uniform-assigner scenarios, i.e. the
    scale sweeps this cache exists for), a loss array holds the same
    information losslessly — ``loss`` is the only state, and float64
    round-trips exactly, so the decoded map is bit-identical.

    The edge keys normally need no storage either: ``Channel.build``
    inserts ``(u, v), (v, u)`` per undirected edge, so the key sequence
    is derivable from the (already stored) topology. That is *verified*
    here, not assumed — a map in any other order keeps an explicit edge
    array.
    """
    if any(type(m) is not BernoulliLink for m in models.values()):
        return None
    losses = np.fromiter(
        (m.loss for m in models.values()), dtype=np.float64, count=len(models)
    )
    if list(models) == _interleaved_keys(topology):
        return {"format": _MODELS_INTERLEAVED, "losses": losses}
    edges = np.fromiter(
        (i for edge in models for i in edge), dtype=np.int64, count=2 * len(models)
    ).reshape(-1, 2)
    return {"format": _MODELS_DENSE, "edges": edges, "losses": losses}


def _decode_models_dense(
    dense: Dict[str, Any], topology: Topology
) -> Dict[Tuple[int, int], LinkModel]:
    # A 5k-node warm hit decodes ~250k models; everything here runs at
    # C level (list comprehension, ``map(setattr, ...)``, ``dict(zip)``)
    # because a per-item Python loop costs more than unpickling the
    # objects would, defeating the dense encoding's purpose.
    new, cls = BernoulliLink.__new__, BernoulliLink
    losses = dense["losses"].tolist()
    objs = [new(cls) for _ in losses]
    deque(map(setattr, objs, repeat("loss"), losses), maxlen=0)
    if dense["format"] == _MODELS_INTERLEAVED:
        keys = _interleaved_keys(topology)
    else:
        keys = list(map(tuple, dense["edges"].tolist()))
    return dict(zip(keys, objs))


@dataclass(frozen=True)
class BuiltScenario:
    """The expensive, deterministic product of scenario construction.

    Everything here is either immutable (topology, failure plan) or a
    prototype that instantiation copies before use (``models`` via
    :meth:`LinkModel.fresh_copy`, ``routing_warm`` via dict/array
    copies), so one skeleton can back any number of concurrent runs.
    """

    #: The seed this skeleton was built for (forks rebuild per seed).
    seed: int
    topology: Topology
    #: Directed edge -> link-model prototype, in ``Channel.build`` order.
    models: Dict[Tuple[int, int], LinkModel]
    failure_plan: Optional[FailurePlan]
    routing_warm: RoutingWarmState
    #: True when every model class's ``fresh_copy`` is the identity
    #: (stateless models) — instantiation may then alias ``models``
    #: instead of walking a quarter-million no-op copies.
    models_immutable: bool = False


def seed_invariant_topology(factory: Callable[[int], Topology]) -> bool:
    """True when ``factory`` ignores its seed (line/grid recipes).

    Factories declare this with a ``seed_invariant = True`` function
    attribute (set on the module-level builders in
    :mod:`repro.workloads.scenarios`); partials inherit it from the
    wrapped function. Seed-dependent factories (RGG) default to False
    and are rebuilt per seed on fork.
    """
    fn = factory.func if isinstance(factory, partial) else factory
    return bool(getattr(fn, "seed_invariant", False))


def _finish_build(
    scenario: "Scenario", seed: int, topology: Topology
) -> BuiltScenario:
    """Channel + failure plan + routing bootstrap for a given topology.

    Runs exactly the deterministic construction the fresh
    ``make_simulation`` path performs (same RNG keys, same builders), so
    the resulting skeleton is interchangeable with a fresh build.
    """
    from repro.net.simulation import DEFAULT_LINK_ASSIGNER

    plan = (
        scenario.failure_plan_factory(topology, seed)
        if scenario.failure_plan_factory is not None
        else None
    )
    assigner = scenario.link_assigner or DEFAULT_LINK_ASSIGNER
    registry = RngRegistry(seed)
    channel = Channel.build(topology, assigner, registry)
    routing = RoutingEngine(
        topology, channel, registry, scenario.sim_config.routing
    )
    models = {
        edge: channel.model(*edge).fresh_copy() for edge in channel.directed_edges()
    }
    classes = {type(m) for m in models.values()}
    immutable = all(c.fresh_copy is LinkModel.fresh_copy for c in classes)
    return BuiltScenario(
        seed=seed,
        topology=topology,
        models=models,
        failure_plan=plan,
        routing_warm=routing.capture_warm_state(),
        models_immutable=immutable,
    )


def build_scenario(scenario: "Scenario", seed: int) -> BuiltScenario:
    """Cold build: run the full construction pipeline for ``seed``."""
    return _finish_build(scenario, seed, scenario.topology_factory(seed))


def fork_built(
    sibling: BuiltScenario, scenario: "Scenario", seed: int
) -> BuiltScenario:
    """Derive ``seed``'s skeleton from a sibling seed's.

    Seed-invariant topologies are reused as-is (they are immutable and
    identical for every seed); seed-dependent ones are rebuilt through
    the (vectorized) factory. All per-seed draws — link-model parameters,
    failure schedules, the routing bootstrap — are replayed for the new
    seed, so the fork is content-identical to :func:`build_scenario`.
    """
    if sibling.seed == seed:
        return sibling
    if seed_invariant_topology(scenario.topology_factory):
        topology = sibling.topology
    else:
        topology = scenario.topology_factory(seed)
    return _finish_build(scenario, seed, topology)


class ScenarioCache:
    """On-disk store of :class:`BuiltScenario` skeletons, keyed by scenario."""

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Counters for benchmarking/reporting: how each request was met.
        self.stats: Dict[str, int] = {"warm": 0, "forked": 0, "cold": 0}

    # -- keys -------------------------------------------------------------------

    def skeleton_key(self, scenario: "Scenario") -> str:
        """Seed-independent digest of the scenario description + code version.

        ``Scenario`` carries no seed field, so every constructor knob
        (topology recipe, link class and its parameters, sim config
        including engine, fault plan recipe) lands in the key and the
        seed does not — the forking contract
        (tests/workloads/test_scenario_cache.py pins both directions).
        """
        return stable_digest(code_version(), _SKELETON_KEY, scenario)

    @staticmethod
    def applicable(scenario: "Scenario") -> bool:
        """Whether this scenario may be served from the cache at all.

        Shared-state link models (interference fields, reached via
        ``link_assigner_factory``) and sanitized runs are built fresh —
        see the module docstring for why.
        """
        from repro.sanitize import hooks as _sanitize_hooks

        if scenario.link_assigner_factory is not None:
            return False
        if _sanitize_hooks.ACTIVE is not None:
            return False
        return True

    def _skeleton_dir(self, key: str) -> Path:
        return self.root / key[:2] / key

    def _path(self, key: str, seed: int) -> Path:
        return self._skeleton_dir(key) / f"{seed}.pkl"

    # -- store / load -----------------------------------------------------------

    def load(self, key: str, seed: int) -> Optional[BuiltScenario]:
        """The cached skeleton for ``(key, seed)``, or None on miss.

        Unreadable entries (truncated by an older non-atomic writer,
        incompatible pickle) count as misses and are removed.
        """
        path = self._path(key, seed)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
            built = entry["result"]
            dense = entry.get("models_dense")
            if dense is not None:
                built = replace(
                    built, models=_decode_models_dense(dense, built.topology)
                )
            return built
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - cleanup race  # reprolint: disable=RPL009 - benign: re-deleted on next miss
                pass
            return None

    def store(
        self, key: str, seed: int, built: BuiltScenario, scenario: "Scenario"
    ) -> None:
        """Atomically persist a skeleton (mkstemp -> fsync -> os.replace).

        Never read-modify-write: each ``(key, seed)`` is one immutable
        file, and concurrent writers race to byte-identical content (the
        build is deterministic), so whoever loses the ``os.replace``
        race changes nothing.
        """
        path = self._path(key, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry: Dict[str, Any] = {
            "description": stable_describe((_SKELETON_KEY, scenario, seed)),
        }
        dense = _encode_models_dense(built.models, built.topology)
        if dense is not None:
            entry["result"] = replace(built, models={})
            entry["models_dense"] = dense
        else:
            entry["result"] = built
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                # Durability, not just atomicity: without the fsync a
                # crash shortly after os.replace can surface a
                # zero-length entry (same discipline as exec/cache.py).
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:  # reprolint: disable=RPL009 - tmp cleanup race; original exception re-raised
                pass
            raise

    def _sibling(self, key: str, seed: int) -> Optional[BuiltScenario]:
        """Any other seed's skeleton under ``key`` (lowest seed first, so
        the fork source is deterministic given the cache contents)."""
        skeleton_dir = self._skeleton_dir(key)
        if not skeleton_dir.is_dir():
            return None
        candidates = sorted(
            (int(p.stem), p) for p in skeleton_dir.glob("*.pkl") if p.stem.isdigit()
        )
        for other_seed, _path in candidates:
            if other_seed == seed:
                continue
            built = self.load(key, other_seed)
            if built is not None:
                return built
        return None

    # -- the fast path ----------------------------------------------------------

    def get_or_build(
        self, scenario: "Scenario", seed: int
    ) -> Tuple[BuiltScenario, str]:
        """The skeleton for ``(scenario, seed)`` plus how it was obtained.

        Resolution order: exact hit (``"warm"``), fork from a sibling
        seed (``"forked"``, persisted for next time), full cold build
        (``"cold"``, persisted). All three return content-identical
        skeletons; the status string feeds benchmarks and CLI footers.

        Forking only pays when the topology object can be reused — with
        a seed-dependent topology (RGG placement) a fork rebuilds every
        per-seed component anyway, so loading the sibling entry would be
        pure overhead and the request goes straight to a cold build.
        """
        key = self.skeleton_key(scenario)
        built = self.load(key, seed)
        if built is not None:
            self.stats["warm"] += 1
            return built, "warm"
        if seed_invariant_topology(scenario.topology_factory):
            sibling = self._sibling(key, seed)
            if sibling is not None:
                built = fork_built(sibling, scenario, seed)
                self.store(key, seed, built, scenario)
                self.stats["forked"] += 1
                return built, "forked"
        built = build_scenario(scenario, seed)
        self.store(key, seed, built, scenario)
        self.stats["cold"] += 1
        return built, "cold"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ScenarioCache({str(self.root)!r})"
