"""Comparison runner: several measurement approaches on one shared run.

All approaches under comparison observe the *same* simulation (they are
passive observers, so attaching several never perturbs the channel or
routing randomness) — paired comparisons with common random numbers.
:func:`run_comparison` executes one seed; :func:`run_replicated` averages
over several, optionally sharding the replicates over a process pool
(``jobs``) with a content-addressed result cache (``cache_dir``) — see
:mod:`repro.exec`.

Everything an :class:`ApproachSpec` holds must be picklable: factories
are frozen-dataclass callables and extractors are module-level functions
(never closures), because specs ride inside
:class:`repro.exec.ComparisonTask` payloads to pool workers and into
stable cache keys. ``tests/workloads/test_dispatchable.py`` enforces
this for every spec this module exports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import AccuracyReport, compare_estimates
from repro.analysis.overhead import OverheadSummary, summarize_overhead
from repro.coding.baseline_codes import IntegerCode
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.simulation import CollectionObserver, SimulationResult
from repro.tomography.base import PathSnapshotPolicy
from repro.tomography.em import EMTomography
from repro.tomography.linear import LinearTomography
from repro.tomography.mle_tree import TreeRatioTomography
from repro.tomography.path_measurement import PathMeasurement
from repro.utils.rng import spawn_seeds
from repro.workloads.scenarios import Scenario

__all__ = [
    "ApproachOutcome",
    "ApproachSpec",
    "ComparisonRow",
    "ReplicatedRow",
    "dophy_approach",
    "huffman_dophy_approach",
    "path_measurement_approach",
    "tree_ratio_approach",
    "linear_approach",
    "em_approach",
    "run_comparison",
    "run_replicated",
]

Link = Tuple[int, int]


@dataclass
class ApproachOutcome:
    """What one approach produced on one run."""

    losses: Dict[Link, float]
    support: Dict[Link, int] = field(default_factory=dict)
    #: Per-packet annotation bit counts ([] for end-to-end approaches).
    annotation_bits: List[int] = field(default_factory=list)
    annotation_hops: List[int] = field(default_factory=list)
    control_bits: int = 0
    #: Failure taxonomy counts (decode-failure causes, sink outages,
    #: duplicates, salvage activity); {} for approaches without one.
    failure_counts: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ApproachSpec:
    """Named recipe: build an observer, then extract its outcome."""

    name: str
    factory: Callable[[], CollectionObserver]
    extract: Callable[[CollectionObserver, SimulationResult], ApproachOutcome]


# -- standard approach specs ----------------------------------------------------------
#
# Factories are frozen-dataclass callables and extractors module-level
# functions so every spec pickles to process-pool workers.


def _failure_taxonomy(report) -> Dict[str, int]:
    """Flatten a Dophy-style report's failure counters (0s for reports
    that predate a counter, e.g. the Huffman variant's)."""
    counts: Dict[str, int] = dict(getattr(report, "decode_failure_causes", {}) or {})
    counts["decode_failures"] = getattr(report, "decode_failures", 0)
    counts["sink_outage_discards"] = getattr(report, "sink_outage_discards", 0)
    counts["duplicate_deliveries"] = getattr(report, "duplicate_deliveries", 0)
    counts["salvaged_packets"] = getattr(report, "salvaged_packets", 0)
    counts["salvaged_hops"] = getattr(report, "salvaged_hops", 0)
    return counts


def _extract_model_report(obs, result: SimulationResult) -> ApproachOutcome:
    """Shared extractor for Dophy-style observers (full pipeline reports)."""
    report = obs.report()
    return ApproachOutcome(
        losses={l: e.loss for l, e in report.estimates.items()},
        support={l: e.n_samples for l, e in report.estimates.items()},
        annotation_bits=report.annotation_bits,
        annotation_hops=report.annotation_hops,
        control_bits=report.dissemination_bits,
        failure_counts=_failure_taxonomy(report),
    )


def _extract_path_report(
    obs: PathMeasurement, result: SimulationResult
) -> ApproachOutcome:
    report = obs.report()
    return ApproachOutcome(
        losses={l: e.loss for l, e in report.estimates.items()},
        support={l: e.n_samples for l, e in report.estimates.items()},
        annotation_bits=report.annotation_bits,
        annotation_hops=report.annotation_hops,
    )


def _extract_end_to_end(obs, result: SimulationResult) -> ApproachOutcome:
    tomo = obs.solve()
    return ApproachOutcome(
        losses=tomo.losses,
        support=tomo.support,
        control_bits=obs.control_overhead_bits(),
    )


@dataclass(frozen=True)
class _DophyFactory:
    config: Optional[DophyConfig] = None

    def __call__(self) -> DophySystem:
        return DophySystem(self.config or DophyConfig())


def dophy_approach(
    name: str = "dophy", config: Optional[DophyConfig] = None
) -> ApproachSpec:
    return ApproachSpec(name, _DophyFactory(config), _extract_model_report)


@dataclass(frozen=True)
class _HuffmanDophyFactory:
    config: Optional[DophyConfig] = None

    def __call__(self):
        from repro.core.huffman_variant import HuffmanDophyVariant

        return HuffmanDophyVariant(self.config or DophyConfig())


def huffman_dophy_approach(
    name: str = "dophy_huffman", config: Optional[DophyConfig] = None
) -> ApproachSpec:
    """Dophy's full pipeline with canonical Huffman instead of arithmetic
    coding — the surgical entropy-coder ablation."""
    return ApproachSpec(name, _HuffmanDophyFactory(config), _extract_model_report)


@dataclass(frozen=True)
class _PathMeasurementFactory:
    count_code: Optional[IntegerCode] = None
    path_encoding: str = "explicit"

    def __call__(self) -> PathMeasurement:
        return PathMeasurement(self.count_code, path_encoding=self.path_encoding)


def path_measurement_approach(
    name: str = "direct",
    count_code: Optional[IntegerCode] = None,
    *,
    path_encoding: str = "explicit",
) -> ApproachSpec:
    return ApproachSpec(
        name, _PathMeasurementFactory(count_code, path_encoding), _extract_path_report
    )


@dataclass(frozen=True)
class _EndToEndFactory:
    cls: type
    policy: Optional[PathSnapshotPolicy] = None

    def __call__(self):
        return self.cls(self.policy)


def _end_to_end_spec(
    name: str, cls: type, policy: Optional[PathSnapshotPolicy]
) -> ApproachSpec:
    return ApproachSpec(name, _EndToEndFactory(cls, policy), _extract_end_to_end)


def tree_ratio_approach(
    name: str = "tree_ratio", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, TreeRatioTomography, policy)


def linear_approach(
    name: str = "linear", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, LinearTomography, policy)


def em_approach(
    name: str = "em", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, EMTomography, policy)


# -- execution ---------------------------------------------------------------------------


@dataclass
class ComparisonRow:
    """One approach's scores on one (or several averaged) run(s)."""

    approach: str
    accuracy: AccuracyReport
    overhead: OverheadSummary
    delivery_ratio: float
    churn_rate: float

    @property
    def mae(self) -> Optional[float]:
        return self.accuracy.mae


@dataclass(frozen=True)
class _AnnotationView:
    """Report-shaped adapter feeding an outcome's bit lists to
    :func:`summarize_overhead` (module-scoped: workers pickle rows built
    from it, and an inner class would defeat that)."""

    annotation_bits: List[int]
    annotation_hops: List[int]


def run_comparison(
    scenario: Scenario,
    approaches: Sequence[ApproachSpec],
    *,
    seed: int,
    min_support: int = 0,
    truth_kind: str = "empirical",
    scenario_cache_dir: Optional[str] = None,
) -> Tuple[Dict[str, ComparisonRow], SimulationResult]:
    """Run one seed of ``scenario`` with every approach attached.

    ``scenario_cache_dir`` enables the built-scenario cache
    (:mod:`repro.workloads.scenario_cache`): construction skeletons are
    loaded/forked/stored there with output bit-identical to a fresh
    build.
    """
    scenario_cache = None
    if scenario_cache_dir is not None:
        from repro.workloads.scenario_cache import ScenarioCache

        scenario_cache = ScenarioCache(scenario_cache_dir)
    observers = [(spec, spec.factory()) for spec in approaches]
    sim = scenario.make_simulation(
        seed, [obs for _, obs in observers], scenario_cache=scenario_cache
    )
    result = sim.run()
    truth = result.ground_truth.true_loss_map(kind=truth_kind)
    rows: Dict[str, ComparisonRow] = {}
    for spec, obs in observers:
        outcome = spec.extract(obs, result)
        accuracy = compare_estimates(
            outcome.losses,
            truth,
            method=spec.name,
            min_support=min_support,
            support=outcome.support,
        )
        overhead = summarize_overhead(
            _AnnotationView(outcome.annotation_bits, outcome.annotation_hops),
            method=spec.name,
            control_bits=outcome.control_bits,
        )
        rows[spec.name] = ComparisonRow(
            approach=spec.name,
            accuracy=accuracy,
            overhead=overhead,
            delivery_ratio=result.delivery_ratio,
            churn_rate=result.churn_rate,
        )
    return rows, result


@dataclass
class ReplicatedRow:
    """Scores averaged over replicates."""

    approach: str
    mae_mean: float
    mae_std: float
    p90_mean: float
    coverage_mean: float
    bits_per_packet_mean: float
    bits_per_hop_mean: float
    control_bits_mean: float
    delivery_ratio_mean: float
    churn_rate_mean: float
    replicates: int


def run_replicated(
    scenario: Scenario,
    approaches: Sequence[ApproachSpec],
    *,
    master_seed: int,
    replicates: int = 3,
    min_support: int = 0,
    truth_kind: str = "empirical",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    scenario_cache_dir: Optional[str] = None,
    runner: Optional["ParallelRunner"] = None,
) -> Dict[str, ReplicatedRow]:
    """Average :func:`run_comparison` over independent replicate seeds.

    Replicate seeds are derived up-front with :func:`spawn_seeds`, so
    each replicate's random streams are fixed by ``(master_seed, index)``
    alone — never by scheduling. ``jobs > 1`` shards the replicates over
    a process pool with byte-identical output to ``jobs=1``;
    ``cache_dir`` skips replicates already computed for this exact
    configuration and code version, and ``scenario_cache_dir`` shares
    built-scenario skeletons across replicates and reruns (cross-seed
    forking makes every replicate after the first skip most of
    construction). Pass an explicit ``runner`` to reuse a pool/cache
    across calls and to read ``runner.stats`` afterwards.
    """
    from repro.exec.parallel import ComparisonTask, ParallelRunner

    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    seeds = spawn_seeds(master_seed, replicates)
    if runner is None:
        runner = ParallelRunner(
            jobs=jobs, cache_dir=cache_dir, scenario_cache_dir=scenario_cache_dir
        )
    tasks = [
        ComparisonTask(
            scenario=scenario,
            approaches=tuple(approaches),
            seed=seed,
            min_support=min_support,
            truth_kind=truth_kind,
        )
        for seed in seeds
    ]
    acc: Dict[str, List[ComparisonRow]] = {spec.name: [] for spec in approaches}
    for task_result in runner.run_comparisons(tasks):
        for name, row in task_result.rows.items():
            acc[name].append(row)
    out: Dict[str, ReplicatedRow] = {}
    for name, rows_list in acc.items():
        maes = [r.accuracy.mae for r in rows_list if r.accuracy.mae is not None]
        p90s = [r.accuracy.p90_error for r in rows_list if r.accuracy.p90_error is not None]
        out[name] = ReplicatedRow(
            approach=name,
            mae_mean=float(np.mean(maes)) if maes else float("nan"),
            mae_std=float(np.std(maes)) if maes else float("nan"),
            p90_mean=float(np.mean(p90s)) if p90s else float("nan"),
            coverage_mean=float(np.mean([r.accuracy.coverage for r in rows_list])),
            bits_per_packet_mean=float(
                np.mean([r.overhead.mean_bits_per_packet for r in rows_list])
            ),
            bits_per_hop_mean=float(
                np.mean([r.overhead.mean_bits_per_hop for r in rows_list])
            ),
            control_bits_mean=float(
                np.mean([r.overhead.control_bits for r in rows_list])
            ),
            delivery_ratio_mean=float(
                np.mean([r.delivery_ratio for r in rows_list])
            ),
            churn_rate_mean=float(np.mean([r.churn_rate for r in rows_list])),
            replicates=len(rows_list),
        )
    return out
