"""Comparison runner: several measurement approaches on one shared run.

All approaches under comparison observe the *same* simulation (they are
passive observers, so attaching several never perturbs the channel or
routing randomness) — paired comparisons with common random numbers.
:func:`run_comparison` executes one seed; :func:`run_replicated` averages
over several.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import AccuracyReport, compare_estimates
from repro.analysis.overhead import OverheadSummary, summarize_overhead
from repro.coding.baseline_codes import IntegerCode
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.simulation import CollectionObserver, SimulationResult
from repro.tomography.base import PathSnapshotPolicy
from repro.tomography.em import EMTomography
from repro.tomography.linear import LinearTomography
from repro.tomography.mle_tree import TreeRatioTomography
from repro.tomography.path_measurement import PathMeasurement
from repro.utils.rng import spawn_seeds
from repro.workloads.scenarios import Scenario

__all__ = [
    "ApproachOutcome",
    "ApproachSpec",
    "ComparisonRow",
    "dophy_approach",
    "huffman_dophy_approach",
    "path_measurement_approach",
    "tree_ratio_approach",
    "linear_approach",
    "em_approach",
    "run_comparison",
    "run_replicated",
]

Link = Tuple[int, int]


@dataclass
class ApproachOutcome:
    """What one approach produced on one run."""

    losses: Dict[Link, float]
    support: Dict[Link, int] = field(default_factory=dict)
    #: Per-packet annotation bit counts ([] for end-to-end approaches).
    annotation_bits: List[int] = field(default_factory=list)
    annotation_hops: List[int] = field(default_factory=list)
    control_bits: int = 0


@dataclass(frozen=True)
class ApproachSpec:
    """Named recipe: build an observer, then extract its outcome."""

    name: str
    factory: Callable[[], CollectionObserver]
    extract: Callable[[CollectionObserver, SimulationResult], ApproachOutcome]


# -- standard approach specs ----------------------------------------------------------


def dophy_approach(
    name: str = "dophy", config: Optional[DophyConfig] = None
) -> ApproachSpec:
    def factory() -> DophySystem:
        return DophySystem(config or DophyConfig())

    def extract(obs: DophySystem, result: SimulationResult) -> ApproachOutcome:
        report = obs.report()
        return ApproachOutcome(
            losses={l: e.loss for l, e in report.estimates.items()},
            support={l: e.n_samples for l, e in report.estimates.items()},
            annotation_bits=report.annotation_bits,
            annotation_hops=report.annotation_hops,
            control_bits=report.dissemination_bits,
        )

    return ApproachSpec(name, factory, extract)


def huffman_dophy_approach(
    name: str = "dophy_huffman", config: Optional[DophyConfig] = None
) -> ApproachSpec:
    """Dophy's full pipeline with canonical Huffman instead of arithmetic
    coding — the surgical entropy-coder ablation."""
    from repro.core.huffman_variant import HuffmanDophyVariant

    def factory() -> "HuffmanDophyVariant":
        return HuffmanDophyVariant(config or DophyConfig())

    def extract(obs, result: SimulationResult) -> ApproachOutcome:
        report = obs.report()
        return ApproachOutcome(
            losses={l: e.loss for l, e in report.estimates.items()},
            support={l: e.n_samples for l, e in report.estimates.items()},
            annotation_bits=report.annotation_bits,
            annotation_hops=report.annotation_hops,
            control_bits=report.dissemination_bits,
        )

    return ApproachSpec(name, factory, extract)


def path_measurement_approach(
    name: str = "direct",
    count_code: Optional[IntegerCode] = None,
    *,
    path_encoding: str = "explicit",
) -> ApproachSpec:
    def factory() -> PathMeasurement:
        return PathMeasurement(count_code, path_encoding=path_encoding)

    def extract(obs: PathMeasurement, result: SimulationResult) -> ApproachOutcome:
        report = obs.report()
        return ApproachOutcome(
            losses={l: e.loss for l, e in report.estimates.items()},
            support={l: e.n_samples for l, e in report.estimates.items()},
            annotation_bits=report.annotation_bits,
            annotation_hops=report.annotation_hops,
        )

    return ApproachSpec(name, factory, extract)


def _end_to_end_spec(name: str, cls, policy: Optional[PathSnapshotPolicy]) -> ApproachSpec:
    def factory():
        return cls(policy)

    def extract(obs, result: SimulationResult) -> ApproachOutcome:
        tomo = obs.solve()
        return ApproachOutcome(
            losses=tomo.losses,
            support=tomo.support,
            control_bits=obs.control_overhead_bits(),
        )

    return ApproachSpec(name, factory, extract)


def tree_ratio_approach(
    name: str = "tree_ratio", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, TreeRatioTomography, policy)


def linear_approach(
    name: str = "linear", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, LinearTomography, policy)


def em_approach(
    name: str = "em", policy: Optional[PathSnapshotPolicy] = None
) -> ApproachSpec:
    return _end_to_end_spec(name, EMTomography, policy)


# -- execution ---------------------------------------------------------------------------


@dataclass
class ComparisonRow:
    """One approach's scores on one (or several averaged) run(s)."""

    approach: str
    accuracy: AccuracyReport
    overhead: OverheadSummary
    delivery_ratio: float
    churn_rate: float

    @property
    def mae(self) -> Optional[float]:
        return self.accuracy.mae


def run_comparison(
    scenario: Scenario,
    approaches: Sequence[ApproachSpec],
    *,
    seed: int,
    min_support: int = 0,
    truth_kind: str = "empirical",
) -> Tuple[Dict[str, ComparisonRow], SimulationResult]:
    """Run one seed of ``scenario`` with every approach attached."""
    observers = [(spec, spec.factory()) for spec in approaches]
    sim = scenario.make_simulation(seed, [obs for _, obs in observers])
    result = sim.run()
    truth = result.ground_truth.true_loss_map(kind=truth_kind)
    rows: Dict[str, ComparisonRow] = {}
    for spec, obs in observers:
        outcome = spec.extract(obs, result)
        accuracy = compare_estimates(
            outcome.losses,
            truth,
            method=spec.name,
            min_support=min_support,
            support=outcome.support,
        )

        class _Rep:
            annotation_bits = outcome.annotation_bits
            annotation_hops = outcome.annotation_hops

        overhead = summarize_overhead(
            _Rep(), method=spec.name, control_bits=outcome.control_bits
        )
        rows[spec.name] = ComparisonRow(
            approach=spec.name,
            accuracy=accuracy,
            overhead=overhead,
            delivery_ratio=result.delivery_ratio,
            churn_rate=result.churn_rate,
        )
    return rows, result


@dataclass
class ReplicatedRow:
    """Scores averaged over replicates."""

    approach: str
    mae_mean: float
    mae_std: float
    p90_mean: float
    coverage_mean: float
    bits_per_packet_mean: float
    bits_per_hop_mean: float
    control_bits_mean: float
    delivery_ratio_mean: float
    churn_rate_mean: float
    replicates: int


def run_replicated(
    scenario: Scenario,
    approaches: Sequence[ApproachSpec],
    *,
    master_seed: int,
    replicates: int = 3,
    min_support: int = 0,
    truth_kind: str = "empirical",
) -> Dict[str, ReplicatedRow]:
    """Average :func:`run_comparison` over independent replicate seeds."""
    if replicates < 1:
        raise ValueError("replicates must be >= 1")
    seeds = spawn_seeds(master_seed, replicates)
    acc: Dict[str, List[ComparisonRow]] = {spec.name: [] for spec in approaches}
    for seed in seeds:
        rows, _ = run_comparison(
            scenario,
            approaches,
            seed=seed,
            min_support=min_support,
            truth_kind=truth_kind,
        )
        for name, row in rows.items():
            acc[name].append(row)
    out: Dict[str, ReplicatedRow] = {}
    for name, rows_list in acc.items():
        maes = [r.accuracy.mae for r in rows_list if r.accuracy.mae is not None]
        p90s = [r.accuracy.p90_error for r in rows_list if r.accuracy.p90_error is not None]
        out[name] = ReplicatedRow(
            approach=name,
            mae_mean=float(np.mean(maes)) if maes else float("nan"),
            mae_std=float(np.std(maes)) if maes else float("nan"),
            p90_mean=float(np.mean(p90s)) if p90s else float("nan"),
            coverage_mean=float(np.mean([r.accuracy.coverage for r in rows_list])),
            bits_per_packet_mean=float(
                np.mean([r.overhead.mean_bits_per_packet for r in rows_list])
            ),
            bits_per_hop_mean=float(
                np.mean([r.overhead.mean_bits_per_hop for r in rows_list])
            ),
            control_bits_mean=float(
                np.mean([r.overhead.control_bits for r in rows_list])
            ),
            delivery_ratio_mean=float(
                np.mean([r.delivery_ratio for r in rows_list])
            ),
            churn_rate_mean=float(np.mean([r.churn_rate for r in rows_list])),
            replicates=len(rows_list),
        )
    return out
