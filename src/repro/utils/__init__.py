"""Shared utilities: deterministic RNG streams and argument validation."""

from repro.utils.rng import RngRegistry, derive_rng, spawn_seeds
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)

__all__ = [
    "RngRegistry",
    "derive_rng",
    "spawn_seeds",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
]
