"""Deterministic random-number-stream management.

Simulations in this package are fully reproducible: every stochastic
component (each link, the routing beacons, the traffic generator, ...)
draws from its own named substream derived from a single master seed.
This keeps results independent of the order in which components happen
to draw, which matters when comparing protocol variants on the *same*
sequence of channel events (common random numbers).

The derivation uses :class:`numpy.random.SeedSequence` spawning, the
recommended mechanism for creating statistically independent streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union, cast

import numpy as np

from repro.sanitize import hooks as _sanitize_hooks

__all__ = ["derive_rng", "spawn_seeds", "RngRegistry"]

#: Anything acceptable as a stream name component.
KeyPart = Union[str, int]


def _key_to_ints(key: Tuple[KeyPart, ...]) -> List[int]:
    """Map a structured stream key to a list of ints for SeedSequence.

    Strings are hashed with a stable (non-salted) FNV-1a so the mapping is
    identical across processes and Python versions; ints pass through.
    """
    out: List[int] = []
    for part in key:
        if isinstance(part, bool):  # bool is an int subclass; reject explicitly
            raise TypeError("bool is not a valid RNG key part")
        if isinstance(part, int):
            out.append(part & 0xFFFFFFFF)
        elif isinstance(part, str):
            acc = 0x811C9DC5
            for byte in part.encode("utf-8"):
                acc ^= byte
                acc = (acc * 0x01000193) & 0xFFFFFFFF
            out.append(acc)
        else:
            raise TypeError(f"RNG key parts must be str or int, got {type(part)!r}")
    return out


def derive_rng(master_seed: int, *key: KeyPart) -> np.random.Generator:
    """Return an independent Generator for the stream named by ``key``.

    The same ``(master_seed, key)`` always yields a generator producing the
    same sequence; different keys yield statistically independent streams.
    """
    seq = np.random.SeedSequence(entropy=master_seed, spawn_key=tuple(_key_to_ints(tuple(key))))
    gen = np.random.Generator(np.random.PCG64(seq))
    sanitizer = _sanitize_hooks.ACTIVE
    if sanitizer is not None:
        # Wrap at creation: callers (and the RngRegistry cache) hold the
        # recording proxy, so the off state pays nothing per draw.
        return cast(np.random.Generator, sanitizer.wrap(gen, tuple(key)))
    return gen


def spawn_seeds(master_seed: int, n: int) -> List[int]:
    """Derive ``n`` child integer seeds from a master seed.

    Useful for replication sweeps: each replicate gets its own master seed.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    seq = np.random.SeedSequence(entropy=master_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(n)]


class RngRegistry:
    """Lazy cache of named RNG streams sharing one master seed.

    Components ask for ``registry.get("link", u, v)`` and always receive the
    same generator object for the lifetime of the registry, so stream state
    advances coherently within one simulation run.
    """

    def __init__(self, master_seed: int):
        if not isinstance(master_seed, int):
            raise TypeError("master_seed must be an int")
        self._master_seed = master_seed
        self._streams: Dict[Tuple[KeyPart, ...], np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def get(self, *key: KeyPart) -> np.random.Generator:
        """Return (creating if needed) the generator for ``key``."""
        if not key:
            raise ValueError("stream key must be non-empty")
        tkey = tuple(key)
        gen = self._streams.get(tkey)
        if gen is None:
            gen = derive_rng(self._master_seed, *tkey)
            self._streams[tkey] = gen
        return gen

    def known_streams(self) -> Iterable[Tuple[KeyPart, ...]]:
        """Keys of all streams created so far (for diagnostics)."""
        return tuple(self._streams.keys())

    def __len__(self) -> int:
        return len(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(master_seed={self._master_seed}, streams={len(self._streams)})"
