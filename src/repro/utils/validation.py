"""Small argument-validation helpers used across the public API.

These raise early, with messages naming the offending parameter, rather
than letting bad configuration surface as confusing downstream behaviour
(e.g. a negative loss probability silently clamped by a sampler).
"""

from __future__ import annotations

import math
from typing import Any, Tuple, Type, Union

__all__ = [
    "check_probability",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a finite probability in [0, 1]."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is finite and strictly positive."""
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is finite and >= 0."""
    value = float(value)
    if not math.isfinite(value) or value < 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    lo: float,
    hi: float,
    *,
    inclusive: Tuple[bool, bool] = (True, True),
) -> float:
    """Validate that ``value`` lies in the interval [lo, hi] (bounds per ``inclusive``)."""
    value = float(value)
    lo_ok = value >= lo if inclusive[0] else value > lo
    hi_ok = value <= hi if inclusive[1] else value < hi
    if math.isnan(value) or not (lo_ok and hi_ok):
        lb = "[" if inclusive[0] else "("
        rb = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lb}{lo}, {hi}{rb}, got {value!r}")
    return value


def check_type(value: Any, name: str, expected: Union[Type, Tuple[Type, ...]]) -> Any:
    """Validate ``isinstance(value, expected)``, naming the parameter on failure."""
    if not isinstance(value, expected):
        exp = expected if isinstance(expected, tuple) else (expected,)
        names = ", ".join(t.__name__ for t in exp)
        raise TypeError(f"{name} must be of type {names}, got {type(value).__name__}")
    return value
