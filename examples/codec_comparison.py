#!/usr/bin/env python3
"""Encoding-efficiency comparison: Dophy's arithmetic annotation vs
classical integer codes, across link-quality regimes and path lengths.

All schemes run in "assumed path" mode (the sink learns paths out of
band), so the table isolates the cost of encoding the retransmission
counts themselves — the paper's "encoding overhead" metric. Path-id
bits, when carried, are identical for every scheme.

Run:  python examples/codec_comparison.py
"""

from repro.coding import EliasGammaCode, GolombRiceCode
from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    format_table,
    line_scenario,
    path_measurement_approach,
    run_comparison,
)

REGIMES = [
    ("good links (loss 1-8%)", 0.01, 0.08),
    ("mixed links (10-40%)", 0.1, 0.4),
    ("poor links (30-60%)", 0.3, 0.6),
]


def approaches():
    return [
        dophy_approach(
            "dophy", DophyConfig(aggregation_threshold=3, path_encoding="assumed")
        ),
        path_measurement_approach("fixed", None, path_encoding="assumed"),
        path_measurement_approach("gamma", EliasGammaCode(), path_encoding="assumed"),
        path_measurement_approach("rice0", GolombRiceCode(0), path_encoding="assumed"),
    ]


def main() -> None:
    rows = []
    for label, lo, hi in REGIMES:
        for num_nodes in [6, 16]:
            scenario = line_scenario(
                num_nodes, loss_low=lo, loss_high=hi, duration=200.0, traffic_period=3.0
            )
            results, _ = run_comparison(scenario, approaches(), seed=13)
            row = [label if num_nodes == 6 else "", f"{num_nodes - 1}"]
            for name in ["dophy", "fixed", "gamma", "rice0"]:
                row.append(results[name].overhead.mean_bits_per_packet)
            rows.append(row)
    print(
        format_table(
            ["link regime", "max hops", "dophy", "fixed-width", "elias-gamma", "rice(k=0)"],
            rows,
            title="Retransmission-count annotation, mean bits per packet",
            precision=1,
        )
    )
    print()
    print(
        "Reading: fixed-width fields (what a plain TinyOS annotation uses)\n"
        "cost 3-5x more than any entropy code. Dophy's arithmetic annotation\n"
        "wins on good links — the common case once routing has selected\n"
        "parents — where counts are almost all zero and arithmetic coding\n"
        "drops below one bit per hop, a floor no prefix code can cross. On\n"
        "poor links a unary/Rice code is near-optimal for geometric counts\n"
        "and edges Dophy out by 10-20% (the aggregation threshold K trades\n"
        "exactly this tail cost against model size — see the F3 ablation\n"
        "bench); Dophy's remaining advantages there are the bounded symbol\n"
        "set and the model updates (see the drifting-links benchmark)."
    )


if __name__ == "__main__":
    main()
