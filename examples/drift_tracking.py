#!/usr/bin/env python3
"""Tracking non-stationary link quality over time.

Links drift (interference cycles, weather, duty-cycled jammers); a
single pooled estimate smears over the whole run. This example attaches
a :class:`SlidingLinkEstimator` as a decode listener on a running Dophy
sink and prints the resulting link-quality *time series* for the busiest
links, next to the true instantaneous loss.

Run:  python examples/drift_tracking.py
"""

from repro.core import DophyConfig, DophySystem, SlidingLinkEstimator
from repro.net import (
    CollectionSimulation,
    RoutingConfig,
    SimulationConfig,
    drifting_loss_assigner,
    line_topology,
)
from repro.workloads import format_table

WINDOW = 80.0
DURATION = 600.0


def main() -> None:
    topology = line_topology(5)
    dophy = DophySystem(DophyConfig(model_update_period=60.0))
    sliding = SlidingLinkEstimator(max_attempts=31, window=WINDOW)
    simulation = CollectionSimulation(
        topology,
        seed=31,
        config=SimulationConfig(
            duration=DURATION,
            traffic_period=1.5,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=drifting_loss_assigner(
            base_range=(0.15, 0.3),
            amplitude_range=(0.1, 0.2),
            period_range=(150.0, 300.0),
        ),
        observers=[dophy],
    )
    dophy.add_decode_listener(sliding.add_decoded)
    result = simulation.run()

    checkpoints = [100.0, 200.0, 300.0, 400.0, 500.0, 600.0]
    # The two busiest links (closest to the sink see the most traffic).
    busiest = sorted(
        sliding.links(),
        key=lambda l: -sliding.n_samples(l, now=DURATION),
    )[:2]
    pooled = dophy.report().estimates

    for link in busiest:
        rows = []
        for t in checkpoints:
            est = sliding.estimate(link, now=t)
            true_now = result.channel.mean_loss(*link, t - WINDOW, t)
            rows.append(
                [
                    f"t={t:g}s",
                    sliding.n_samples(link, now=t),
                    true_now,
                    est.loss if est else None,
                    abs(est.loss - true_now) if est else None,
                ]
            )
        print(
            format_table(
                ["checkpoint", "window samples", "true loss (window avg)",
                 "windowed estimate", "abs err"],
                rows,
                title=(
                    f"Link {link[0]}->{link[1]} — drifting loss, "
                    f"{WINDOW:.0f}s sliding window "
                    f"(pooled whole-run estimate: {pooled[link].loss:.3f})"
                ),
                precision=3,
            )
        )
        print()
    print(
        "Reading: the sliding-window estimate follows the drift at every\n"
        "checkpoint, while the single pooled number can only report the\n"
        "run-long average."
    )


if __name__ == "__main__":
    main()
