#!/usr/bin/env python3
"""Operational use case: spotting bad links under bursty interference.

A network manager wants to know which links are unhealthy. Links here
follow Gilbert–Elliott burst processes (as near interference sources),
so naive short-window observation is noisy. The Dophy sink accumulates
per-link evidence and flags every link whose 95% confidence interval
lies above a loss threshold.

Run:  python examples/bursty_link_monitoring.py
"""

from repro.core import DophyConfig, DophySystem
from repro.net import (
    CollectionSimulation,
    RoutingConfig,
    SimulationConfig,
    gilbert_elliott_assigner,
    random_geometric_topology,
)
from repro.workloads import format_table

LOSS_THRESHOLD = 0.25


def main() -> None:
    topology = random_geometric_topology(40, seed=23)
    dophy = DophySystem(DophyConfig(aggregation_threshold=4))
    simulation = CollectionSimulation(
        topology,
        seed=23,
        config=SimulationConfig(
            duration=400.0,
            traffic_period=3.0,
            routing=RoutingConfig(etx_noise_std=0.3),
        ),
        link_assigner=gilbert_elliott_assigner(
            p_good_to_bad=0.08, p_bad_to_good=0.2,
            loss_good_range=(0.01, 0.08), loss_bad_range=(0.5, 0.85),
        ),
        observers=[dophy],
    )
    result = simulation.run()
    report = dophy.report()
    truth = result.ground_truth.true_loss_map(kind="empirical")

    flagged, healthy, undecided = [], 0, 0
    for link, est in sorted(report.estimates.items()):
        if est.n_samples < 30:
            undecided += 1
            continue
        lo, hi = est.confidence_interval()
        if lo > LOSS_THRESHOLD:
            flagged.append(
                [
                    f"{link[0]}->{link[1]}",
                    est.n_samples,
                    est.loss,
                    f"[{lo:.3f}, {hi:.3f}]",
                    truth.get(link),
                ]
            )
        else:
            healthy += 1

    print(
        f"monitored {len(report.estimates)} links over {result.duration:.0f}s; "
        f"{healthy} healthy, {len(flagged)} flagged (CI above {LOSS_THRESHOLD}), "
        f"{undecided} with too few samples"
    )
    print()
    if flagged:
        print(
            format_table(
                ["link", "samples", "est. loss", "95% CI", "true loss"],
                flagged,
                title=f"Links with loss confidently above {LOSS_THRESHOLD:.0%}",
                precision=3,
            )
        )
        # Sanity: every flagged link should really be lossy.
        true_positives = sum(1 for row in flagged if row[4] and row[4] > LOSS_THRESHOLD * 0.8)
        print(f"\n{true_positives}/{len(flagged)} flags confirmed by ground truth")
    else:
        print("no links flagged — network healthy")


if __name__ == "__main__":
    main()
