#!/usr/bin/env python3
"""Quickstart: run Dophy on a small dynamic sensor network.

Builds a 30-node random deployment with heterogeneous lossy links and
CTP-style dynamic routing, attaches the Dophy observer, runs five
simulated minutes of data collection, and prints every well-sampled
link's estimated frame-loss ratio next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import DophyConfig, DophySystem
from repro.net import (
    CollectionSimulation,
    RoutingConfig,
    SimulationConfig,
    random_geometric_topology,
    uniform_loss_assigner,
)
from repro.workloads import format_table


def main() -> None:
    topology = random_geometric_topology(30, seed=7)
    dophy = DophySystem(DophyConfig(aggregation_threshold=3))
    simulation = CollectionSimulation(
        topology,
        seed=7,
        config=SimulationConfig(
            duration=300.0,
            traffic_period=4.0,
            routing=RoutingConfig(etx_noise_std=0.5),  # parents churn
        ),
        link_assigner=uniform_loss_assigner(0.05, 0.35),
        observers=[dophy],
    )
    result = simulation.run()
    report = dophy.report()
    # Score against the *configured* link loss ("model") so the table shows
    # honest sampling error; against the realized frame outcomes
    # ("empirical") Dophy is exact by construction whenever every packet is
    # delivered, because it observes the very same ARQ exchanges.
    truth = result.ground_truth.true_loss_map(kind="model")

    print(
        f"network: {topology.num_nodes} nodes, "
        f"{result.ground_truth.packets_generated} packets, "
        f"delivery {result.delivery_ratio:.1%}, "
        f"{result.routing.total_parent_changes} parent changes"
    )
    print(
        f"dophy: {report.packets_decoded} annotations decoded, "
        f"mean {report.mean_annotation_bits / 8:.1f} B/packet "
        f"({report.mean_bits_per_hop:.1f} bits/hop), "
        f"{report.model_updates} model updates"
    )
    print()

    rows = []
    for link, est in sorted(report.estimates.items()):
        if est.n_samples < 50 or link not in truth:
            continue
        lo, hi = est.confidence_interval()
        rows.append(
            [
                f"{link[0]}->{link[1]}",
                est.n_samples,
                truth[link],
                est.loss,
                abs(est.loss - truth[link]),
                f"[{lo:.3f}, {hi:.3f}]",
            ]
        )
    print(
        format_table(
            ["link", "samples", "true loss", "estimate", "abs err", "95% CI"],
            rows,
            title="Per-link frame-loss estimates (links with >= 50 samples)",
            precision=3,
        )
    )


if __name__ == "__main__":
    main()
