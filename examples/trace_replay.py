#!/usr/bin/env python3
"""Record once, analyze offline many times.

Testbed workflows separate collection from analysis: record a trace,
then re-run estimators against it with different assumptions. This
example records one lossy run to a JSONL trace, reloads it, and replays
it through two estimator configurations:

* **in-band** — only hops of *delivered* packets (what an annotation
  system like Dophy can ever see);
* **out-of-band** — every successful hop, including those of packets
  dropped later (what an external sniffer would see).

The gap between them quantifies the delivery-censoring cost of in-band
measurement.

Run:  python examples/trace_replay.py
"""

import pathlib
import tempfile

from repro.analysis.metrics import compare_estimates
from repro.net import (
    CollectionSimulation,
    MacConfig,
    RoutingConfig,
    SimulationConfig,
    load_trace,
    random_geometric_topology,
    replay_into_estimator,
    save_trace,
    truth_from_header,
    uniform_loss_assigner,
)
from repro.workloads import format_table


def main() -> None:
    # 1. Record.
    topology = random_geometric_topology(30, seed=47)
    sim = CollectionSimulation(
        topology,
        seed=47,
        config=SimulationConfig(
            duration=300.0,
            traffic_period=2.5,
            mac=MacConfig(max_retries=2),  # shallow ARQ: real drops happen
            routing=RoutingConfig(etx_noise_std=0.4),
        ),
        link_assigner=uniform_loss_assigner(0.1, 0.45),
    )
    result = sim.run()
    trace_path = pathlib.Path(tempfile.mkdtemp(prefix="dophy_trace_")) / "run.jsonl"
    save_trace(result, trace_path)
    size_kb = trace_path.stat().st_size / 1024
    print(
        f"recorded {len(result.packets)} packets "
        f"(delivery {result.delivery_ratio:.1%}) to {trace_path} ({size_kb:.0f} KiB)\n"
    )

    # 2. Replay offline.
    header, packets = load_trace(trace_path)
    truth = truth_from_header(header)
    rows = []
    for label, delivered_only in [("in-band (delivered only)", True),
                                  ("out-of-band (all hops)", False)]:
        est = replay_into_estimator(header, packets, delivered_only=delivered_only)
        losses = {l: e.loss for l, e in est.estimates().items()}
        support = {l: est.n_samples(l) for l in est.links()}
        report = compare_estimates(
            losses, truth, method=label, min_support=30, support=support
        )
        total_samples = sum(support.values())
        rows.append(
            [label, total_samples, report.n_links_compared, report.mae, report.p90_error]
        )
    print(
        format_table(
            ["evidence", "hop samples", "links (>=30)", "MAE", "p90 err"],
            rows,
            title="Offline replay: in-band vs out-of-band evidence",
            precision=4,
        )
    )
    print(
        "\nReading: in-band measurement loses the evidence on packets that\n"
        "were later dropped; with a shallow retry cap that censoring is\n"
        "visible as fewer samples — the truncated-likelihood correction in\n"
        "the estimator keeps the *accuracy* gap small."
    )


if __name__ == "__main__":
    main()
