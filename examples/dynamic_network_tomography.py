#!/usr/bin/env python3
"""The paper's headline scenario: accuracy under routing dynamics.

Runs the same 60-node network at increasing levels of parent churn and
compares Dophy against the three classical end-to-end tomography
baselines. Classical methods degrade as the routing tree their inference
assumes goes stale; Dophy's per-packet annotations are immune.

Run:  python examples/dynamic_network_tomography.py
"""

from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    em_approach,
    format_table,
    linear_approach,
    run_comparison,
    tree_ratio_approach,
)


def main() -> None:
    approaches = [
        dophy_approach(),
        tree_ratio_approach(),
        linear_approach(),
        em_approach(),
    ]
    rows = []
    for churn_noise in [0.0, 0.3, 0.6, 1.0]:
        scenario = dynamic_rgg_scenario(
            60, churn_noise=churn_noise, duration=300.0, traffic_period=4.0
        )
        results, sim_result = run_comparison(
            scenario, approaches, seed=11, min_support=20
        )
        for name in ["dophy", "tree_ratio", "linear", "em"]:
            r = results[name]
            rows.append(
                [
                    f"{churn_noise:g}",
                    f"{sim_result.churn_rate * 60:.2f}",
                    name,
                    r.accuracy.mae,
                    r.accuracy.p90_error,
                    f"{r.accuracy.coverage:.0%}",
                ]
            )
    print(
        format_table(
            ["etx noise", "churn (chg/node/min)", "method", "MAE", "p90 err", "coverage"],
            rows,
            title="Per-link loss estimation accuracy vs routing dynamics (60-node RGG)",
            precision=4,
        )
    )
    print()
    print(
        "Reading: classical methods' error grows with churn (their assumed\n"
        "tree goes stale); Dophy stays flat because every packet carries its\n"
        "own path and retransmission evidence."
    )


if __name__ == "__main__":
    main()
