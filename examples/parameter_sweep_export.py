#!/usr/bin/env python3
"""Replicated parameter sweep with CSV/JSON export.

Shows the workloads API end-to-end: sweep the churn level, run every
approach with replicated seeds (paired on common random numbers within
each seed), and export the flattened records for external analysis.

Run:  python examples/parameter_sweep_export.py
"""

import pathlib
import tempfile

from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    em_approach,
    format_table,
    run_comparison,
    rows_to_records,
    tree_ratio_approach,
    write_csv,
    write_json,
)
from repro.utils.rng import spawn_seeds


def main() -> None:
    records = []
    summary_rows = []
    for churn_noise in [0.0, 0.5, 1.0]:
        scenario = dynamic_rgg_scenario(
            40, churn_noise=churn_noise, duration=200.0, traffic_period=4.0
        )
        for seed in spawn_seeds(99, 2):  # 2 replicates per point
            rows, result = run_comparison(
                scenario,
                [dophy_approach(), tree_ratio_approach(), em_approach()],
                seed=seed,
                min_support=20,
            )
            records.extend(
                rows_to_records(
                    rows.values(),
                    extra={
                        "churn_noise": churn_noise,
                        "seed": seed,
                        "measured_churn_per_min": result.churn_rate * 60,
                    },
                )
            )
    outdir = pathlib.Path(tempfile.mkdtemp(prefix="dophy_sweep_"))
    csv_path = write_csv(records, outdir / "sweep.csv")
    json_path = write_json(records, outdir / "sweep.json")

    # Quick on-screen digest: mean MAE per (noise, approach).
    from collections import defaultdict

    acc = defaultdict(list)
    for r in records:
        if r["mae"] is not None:
            acc[(r["churn_noise"], r["approach"])].append(r["mae"])
    for (noise, approach), maes in sorted(acc.items()):
        summary_rows.append([noise, approach, sum(maes) / len(maes), len(maes)])
    print(
        format_table(
            ["churn noise", "approach", "mean MAE", "replicates"],
            summary_rows,
            title="Sweep digest (full records exported)",
            precision=4,
        )
    )
    print(f"\nwrote {len(records)} records to:\n  {csv_path}\n  {json_path}")


if __name__ == "__main__":
    main()
