"""A3 (extension) — Estimator ablation: what the likelihood corrections buy.

DESIGN.md's estimator design choices, quantified. Three sink-side
estimators consume identical decoded evidence:

* ``naive``    — moment estimator 1 - n/sum(attempts), no corrections;
* ``no_trunc`` — geometric MLE without the X <= max_attempts conditioning;
* ``full``     — the shipped truncated MLE.

The retry cap is swept: with deep ARQ truncation rarely binds and all
three agree; with a tight cap the uncorrected estimators are biased low
on bad links (hops that would have needed many attempts never deliver
evidence, and only the truncated likelihood accounts for that).
"""

import numpy as np

from repro.core.estimator import PerLinkEstimator
from repro.workloads import format_table, line_scenario

from _common import emit, exec_footer, exec_runner, run_once

RETRY_CAPS = [1, 2, 4, 30]

#: Each retry cap is an independent simulation — sharded over REPRO_JOBS.
RUNNER = exec_runner()


def _variants_from_usage(result, cap):
    """Build the three estimators from ground-truth hop samples."""
    full = PerLinkEstimator(cap + 1, truncation_correction=True)
    no_trunc = PerLinkEstimator(cap + 1, truncation_correction=False)
    for link, usage in result.ground_truth.link_usage.items():
        for attempt in usage.attempt_samples:
            if attempt is None:
                continue  # failed hop: annotation never delivered
            full.add_exact(link, attempt - 1)
            no_trunc.add_exact(link, attempt - 1)
    return full, no_trunc


def _point(cap):
    """One sweep point (module-level so the process pool can pickle it)."""
    scenario = line_scenario(
        6, loss_low=0.4, loss_high=0.6, duration=600.0,
        traffic_period=2.0, max_retries=cap,
    )
    sim = scenario.make_simulation(113)
    result = sim.run()
    truth = result.ground_truth.true_loss_map(kind="empirical")
    full, no_trunc = _variants_from_usage(result, cap)

    def mae(losses):
        common = losses.keys() & truth.keys()
        return float(
            np.mean([abs(losses[l] - truth[l]) for l in common])
        ) if common else float("nan")

    # Each estimates() call is one batched solve across the chain's links.
    full_losses = {l: e.loss for l, e in full.estimates().items()}
    nt_losses = {l: e.loss for l, e in no_trunc.estimates().items()}
    naive_losses = full.naive_estimates()
    return (
        result.delivery_ratio,
        mae(naive_losses),
        mae(nt_losses),
        mae(full_losses),
    )


def _run():
    table = []
    raw = {}
    points = RUNNER.map(_point, RETRY_CAPS)
    for cap, (delivery, naive, no_trunc, full) in zip(RETRY_CAPS, points):
        table.append([cap, f"{delivery:.1%}", naive, no_trunc, full])
        raw[cap] = (naive, no_trunc, full)
    return table, raw


def test_a3_estimator_ablation(benchmark):
    table, raw = run_once(benchmark, _run)
    text = format_table(
        ["retry cap", "delivery", "naive MAE", "MLE no-trunc MAE", "full MLE MAE"],
        table,
        title="A3: estimator ablation on lossy chain (per-link loss 40-60%)",
        precision=4,
    )
    emit("a3_estimator_ablation", text + "\n" + exec_footer(RUNNER))

    # Tight caps: the full MLE clearly beats both ablated variants.
    for cap in [1, 2]:
        naive, no_trunc, full = raw[cap]
        assert full < no_trunc
        assert full < naive
        assert full < 0.6 * naive
    # Deep ARQ: truncation rarely binds; all variants nearly agree.
    naive, no_trunc, full = raw[30]
    assert abs(no_trunc - full) < 0.01
