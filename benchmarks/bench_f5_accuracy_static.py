"""F5 — Estimation accuracy on a static network (error CDF).

Regenerates the accuracy comparison on classical tomography's home turf:
an 80-node random deployment with frozen routing. Two MAC regimes are
reported: a shallow retry cap (2), where end-to-end delivery still
carries loss information, and CTP-style deep ARQ (30 retries), where
delivery saturates at ~100% and end-to-end methods are blind to frame
loss — the structural argument for Dophy's per-hop evidence.

Expected shape: Dophy matches direct path measurement (same evidence)
and beats every end-to-end method even statically; under deep ARQ the
end-to-end methods collapse entirely while Dophy is unaffected.
"""

from repro.workloads import (
    dophy_approach,
    em_approach,
    format_table,
    linear_approach,
    path_measurement_approach,
    run_comparison,
    static_rgg_scenario,
    tree_ratio_approach,
)

from _common import emit, run_once

CDF_POINTS = (0.01, 0.02, 0.05, 0.1, 0.2)
METHODS = ["dophy", "direct", "tree_ratio", "linear", "em"]


def _approaches():
    return [
        dophy_approach(),
        path_measurement_approach(),
        tree_ratio_approach(),
        linear_approach(),
        em_approach(),
    ]


def _experiment():
    out = {}
    for regime, retries in [("shallow ARQ (2 retries)", 2), ("deep ARQ (30 retries)", 30)]:
        scenario = static_rgg_scenario(
            80, duration=500.0, traffic_period=3.0, max_retries=retries
        )
        rows, result = run_comparison(
            scenario, _approaches(), seed=105, min_support=30
        )
        out[regime] = (rows, result.delivery_ratio)
    return out


def test_f5_accuracy_static(benchmark):
    out = run_once(benchmark, _experiment)
    sections = []
    raw = {}
    for regime, (rows, delivery) in out.items():
        table = []
        for name in METHODS:
            r = rows[name]
            acc = r.accuracy
            table.append(
                [name, acc.mae, acc.p90_error]
                + [acc.cdf.get(x) for x in CDF_POINTS]
            )
            raw[(regime, name)] = acc.mae
        sections.append(
            format_table(
                ["method", "MAE", "p90"] + [f"P(e<={x:g})" for x in CDF_POINTS],
                table,
                title=f"F5: static 80-node RGG, {regime}, delivery {delivery:.1%}",
                precision=3,
            )
        )
    text = "\n\n".join(sections)
    emit("f5_accuracy_static", text)

    shallow = "shallow ARQ (2 retries)"
    deep = "deep ARQ (30 retries)"
    # Dophy == direct measurement (identical evidence), and both beat e2e.
    assert abs(raw[(shallow, "dophy")] - raw[(shallow, "direct")]) < 1e-6
    for e2e in ["tree_ratio", "linear", "em"]:
        assert raw[(shallow, "dophy")] < raw[(shallow, e2e)] * 0.5
    # Deep ARQ blinds the end-to-end methods (error ~ mean link loss) but
    # leaves Dophy untouched.
    assert raw[(deep, "dophy")] < 0.01
    for e2e in ["tree_ratio", "linear", "em"]:
        assert raw[(deep, e2e)] > 0.08
        assert raw[(deep, e2e)] > raw[(shallow, e2e)]
