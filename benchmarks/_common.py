"""Shared plumbing for the experiment benches.

Every bench regenerates one of the paper's (reconstructed) tables or
figures: it runs the experiment inside the pytest-benchmark fixture,
prints the paper-style rows, and also writes them to
``benchmarks/results/<experiment id>.txt`` so the output survives
pytest's capture. Shape assertions at the end of each bench encode what
must hold for the reproduction to count (DESIGN.md §3).
"""

from __future__ import annotations

import pathlib
import sys
from typing import Any, Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(experiment_id: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment_id}.txt"
    out.write_text(text + "\n")
    # Both streams: stdout is captured per-test, but -s / failed tests show it.
    print(f"\n{text}\n[written to {out}]")
    sys.stdout.flush()


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run the experiment exactly once under the benchmark fixture.

    These benches measure end-to-end experiment regeneration time, not a
    hot loop — one round is the honest number.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
