"""Shared plumbing for the experiment benches.

Every bench regenerates one of the paper's (reconstructed) tables or
figures: it runs the experiment inside the pytest-benchmark fixture,
prints the paper-style rows, and also writes them to
``benchmarks/results/<experiment id>.txt`` so the output survives
pytest's capture. Shape assertions at the end of each bench encode what
must hold for the reproduction to count (DESIGN.md §3).
"""

from __future__ import annotations

import os
import pathlib
import sys
from typing import Any, Callable

from repro.exec import ParallelRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benches resolve RESULTS_DIR relative to *this file*, never the CWD, so
# they may be launched from anywhere. Materialize it at import time and
# fail with an actionable message if that is impossible (read-only
# checkout, this module imported from a location it was copied out of) —
# better than every bench failing at its final emit() after minutes of
# simulation, or results silently scattering relative to an odd CWD.
try:
    RESULTS_DIR.mkdir(exist_ok=True)
except OSError as exc:
    raise RuntimeError(
        f"cannot create benchmark results dir {RESULTS_DIR} "
        f"(cwd: {pathlib.Path.cwd()}): {exc}. Benches write their tables "
        "relative to benchmarks/_common.py, not the CWD — run them as "
        "`PYTHONPATH=src python -m pytest benchmarks/` from a writable "
        "checkout."
    ) from exc


def exec_runner(default_jobs: int = 1) -> ParallelRunner:
    """Build the execution engine benches share.

    Environment knobs (benches run under pytest, which has no custom
    flags of its own here):

    * ``REPRO_JOBS``           — worker processes (default: ``default_jobs``);
    * ``REPRO_CACHE_DIR``      — enable the content-addressed result cache;
    * ``REPRO_SCENARIO_CACHE`` — enable the built-scenario cache
      (skeleton reuse across seeds/reruns; bit-identical by contract).

    Results are byte-identical whatever ``REPRO_JOBS`` is (enforced by
    ``tests/exec/test_determinism.py``) and whether either cache is cold
    or warm, so the shape assertions at the end of each bench hold at
    any parallelism and cache temperature.
    """
    jobs = int(os.environ.get("REPRO_JOBS", str(default_jobs)))
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    scenario_cache_dir = os.environ.get("REPRO_SCENARIO_CACHE") or None
    return ParallelRunner(
        jobs=jobs, cache_dir=cache_dir, scenario_cache_dir=scenario_cache_dir
    )


def exec_footer(runner: ParallelRunner) -> str:
    """One-line execution report appended to a bench's emitted table."""
    return f"[exec jobs={runner.jobs}: {runner.stats.describe()}]"


def emit(experiment_id: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / f"{experiment_id}.txt"
    out.write_text(text + "\n")
    # Both streams: stdout is captured per-test, but -s / failed tests show it.
    print(f"\n{text}\n[written to {out}]")
    sys.stdout.flush()


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run the experiment exactly once under the benchmark fixture.

    These benches measure end-to-end experiment regeneration time, not a
    hot loop — one round is the honest number.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
