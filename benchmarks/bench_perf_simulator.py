"""Performance microbenchmarks: simulator throughput.

Tracks how fast a full Dophy-instrumented collection run executes —
the quantity that bounds every sweep in the experiment benches.
"""

from repro.core import DophyConfig, DophySystem
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import random_geometric_topology


def _run_once(seed: int):
    topo = random_geometric_topology(50, seed=seed)
    dophy = DophySystem(DophyConfig())
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=SimulationConfig(
            duration=60.0,
            traffic_period=3.0,
            routing=RoutingConfig(etx_noise_std=0.5),
        ),
        link_assigner=uniform_loss_assigner(0.05, 0.3),
        observers=[dophy],
    )
    result = sim.run()
    return result, dophy


def test_perf_collection_run_with_dophy(benchmark):
    result, dophy = benchmark(_run_once, 3)
    assert result.ground_truth.packets_generated > 500
    assert dophy.report().decode_failures == 0


def test_perf_bare_simulation(benchmark):
    def run():
        topo = random_geometric_topology(50, seed=5)
        sim = CollectionSimulation(
            topo,
            seed=5,
            config=SimulationConfig(duration=60.0, traffic_period=3.0),
            link_assigner=uniform_loss_assigner(0.05, 0.3),
        )
        return sim.run()

    result = benchmark(run)
    assert result.delivery_ratio > 0.5
