"""Performance microbenchmarks: array simulation kernel vs event oracle.

Times the array engine (``engine="array"``: calendar-queue wheel,
buffered block MAC draws, vectorized beacon ETX sampling, batched
multi-hop forwarding, incremental shortest paths — see ``net/fastsim.py``
and DESIGN.md §12) against the reference event engine on the F7
scalability workload at two sizes, plus the two batched components in
isolation:

* the F7 dynamic RGG at 200 nodes (the size the accuracy sweep in
  ``bench_f7_scalability.py`` tops out at) and at 5000 nodes (the
  regime the array kernel exists for);
* one beacon round's ETX sampling for every directed edge (the event
  engine's dominant cost at scale — vectorized vs the scalar loop);
* the calendar-queue wheel vs the binary-heap queue on a synthetic
  schedule shaped like simulator load.

The 5k entry times scenario construction (topology + channel + warm
start, engine-independent by design) separately from the simulation
run, and reports both the run-phase speedup and the total including
construction.

Results go to ``benchmarks/results/BENCH_simulator.json`` so the perf
trajectory accumulates across PRs, alongside ``BENCH_estimator.json``.
The bit-identity checks always run — for the shared seed the two
engines must produce identical packet streams at both sizes — while
the speedup floors are opt-in (``REPRO_PERF=1``) because single-core
CI containers make wall-clock ratios unreliable. The 200-node
end-to-end floor is deliberately modest: at that size forwarding,
queueing and tree recomputation still fit one interpreter's cache and
the per-edge beacon work is small. The ≥3× floor sits on the 5k-node
run, where the per-edge and per-event batching dominates; the ≥5×
floor on the beacon-sampling kernel where vectorization applies
wholesale.
"""

import json
import os
import time

from repro.net.events import CalendarQueue, EventQueue
from repro.net.fastsim import VectorizedEtxSampler
from repro.utils.rng import derive_rng
from repro.workloads import dynamic_rgg_scenario

from _common import RESULTS_DIR, run_once

#: F7 workload (EXPERIMENTS.md §F7) at a size the event oracle can
#: still run inside a CI bench; the array engine is what makes the
#: 5–10k-node end of the sweep reachable.
F7_NODES = 200
F7_DURATION = 120.0
F7_SEED = 107

#: The 5k-node point of the F7 sweep (ROADMAP: the Zhu/Deng
#: fast-parameter-estimation regime). Duration and per-node data rate
#: are scaled down so the *event oracle* stays runnable in CI — at this
#: size the network has ~250k directed edges and the per-edge routing
#: machinery, not the data plane, is the scaling bottleneck the sweep
#: stresses.
F7_5K_NODES = 5000
F7_5K_DURATION = 30.0
F7_5K_TRAFFIC_PERIOD = 10.0

BEACON_ROUNDS = 20
WHEEL_EVENTS = 150_000


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _f7_scenario():
    return dynamic_rgg_scenario(
        F7_NODES, churn_noise=0.4, duration=F7_DURATION, traffic_period=4.0
    )


def _run_engine(engine):
    scenario = _f7_scenario().with_config(engine=engine)
    t0 = time.perf_counter()
    result = scenario.make_simulation(seed=F7_SEED).run()
    return time.perf_counter() - t0, result


def _run_engine_phases(engine):
    """5k run with construction and simulation timed separately."""
    scenario = dynamic_rgg_scenario(
        F7_5K_NODES,
        churn_noise=0.4,
        duration=F7_5K_DURATION,
        traffic_period=F7_5K_TRAFFIC_PERIOD,
    ).with_config(engine=engine)
    t0 = time.perf_counter()
    sim = scenario.make_simulation(seed=F7_SEED)
    t1 = time.perf_counter()
    result = sim.run()
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, result


def _bench_f7_5k():
    event_setup, event_run, event_result = _run_engine_phases("event")
    array_setup, array_run, array_result = _run_engine_phases("array")
    identical = (
        event_result.packets == array_result.packets
        and event_result.events_processed == array_result.events_processed
    )
    return {
        "nodes": F7_5K_NODES,
        "duration_s": F7_5K_DURATION,
        "traffic_period_s": F7_5K_TRAFFIC_PERIOD,
        "seed": F7_SEED,
        "events_processed": event_result.events_processed,
        "event_setup_s": event_setup,
        "event_run_s": event_run,
        "array_setup_s": array_setup,
        "array_run_s": array_run,
        "run_speedup": event_run / array_run,
        "total_speedup": (event_setup + event_run) / (array_setup + array_run),
        "identical_streams": identical,
    }


def _bench_beacon_sampling():
    """Scalar per-edge ETX sampling loop vs the vectorized kernel.

    Both run against the same freshly-built network; each uses its own
    RNG clone of the beacon stream so the draws match draw-for-draw.
    """
    sim = _f7_scenario().make_simulation(seed=F7_SEED)
    routing = sim.routing
    sigma = routing.config.etx_noise_std
    edges = list(routing.channel.directed_edges())

    scalar_rng = derive_rng(0, "bench", "beacons")
    vector_rng = derive_rng(0, "bench", "beacons")

    def scalar_round(now):
        out = []
        for u, v in edges:
            sample = 1.0 / max(
                1e-6,
                (1.0 - routing.channel.true_loss(u, v, now))
                * (1.0 - routing.channel.true_loss(v, u, now)),
            )
            sample *= float(scalar_rng.lognormal(0.0, sigma))
            out.append(sample)
        return out

    sampler = VectorizedEtxSampler(routing)
    sampler._rng = vector_rng

    scalar_s = _best_of(lambda: [scalar_round(t) for t in range(BEACON_ROUNDS)], 3)
    vector_s = _best_of(lambda: [sampler(float(t)) for t in range(BEACON_ROUNDS)], 3)
    return {
        "n_edges": len(edges),
        "rounds": BEACON_ROUNDS,
        "scalar_s": scalar_s,
        "vectorized_s": vector_s,
        "speedup": scalar_s / vector_s,
    }


def _bench_wheel():
    """Heap vs wheel on a simulator-shaped schedule (MAC-scale delays
    interleaved with periodic beacon/traffic horizons)."""
    delays = (0.002, 0.005, 0.015, 2.0, 10.0)

    def drive(queue_cls):
        queue = queue_cls()
        now = 0.0
        for i in range(WHEEL_EVENTS):
            queue.push(now + delays[i % len(delays)], _noop)
            if i % 2:
                event = queue.pop()
                now = event.time
        while queue.pop() is not None:
            pass

    heap_s = _best_of(lambda: drive(EventQueue), 3)
    wheel_s = _best_of(lambda: drive(CalendarQueue), 3)
    return {
        "n_events": WHEEL_EVENTS,
        "heap_s": heap_s,
        "wheel_s": wheel_s,
        "speedup": heap_s / wheel_s,
    }


def _noop():
    pass


def _run():
    event_s, event_result = _run_engine("event")
    array_s, array_result = _run_engine("array")
    identical = (
        event_result.packets == array_result.packets
        and event_result.events_processed == array_result.events_processed
    )
    return {
        "f7_run": {
            "nodes": F7_NODES,
            "duration_s": F7_DURATION,
            "seed": F7_SEED,
            "events_processed": event_result.events_processed,
            "event_s": event_s,
            "array_s": array_s,
            "speedup": event_s / array_s,
            "identical_streams": identical,
        },
        "f7_5k_run": _bench_f7_5k(),
        "beacon_sampling": _bench_beacon_sampling(),
        "event_wheel": _bench_wheel(),
    }


def test_perf_simulator(benchmark):
    report = run_once(benchmark, _run)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_simulator.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {out}]")

    # Correctness always: the array kernel is the event engine, observably.
    assert report["f7_run"]["identical_streams"]
    assert report["f7_5k_run"]["identical_streams"]

    if os.environ.get("REPRO_PERF") == "1":
        # Acceptance floors (run on idle multi-core hardware).
        assert report["beacon_sampling"]["speedup"] >= 5.0, report["beacon_sampling"]
        assert report["event_wheel"]["speedup"] >= 1.2, report["event_wheel"]
        assert report["f7_run"]["speedup"] >= 1.3, report["f7_run"]
        assert report["f7_5k_run"]["run_speedup"] >= 3.0, report["f7_5k_run"]
        assert report["f7_5k_run"]["total_speedup"] >= 2.0, report["f7_5k_run"]
