"""F7 — Scalability: accuracy and overhead vs network size.

Runs the default dynamic scenario at 25/50/100/200 nodes and reports
Dophy's accuracy, annotation size (absolute and per hop), model
dissemination cost, and the network's mean path length.

Expected shape: accuracy is size-independent (evidence is per-link);
annotation bits per packet grow with mean path depth and with
log2(N) node ids, i.e. clearly sub-linearly in N; per-hop bits are
nearly flat.
"""

from repro.exec import ComparisonTask
from repro.workloads import dophy_approach, dynamic_rgg_scenario, format_table

from _common import emit, exec_footer, exec_runner, run_once

SIZES = [25, 50, 100, 200]

#: One replicate per size, all independent — the engine shards them over
#: REPRO_JOBS workers and caches each under REPRO_CACHE_DIR.
RUNNER = exec_runner()


def _experiment():
    tasks = [
        ComparisonTask(
            scenario=dynamic_rgg_scenario(
                n, churn_noise=0.4, duration=300.0, traffic_period=4.0
            ),
            approaches=(dophy_approach(),),
            seed=107,
            min_support=30,
        )
        for n in SIZES
    ]
    results = RUNNER.run_comparisons(tasks)
    return [
        (n, r.summary.mean_hop_count, r.rows["dophy"], r.summary.delivery_ratio)
        for n, r in zip(SIZES, results)
    ]


def test_f7_scalability(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for n, mean_hops, row, delivery in out:
        table.append(
            [
                n,
                mean_hops,
                f"{delivery:.1%}",
                row.accuracy.mae,
                row.overhead.mean_bits_per_packet,
                row.overhead.mean_bits_per_hop,
                row.overhead.control_bits / 1000.0,
            ]
        )
        raw[n] = (row.accuracy.mae, row.overhead.mean_bits_per_packet,
                  row.overhead.mean_bits_per_hop)
    text = format_table(
        ["nodes", "mean hops", "delivery", "dophy MAE", "bits/pkt", "bits/hop", "dissem kbits"],
        table,
        title="F7: Dophy scalability with network size (dynamic RGG, 300s)",
        precision=3,
    )
    emit("f7_scalability", text + "\n" + exec_footer(RUNNER))

    # Accuracy holds at every size.
    for n in SIZES:
        assert raw[n][0] < 0.05
    # Per-packet bits grow sub-linearly in N (8x nodes -> well under 4x bits).
    assert raw[200][1] < raw[25][1] * 4
    # Per-hop bits stay within a moderate band across sizes.
    per_hop = [raw[n][2] for n in SIZES]
    assert max(per_hop) < 2.5 * min(per_hop)
