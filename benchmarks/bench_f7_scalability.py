"""F7 — Scalability: accuracy and overhead vs network size.

Runs the default dynamic scenario at 25/50/100/200 nodes and reports
Dophy's accuracy, annotation size (absolute and per hop), model
dissemination cost, and the network's mean path length — then extends
the sweep to 1000/5000/10000 nodes on the array kernel
(``engine="array"``, DESIGN.md §12), the regime the paper's scalability
claim actually concerns and the event oracle cannot sweep.

Expected shape: accuracy is size-independent (evidence is per-link);
annotation bits per packet grow with mean path depth and with
log2(N) node ids, i.e. clearly sub-linearly in N; per-hop bits are
nearly flat.

Large-size protocol (EXPERIMENTS.md §F7): duration and per-node data
rate scale down with N so a sweep row stays inside a CI bench budget —
the per-edge routing machinery, not the data plane, is what the sweep
stresses at scale. At every large size the event oracle can still run
(~10–35 s per row short-duration), the two engines' packet streams are
asserted bit-identical, so the big-N rows carry the same evidence
status as the small-N ones. The final row — 10k nodes at 4× the
duration — is array-only: the oracle would need minutes for it, which
is exactly the reachability gap the kernel exists to close.

Scenario construction at these sizes is itself the setup bottleneck;
set ``REPRO_SCENARIO_CACHE`` to serve repeat builds from the
content-addressed skeleton cache (bit-identical by contract, see
``bench_perf_scenario.py``).
"""

import os
import time

from repro.exec import ComparisonTask
from repro.workloads import dophy_approach, dynamic_rgg_scenario, format_table
from repro.workloads.scenario_cache import ScenarioCache

from _common import emit, exec_footer, exec_runner, run_once

SIZES = [25, 50, 100, 200]

#: (nodes, duration_s, traffic_period_s) for the array-kernel extension.
#: Duration shrinks as N grows; the evidence base per *link* stays
#: usable because the estimator's min_support is lowered in step.
LARGE = [
    (1000, 120.0, 8.0),
    (5000, 30.0, 10.0),
    (10000, 15.0, 12.0),
]

#: The oracle-unreachable point: 10k nodes at 4x the sweep duration.
LONG = (10000, 60.0, 12.0)

SEED = 107
LARGE_MIN_SUPPORT = 10

#: One replicate per size, all independent — the engine shards them over
#: REPRO_JOBS workers and caches each under REPRO_CACHE_DIR.
RUNNER = exec_runner()

#: Skeleton cache for the direct (non-runner) engine-identity runs;
#: comparisons routed through RUNNER pick the same knob up via
#: exec_runner(). Identity holds cold, warm, or uncached — that is the
#: cache's contract, and this bench exercises it at sweep scale.
_CACHE_DIR = os.environ.get("REPRO_SCENARIO_CACHE") or None
SCENARIO_CACHE = ScenarioCache(_CACHE_DIR) if _CACHE_DIR else None


def _large_scenario(nodes, duration, traffic_period):
    return dynamic_rgg_scenario(
        nodes, churn_noise=0.4, duration=duration, traffic_period=traffic_period
    ).with_config(engine="array")


def _experiment():
    tasks = [
        ComparisonTask(
            scenario=dynamic_rgg_scenario(
                n, churn_noise=0.4, duration=300.0, traffic_period=4.0
            ),
            approaches=(dophy_approach(),),
            seed=SEED,
            min_support=30,
        )
        for n in SIZES
    ]
    results = RUNNER.run_comparisons(tasks)
    return [
        (n, r.summary.mean_hop_count, r.rows["dophy"], r.summary.delivery_ratio)
        for n, r in zip(SIZES, results)
    ]


def _experiment_large():
    tasks = [
        ComparisonTask(
            scenario=_large_scenario(n, dur, tp),
            approaches=(dophy_approach(),),
            seed=SEED,
            min_support=LARGE_MIN_SUPPORT,
        )
        for n, dur, tp in LARGE + [LONG]
    ]
    results = RUNNER.run_comparisons(tasks)
    return [
        (spec, r.summary.mean_hop_count, r.rows["dophy"], r.summary.delivery_ratio)
        for spec, r in zip(LARGE + [LONG], results)
    ]


def _engine_identity():
    """Event-oracle differential at every large size the oracle reaches.

    Returns ``{nodes: (identical, event_run_s, array_run_s)}``; the
    long-duration point is deliberately absent — it has no oracle run.
    """
    out = {}
    for n, dur, tp in LARGE:
        runs = {}
        for engine in ("event", "array"):
            scenario = _large_scenario(n, dur, tp).with_config(engine=engine)
            sim = scenario.make_simulation(SEED, scenario_cache=SCENARIO_CACHE)
            t0 = time.perf_counter()
            result = sim.run()
            runs[engine] = (time.perf_counter() - t0, result)
        identical = (
            runs["event"][1].packets == runs["array"][1].packets
            and runs["event"][1].events_processed == runs["array"][1].events_processed
        )
        out[n] = (identical, runs["event"][0], runs["array"][0])
    return out


def _run():
    return _experiment(), _experiment_large(), _engine_identity()


def test_f7_scalability(benchmark):
    small, large, identity = run_once(benchmark, _run)

    table = []
    raw = {}
    for n, mean_hops, row, delivery in small:
        table.append(
            [
                n,
                mean_hops,
                f"{delivery:.1%}",
                row.accuracy.mae,
                row.overhead.mean_bits_per_packet,
                row.overhead.mean_bits_per_hop,
                row.overhead.control_bits / 1000.0,
            ]
        )
        raw[n] = (row.accuracy.mae, row.overhead.mean_bits_per_packet,
                  row.overhead.mean_bits_per_hop)
    text = format_table(
        ["nodes", "mean hops", "delivery", "dophy MAE", "bits/pkt", "bits/hop", "dissem kbits"],
        table,
        title="F7: Dophy scalability with network size (dynamic RGG, 300s)",
        precision=3,
    )

    big_table = []
    for (n, dur, tp), mean_hops, row, delivery in large:
        if (n, dur, tp) == LONG:
            oracle = "unreachable"
        else:
            ident = identity[n]
            oracle = f"bit-identical ({ident[1]:.1f}s vs {ident[2]:.1f}s)"
        big_table.append(
            [
                n,
                dur,
                mean_hops,
                f"{delivery:.1%}",
                row.accuracy.mae,
                row.overhead.mean_bits_per_packet,
                row.overhead.mean_bits_per_hop,
                oracle,
            ]
        )
        raw[(n, dur)] = (row.accuracy.mae, row.overhead.mean_bits_per_packet,
                         row.overhead.mean_bits_per_hop)
    big_text = format_table(
        ["nodes", "dur s", "mean hops", "delivery", "dophy MAE", "bits/pkt", "bits/hop", "event oracle"],
        big_table,
        title="F7 (cont.): array-kernel sweep to 10k nodes (dynamic RGG, scaled duration)",
        precision=3,
    )
    emit("f7_scalability", text + "\n\n" + big_text + "\n" + exec_footer(RUNNER))

    # The array rows carry oracle-grade evidence: streams bit-identical
    # at every size the event engine can still run.
    for n, (identical, _, _) in identity.items():
        assert identical, f"engine divergence at {n} nodes"

    # Accuracy holds at every size.
    for n in SIZES:
        assert raw[n][0] < 0.05
    for n, dur, _ in LARGE + [LONG]:
        assert raw[(n, dur)][0] < 0.05, (n, dur, raw[(n, dur)])
    # Per-packet bits grow sub-linearly in N (8x nodes -> well under 4x bits).
    assert raw[200][1] < raw[25][1] * 4
    # ...and stay sub-linear out to 10k: 400x the nodes of the 25-node
    # baseline costs ~14x the per-packet bits, tracking the ~9x mean
    # path depth times wider node ids — not N.
    assert raw[(10000, 15.0)][1] < raw[25][1] * 20
    # Per-hop bits stay within a moderate band across sizes — including
    # the array-kernel rows, whose traffic mix differs.
    per_hop = [raw[n][2] for n in SIZES] + [
        raw[(n, dur)][2] for n, dur, _ in LARGE + [LONG]
    ]
    assert max(per_hop) < 2.5 * min(per_hop)
    # The long-duration 10k point accumulates more evidence per link
    # than the short row, not less.
    assert raw[LONG[:2]][0] <= raw[(10000, 15.0)][0] * 1.5
