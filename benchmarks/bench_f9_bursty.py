"""F9 — Robustness to bursty (Gilbert–Elliott) losses.

All estimators here assume iid frame loss; real interference is bursty.
The sweep increases burst length (slower two-state Markov transitions)
while holding the stationary loss fixed, and scores every method against
each link's realized frame-loss fraction.

Expected shape: Dophy (and direct measurement) degrade only mildly —
per-hop counts still sample the marginal loss, just with correlated
draws — while end-to-end methods suffer both the correlation and their
structural weaknesses, staying several times worse at every burst level.
"""

from repro.workloads import (
    bursty_rgg_scenario,
    dophy_approach,
    em_approach,
    format_table,
    run_comparison,
    tree_ratio_approach,
)

from _common import emit, run_once

#: (label, p_good_to_bad, p_bad_to_good) — same stationary bad fraction
#: (1/6), increasingly long bursts.
BURST_LEVELS = [
    ("iid-ish (fast mixing)", 0.3, 1.0),
    ("short bursts", 0.1, 0.5),
    ("medium bursts", 0.04, 0.2),
    ("long bursts", 0.01, 0.05),
]
METHODS = ["dophy", "tree_ratio", "em"]


def _experiment():
    out = []
    for label, p_gb, p_bg in BURST_LEVELS:
        scenario = bursty_rgg_scenario(
            50,
            p_good_to_bad=p_gb,
            p_bad_to_good=p_bg,
            duration=500.0,
            traffic_period=3.0,
        )
        rows, _ = run_comparison(
            scenario,
            [dophy_approach(), tree_ratio_approach(), em_approach()],
            seed=109,
            min_support=30,
        )
        out.append((label, rows))
    return out


def test_f9_bursty(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for label, rows in out:
        row = [label]
        for name in METHODS:
            mae = rows[name].accuracy.mae
            row.append(mae)
            raw[(label, name)] = mae
        table.append(row)
    text = format_table(
        ["burstiness", "dophy MAE", "tree_ratio MAE", "em MAE"],
        table,
        title="F9: accuracy under Gilbert–Elliott bursty losses (50-node RGG)",
        precision=4,
    )
    emit("f9_bursty", text)

    for label, _, _ in [(l, a, b) for l, a, b in BURST_LEVELS]:
        # Dophy stays well ahead at every burst level.
        for e2e in ["tree_ratio", "em"]:
            assert raw[(label, "dophy")] < raw[(label, e2e)] * 0.6
        # And remains usable in absolute terms.
        assert raw[(label, "dophy")] < 0.06
