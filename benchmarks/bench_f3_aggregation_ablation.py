"""F3 — Ablation: symbol-aggregation threshold K.

Dophy's first optimization. Sweeps K over {1, 2, 3, 4, 6, 8, none} on a
mixed-quality network with model updates enabled, reporting annotation
size, model-dissemination cost (tables have K+1 symbols, so dissemination
scales directly with K), total overhead, and estimation accuracy — for
both escape modes (exact extras vs censored).

Expected shape: dissemination cost grows with K; annotation size is flat
to mildly K-dependent; total overhead is minimized at a small K (the
paper: aggregation "reduces the encoding overhead significantly"); with
exact escapes accuracy is independent of K, while censored mode trades a
small accuracy loss at small K for the cheapest annotations.
"""

from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    format_table,
    run_comparison,
)

from _common import emit, run_once

THRESHOLDS = [1, 2, 3, 4, 6, 8, None]


def _experiment():
    scenario = dynamic_rgg_scenario(
        50, churn_noise=0.3, duration=300.0, traffic_period=3.0,
        loss_low=0.05, loss_high=0.45, max_retries=30,
    )
    approaches = []
    for k in THRESHOLDS:
        label = f"K={k}" if k is not None else "K=none"
        approaches.append(
            dophy_approach(
                f"exact_{label}",
                DophyConfig(aggregation_threshold=k, escape_mode="exact",
                            model_update_period=60.0),
            )
        )
        if k is not None:
            approaches.append(
                dophy_approach(
                    f"cens_{label}",
                    DophyConfig(aggregation_threshold=k, escape_mode="censored",
                                model_update_period=60.0),
                )
            )
    # The tuner: K re-selected by the sink at every update.
    approaches.append(
        dophy_approach(
            "exact_K=auto",
            DophyConfig(aggregation_threshold=3, auto_aggregation=True,
                        escape_mode="exact", model_update_period=60.0),
        )
    )
    rows_by_name, _ = run_comparison(scenario, approaches, seed=103, min_support=30)
    return rows_by_name


def test_f3_aggregation_ablation(benchmark):
    rows_by_name = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for k in list(THRESHOLDS) + ["auto"]:
        label = f"K={k}" if k is not None else "K=none"
        for mode in ["exact", "cens"]:
            name = f"{mode}_{label}"
            if name not in rows_by_name:
                continue
            r = rows_by_name[name]
            ann = r.overhead.mean_bits_per_packet
            dis = r.overhead.control_bits
            total = r.overhead.total_bits
            table.append(
                [label, mode, ann, dis / 1000.0, total / 1000.0, r.accuracy.mae]
            )
            raw[(k, mode)] = (ann, dis, total, r.accuracy.mae)
    text = format_table(
        ["K", "escape", "ann bits/pkt", "dissem kbits", "total kbits", "MAE"],
        table,
        title="F3: symbol-aggregation ablation (50-node dynamic RGG, updates every 60s)",
        precision=3,
    )
    emit("f3_aggregation_ablation", text)

    # Dissemination cost grows with the symbol-set size.
    assert raw[(1, "exact")][1] < raw[(8, "exact")][1] < raw[(None, "exact")][1]
    # Aggregation reduces total overhead vs the unaggregated alphabet.
    assert raw[(3, "exact")][2] < raw[(None, "exact")][2]
    # With exact escapes, accuracy is essentially independent of K.
    maes = [raw[(k, "exact")][3] for k in THRESHOLDS]
    assert max(maes) - min(maes) < 0.01
    # Censored mode never sends extras, so annotations are no larger.
    for k in [1, 2, 3]:
        assert raw[(k, "cens")][0] <= raw[(k, "exact")][0] + 0.01
    # Censored escapes at small K cost some accuracy vs exact.
    assert raw[(1, "cens")][3] >= raw[(1, "exact")][3]
    # The auto tuner lands within 10% of the best fixed K's total overhead.
    best_fixed_total = min(raw[(k, "exact")][2] for k in THRESHOLDS)
    assert raw[("auto", "exact")][2] <= 1.1 * best_fixed_total
