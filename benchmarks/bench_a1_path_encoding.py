"""A1 (extension) — Path-encoding ablation: explicit ids vs compressed ranks.

DESIGN.md's design-choice ablation for the annotation's *path* section.
Explicit per-hop node ids cost ceil(log2 N) bits each and dominate the
annotation on large networks; the compressed codec encodes each hop as
the receiver's rank among the sender's sinkward-sorted neighbors,
arithmetic-coded in-stream (the sink knows the surveyed topology).
"Assumed" (0-bit paths) is the lower bound.

Expected shape: compressed ≈ 1-2 bits/hop for the path — within a few
bits/packet of the assumed-path lower bound — vs log2(N) bits/hop for
explicit, with identical estimates and zero decode failures; the gap
widens with network size.
"""

from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    format_table,
    run_comparison,
)

from _common import emit, run_once

SIZES = [25, 100, 200]
MODES = ["explicit", "compressed", "assumed"]


def _experiment():
    out = []
    for n in SIZES:
        scenario = dynamic_rgg_scenario(
            n, churn_noise=0.4, duration=300.0, traffic_period=4.0
        )
        approaches = [
            dophy_approach(mode, DophyConfig(path_encoding=mode)) for mode in MODES
        ]
        rows, result = run_comparison(scenario, approaches, seed=111, min_support=30)
        out.append((n, rows))
    return out


def test_a1_path_encoding(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for n, rows in out:
        for mode in MODES:
            r = rows[mode]
            table.append(
                [
                    n,
                    mode,
                    r.overhead.mean_bits_per_packet,
                    r.overhead.mean_bits_per_hop,
                    r.accuracy.mae,
                ]
            )
            raw[(n, mode)] = r
    text = format_table(
        ["nodes", "path encoding", "bits/pkt", "bits/hop", "MAE"],
        table,
        title="A1: path-encoding ablation (dynamic RGG, 300s)",
        precision=3,
    )
    emit("a1_path_encoding", text)

    for n in SIZES:
        exp, comp, assumed = (raw[(n, m)] for m in MODES)
        # Identical evidence -> identical estimates across modes.
        assert abs(exp.accuracy.mae - comp.accuracy.mae) < 1e-9
        # Compressed clearly beats explicit and sits near the lower bound.
        assert (
            comp.overhead.mean_bits_per_packet
            < 0.8 * exp.overhead.mean_bits_per_packet
        )
        assert (
            comp.overhead.mean_bits_per_packet
            < assumed.overhead.mean_bits_per_packet + 4.0 * _mean_hops(comp)
        )
    # The explicit-vs-compressed gap widens with network size.
    gap = {
        n: raw[(n, "explicit")].overhead.mean_bits_per_hop
        - raw[(n, "compressed")].overhead.mean_bits_per_hop
        for n in SIZES
    }
    assert gap[200] > gap[25]


def _mean_hops(row) -> float:
    per_pkt = row.overhead.mean_bits_per_packet
    per_hop = row.overhead.mean_bits_per_hop
    return per_pkt / per_hop if per_hop else 0.0
