"""Performance microbenchmarks: the entropy-coding hot paths.

Unlike the experiment benches (one round each), these run proper
multi-round timings — the numbers to watch when optimizing the coder.
"""

import numpy as np

from repro.coding.arithmetic import ArithmeticDecoder, ArithmeticEncoder
from repro.coding.bitio import BitReader, BitWriter
from repro.coding.freq import AdaptiveFrequencyTable, FrequencyTable
from repro.coding.huffman import HuffmanCode

_TABLE = FrequencyTable([900, 70, 20, 10])
_RNG = np.random.default_rng(7)
_SYMBOLS = list(_RNG.choice(4, p=[0.9, 0.07, 0.02, 0.01], size=2000))
_ENCODED = None


def _encoded():
    global _ENCODED
    if _ENCODED is None:
        enc = ArithmeticEncoder()
        for s in _SYMBOLS:
            enc.encode_symbol(_TABLE, s)
        _ENCODED = enc.finish()
    return _ENCODED


def test_perf_arithmetic_encode(benchmark):
    def encode():
        enc = ArithmeticEncoder()
        for s in _SYMBOLS:
            enc.encode_symbol(_TABLE, s)
        return enc.finish()

    data, bits = benchmark(encode)
    assert bits < len(_SYMBOLS) * 2


def test_perf_arithmetic_decode(benchmark):
    data, bits = _encoded()

    def decode():
        dec = ArithmeticDecoder(data, bits)
        return [dec.decode_symbol(_TABLE) for _ in range(len(_SYMBOLS))]

    out = benchmark(decode)
    assert out == _SYMBOLS


def test_perf_huffman_encode(benchmark):
    code = HuffmanCode(_TABLE)

    def encode():
        return code.encode_sequence(_SYMBOLS)

    writer = benchmark(encode)
    assert writer.bit_length > 0


def test_perf_adaptive_table_updates(benchmark):
    def run():
        table = AdaptiveFrequencyTable(16)
        for s in _SYMBOLS:
            table.update(s % 16)
        return table.total

    total = benchmark(run)
    assert total > len(_SYMBOLS)


def test_perf_bitio_roundtrip(benchmark):
    values = [int(v) for v in _RNG.integers(0, 2**16, size=3000)]

    def roundtrip():
        w = BitWriter()
        for v in values:
            w.write_uint(v, 16)
        r = BitReader(w.getvalue(), w.bit_length)
        return [r.read_uint(16) for _ in values]

    out = benchmark(roundtrip)
    assert out == values
