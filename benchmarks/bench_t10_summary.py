"""T10 — End-to-end summary table on the default dynamic scenario.

One 100-node dynamic run, every approach attached (identical channel
randomness), all headline metrics side by side: accuracy (MAE, p90,
coverage), per-packet overhead, control-plane cost, total bits. This is
the paper's "overall comparison" table.

Expected shape: Dophy matches direct measurement's accuracy exactly
(identical evidence) at a strictly smaller wire cost — the margin on
*whole-packet* size is modest here because the shallow retry cap keeps
even fixed-width count fields at 2 bits and the (shared) path ids
dominate; the count-encoding-only comparison is T1/F2's, where the gap
is 3-5x. The end-to-end methods are nearly free on the wire but several
times less accurate.
"""

from repro.analysis.energy import energy_report
from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    em_approach,
    format_table,
    linear_approach,
    path_measurement_approach,
    run_comparison,
    tree_ratio_approach,
)

from _common import emit, run_once

METHODS = ["dophy", "direct", "tree_ratio", "linear", "em"]


def _experiment():
    scenario = dynamic_rgg_scenario(
        100, churn_noise=0.5, duration=500.0, traffic_period=4.0
    )
    rows, result = run_comparison(
        scenario,
        [
            dophy_approach(),
            path_measurement_approach(),
            tree_ratio_approach(),
            linear_approach(),
            em_approach(),
        ],
        seed=110,
        min_support=30,
    )
    return rows, result


def test_t10_summary(benchmark):
    rows, result = run_once(benchmark, lambda: _experiment())
    table = []
    raw = {}
    for name in METHODS:
        r = rows[name]
        energy = energy_report(
            result,
            annotation_bits_total=r.overhead.total_annotation_bits,
            control_bits_total=r.overhead.control_bits,
        )
        table.append(
            [
                name,
                r.accuracy.mae,
                r.accuracy.p90_error,
                f"{r.accuracy.coverage:.0%}",
                r.overhead.mean_bits_per_packet,
                f"{r.overhead.mean_bytes_per_packet:.1f}",
                r.overhead.control_bits / 1000.0,
                r.overhead.total_bits / 1000.0,
                f"{energy.overhead_fraction:.1%}",
            ]
        )
        raw[name] = r
    header = (
        f"T10: overall comparison — 100-node dynamic RGG, 500s, "
        f"delivery {result.delivery_ratio:.1%}, "
        f"churn {result.churn_rate * 60:.1f} changes/node/min"
    )
    text = header + "\n\n" + format_table(
        ["method", "MAE", "p90", "coverage", "bits/pkt", "bytes/pkt",
         "control kbits", "total kbits", "energy ovh"],
        table,
        precision=4,
    )
    emit("t10_summary", text)

    dophy, direct = raw["dophy"], raw["direct"]
    # Dophy == direct-measurement accuracy (same evidence)...
    assert abs(dophy.accuracy.mae - direct.accuracy.mae) < 1e-6
    # ...at a strictly smaller per-packet wire cost (the shared path ids
    # cap the relative margin in this shallow-ARQ regime; see T1/F2 for
    # the isolated count-encoding gap).
    assert (
        dophy.overhead.mean_bits_per_packet
        < direct.overhead.mean_bits_per_packet
    )
    # Dophy is several times more accurate than every end-to-end method.
    for e2e in ["tree_ratio", "linear", "em"]:
        assert dophy.accuracy.mae < raw[e2e].accuracy.mae * 0.5
