"""F6 — The headline figure: estimation accuracy vs routing dynamics.

Sweeps the parent-churn level on a 60-node deployment (via the ETX
estimation-noise knob, reported as measured parent changes per node per
minute) and scores Dophy against the classical end-to-end baselines.

Expected shape (the paper's central claim): classical methods' error
grows as churn invalidates their assumed routing tree; Dophy's error
stays essentially flat because every packet is self-describing, so it
"significantly outperforms traditional loss tomography approaches in
terms of accuracy" at every dynamics level — most dramatically at high
churn.
"""

from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    em_approach,
    format_table,
    linear_approach,
    run_replicated,
    tree_ratio_approach,
)

from _common import emit, run_once

NOISE_LEVELS = [0.0, 0.3, 0.6, 1.0, 1.5]
METHODS = ["dophy", "tree_ratio", "linear", "em"]
REPLICATES = 2


def _experiment():
    out = []
    for noise in NOISE_LEVELS:
        scenario = dynamic_rgg_scenario(
            60,
            churn_noise=noise,
            duration=500.0,
            traffic_period=3.0,
            switch_threshold=0.1,
        )
        rows = run_replicated(
            scenario,
            [dophy_approach(), tree_ratio_approach(), linear_approach(), em_approach()],
            master_seed=106,
            replicates=REPLICATES,
            min_support=30,
        )
        out.append((noise, rows["dophy"].churn_rate_mean * 60.0, rows))
    return out


def test_f6_accuracy_dynamics(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for noise, churn_per_min, rows in out:
        row = [f"{noise:g}", churn_per_min]
        for name in METHODS:
            mae = rows[name].mae_mean
            row.append(mae)
            raw[(noise, name)] = mae
        row.append(rows["dophy"].mae_std)
        table.append(row)
    text = format_table(
        ["etx noise", "churn/node/min", "dophy MAE", "tree_ratio MAE",
         "linear MAE", "em MAE", "dophy std"],
        table,
        title=(
            f"F6: accuracy vs routing dynamics "
            f"(60-node RGG, 500s, mean of {REPLICATES} replicates)"
        ),
        precision=4,
    )
    emit("f6_accuracy_dynamics", text)

    hi = NOISE_LEVELS[-1]
    # Dophy wins at every churn level; decisively at high churn.
    for noise in NOISE_LEVELS:
        for e2e in ["tree_ratio", "linear", "em"]:
            assert raw[(noise, "dophy")] < raw[(noise, e2e)]
    for e2e in ["tree_ratio", "linear", "em"]:
        assert raw[(hi, "dophy")] < raw[(hi, e2e)] * 0.5
        # Classical error grows with churn.
        assert raw[(hi, e2e)] > raw[(0.0, e2e)]
    # Dophy stays essentially flat (well under 2 percentage points drift).
    assert raw[(hi, "dophy")] - raw[(0.0, "dophy")] < 0.02
