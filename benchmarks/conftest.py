"""Benchmarks are importable as a flat directory (no package)."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
