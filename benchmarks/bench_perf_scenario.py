"""Performance microbenchmarks: scenario-build fast path.

Times the content-addressed built-scenario cache (``workloads/
scenario_cache.py``, DESIGN.md §12.5) on the construction phase of the
F7 5k-node workload — the phase that dominates wall clock once the
array kernel has collapsed the run phase:

* **cold** — build the skeleton (topology + channel + routing warm
  start) and persist it, i.e. the price the first run of a sweep pays;
* **warm** — reload the skeleton from the cache (dense all-Bernoulli
  model encoding, C-level decode) and re-instantiate;
* **forked** — derive a sibling seed's skeleton from an already-cached
  one; only the seed-invariant topology object is reused, every
  per-seed draw is replayed, so this is exact by construction. Grids
  have seed-invariant topologies; the dynamic RGG does not, so its
  new-seed builds go straight to cold (the cache never pays a sibling
  load it cannot amortize).

Results go to ``benchmarks/results/BENCH_scenario.json`` alongside the
simulator and estimator trajectories. The bit-identity checks always
run — a simulation instantiated from a cold store, a warm hit, or a
fork must produce the same packet stream as a fresh build — while the
speedup floors are opt-in (``REPRO_PERF=1``) because single-core CI
containers make wall-clock ratios unreliable. The ≥3× floor sits on
warm-vs-cold skeleton acquisition at 5k nodes, where reload skips the
RGG sampling, the ~250k-edge channel draw loop, and the Dijkstra warm
start. Fork timings are reported without a floor: the grid topology
build is already vectorized, so forking buys correctness headroom (a
shared topology object) rather than raw speed.
"""

import gc
import json
import os
import tempfile
import time
from pathlib import Path

from repro.workloads import dynamic_rgg_scenario, static_grid_scenario
from repro.workloads.scenario_cache import ScenarioCache

from _common import RESULTS_DIR, run_once

#: Same 5k-node F7 point as ``bench_perf_simulator.py`` (seed and all),
#: so the two reports compose: total time there, build phase here.
F7_SEED = 107
F7_5K_NODES = 5000
F7_5K_DURATION = 30.0
F7_5K_TRAFFIC_PERIOD = 10.0

#: Fork timing runs on a grid of comparable size (71×71 = 5041 nodes)
#: because forking needs a seed-invariant topology.
GRID_SIDE = 71

#: Fork bit-identity is asserted at a size where the run completes in
#: well under a second; the timing grid above only times construction.
GRID_IDENTITY_SIDE = 12


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        # The preceding phase leaves a 5k-node simulation's garbage
        # behind; collect it outside the timed window or its collection
        # lands inside one and skews the sub-second measurements.
        gc.collect()
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _f7_5k_scenario():
    return dynamic_rgg_scenario(
        F7_5K_NODES,
        churn_noise=0.4,
        duration=F7_5K_DURATION,
        traffic_period=F7_5K_TRAFFIC_PERIOD,
    ).with_config(engine="array")


def _phases(scenario, seed, cache):
    """make_simulation and run timed separately."""
    gc.collect()
    t0 = time.perf_counter()
    sim = scenario.make_simulation(seed, scenario_cache=cache)
    t1 = time.perf_counter()
    result = sim.run()
    t2 = time.perf_counter()
    return t1 - t0, t2 - t1, result


def _bench_f7_5k_build(cache_root):
    scenario = _f7_5k_scenario()
    cache = ScenarioCache(cache_root)
    key = cache.skeleton_key(scenario)
    entry_path = cache._path(key, F7_SEED)

    fresh_setup = _best_of(lambda: scenario.make_simulation(F7_SEED), 2)

    def cold_once():
        if entry_path.exists():
            entry_path.unlink()
        _, status = cache.get_or_build(scenario, F7_SEED)
        assert status == "cold", status

    def warm_once():
        _, status = cache.get_or_build(scenario, F7_SEED)
        assert status == "warm", status

    cold_s = _best_of(cold_once, 2)
    warm_s = _best_of(warm_once, 3)
    warm_setup = _best_of(
        lambda: scenario.make_simulation(F7_SEED, scenario_cache=cache), 3
    )

    _, fresh_run, fresh_result = _phases(scenario, F7_SEED, None)
    _, warm_run, warm_result = _phases(scenario, F7_SEED, cache)
    identical = (
        fresh_result.packets == warm_result.packets
        and fresh_result.events_processed == warm_result.events_processed
    )
    return {
        "nodes": F7_5K_NODES,
        "duration_s": F7_5K_DURATION,
        "traffic_period_s": F7_5K_TRAFFIC_PERIOD,
        "seed": F7_SEED,
        "engine": "array",
        "entry_bytes": entry_path.stat().st_size,
        "cold_build_s": cold_s,
        "warm_load_s": warm_s,
        "skeleton_speedup": cold_s / warm_s,
        "fresh_setup_s": fresh_setup,
        "warm_setup_s": warm_setup,
        "setup_speedup": fresh_setup / warm_setup,
        "fresh_total_s": fresh_setup + fresh_run,
        "warm_total_s": warm_setup + warm_run,
        "identical_streams": identical,
    }


def _bench_grid_fork(cache_root):
    grid = static_grid_scenario(
        GRID_SIDE,
        GRID_SIDE,
        duration=F7_5K_DURATION,
        traffic_period=F7_5K_TRAFFIC_PERIOD,
    ).with_config(engine="array")
    cache = ScenarioCache(cache_root)
    key = cache.skeleton_key(grid)

    t0 = time.perf_counter()
    _, status = cache.get_or_build(grid, 1)
    cold_s = time.perf_counter() - t0
    assert status == "cold", status

    def fork_once():
        cache._path(key, 2).unlink(missing_ok=True)
        _, st = cache.get_or_build(grid, 2)
        assert st == "forked", st

    def warm_once():
        _, st = cache.get_or_build(grid, 1)
        assert st == "warm", st

    fork_s = _best_of(fork_once, 2)
    warm_s = _best_of(warm_once, 3)

    # Fork bit-identity at a size where the run itself is cheap.
    small = static_grid_scenario(
        GRID_IDENTITY_SIDE, GRID_IDENTITY_SIDE, duration=60.0
    ).with_config(engine="array")
    small_cache = ScenarioCache(cache_root)
    _, _, fresh = _phases(small, 2, None)
    _, st = small_cache.get_or_build(small, 1)
    assert st == "cold", st
    _, _, forked = _phases(small, 2, small_cache)
    assert small_cache.stats["forked"] == 1, small_cache.stats
    identical = (
        fresh.packets == forked.packets
        and fresh.events_processed == forked.events_processed
    )
    return {
        "rows": GRID_SIDE,
        "cols": GRID_SIDE,
        "seed_cold": 1,
        "seed_forked": 2,
        "cold_build_s": cold_s,
        "forked_build_s": fork_s,
        "warm_load_s": warm_s,
        "fork_speedup": cold_s / fork_s,
        "identity_grid_side": GRID_IDENTITY_SIDE,
        "identical_streams": identical,
    }


def _run():
    with tempfile.TemporaryDirectory(prefix="scenario-cache-") as root:
        return {
            "f7_5k_build": _bench_f7_5k_build(Path(root) / "rgg"),
            "grid_fork": _bench_grid_fork(Path(root) / "grid"),
        }


def test_perf_scenario(benchmark):
    report = run_once(benchmark, _run)

    # Cross-reference the simulator trajectory: with the event oracle's
    # 5k totals as the fixed numerator, the warm-cache array total must
    # beat the fresh-build total_speedup recorded there.
    sim_path = RESULTS_DIR / "BENCH_simulator.json"
    if sim_path.exists():
        sim = json.loads(sim_path.read_text())["f7_5k_run"]
        event_total = sim["event_setup_s"] + sim["event_run_s"]
        report["f7_5k_build"]["total_speedup_vs_event"] = (
            event_total / report["f7_5k_build"]["warm_total_s"]
        )
        report["f7_5k_build"]["fresh_total_speedup_baseline"] = sim["total_speedup"]

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_scenario.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {out}]")

    # Correctness always: cache-served simulations are fresh builds,
    # observably — cold, warm, and forked alike.
    assert report["f7_5k_build"]["identical_streams"]
    assert report["grid_fork"]["identical_streams"]

    if os.environ.get("REPRO_PERF") == "1":
        # Acceptance floors (run on idle multi-core hardware).
        f7 = report["f7_5k_build"]
        assert f7["skeleton_speedup"] >= 3.0, f7
        assert f7["setup_speedup"] >= 1.5, f7
        if "total_speedup_vs_event" in f7:
            assert f7["total_speedup_vs_event"] >= f7["fresh_total_speedup_baseline"], f7
