"""T1 — Encoding overhead vs path length.

Regenerates the paper's encoding-efficiency table: mean annotation bits
per packet for Dophy's arithmetic annotation against fixed-width,
Elias-gamma and Golomb–Rice codes, on chains of increasing length.
All schemes run in assumed-path mode so the numbers isolate the
retransmission-count encoding itself.

Expected shape: Dophy <= ~40% of fixed-width everywhere; Dophy at or
below the prefix codes on realistic (good-to-mixed) links; every scheme
grows linearly with path length.
"""

from repro.coding import EliasGammaCode, GolombRiceCode
from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    format_table,
    huffman_dophy_approach,
    line_scenario,
    path_measurement_approach,
    run_comparison,
)

from _common import emit, run_once

SCHEMES = ["dophy", "huffman", "fixed", "gamma", "rice0", "rice1"]


def _approaches():
    return [
        dophy_approach(
            "dophy", DophyConfig(aggregation_threshold=3, path_encoding="assumed")
        ),
        huffman_dophy_approach(
            "huffman", DophyConfig(aggregation_threshold=3, path_encoding="assumed")
        ),
        path_measurement_approach("fixed", None, path_encoding="assumed"),
        path_measurement_approach("gamma", EliasGammaCode(), path_encoding="assumed"),
        path_measurement_approach("rice0", GolombRiceCode(0), path_encoding="assumed"),
        path_measurement_approach("rice1", GolombRiceCode(1), path_encoding="assumed"),
    ]


def _experiment():
    table_rows = []
    raw = {}
    for num_nodes in [4, 6, 9, 13, 17]:
        scenario = line_scenario(
            num_nodes, loss_low=0.05, loss_high=0.25, duration=250.0, traffic_period=3.0
        )
        results, _ = run_comparison(scenario, _approaches(), seed=101)
        row = [num_nodes - 1]
        for name in SCHEMES:
            bits = results[name].overhead.mean_bits_per_packet
            row.append(bits)
            raw[(num_nodes, name)] = bits
        table_rows.append(row)
    return table_rows, raw


def test_t1_encoding_overhead(benchmark):
    table_rows, raw = run_once(benchmark, _experiment)
    text = format_table(
        ["max hops", "dophy", "dophy-huffman", "fixed-width", "elias-gamma", "rice(0)", "rice(1)"],
        table_rows,
        title="T1: retransmission-count annotation size (mean bits/packet)",
        precision=1,
    )
    emit("t1_encoding_overhead", text)

    # The surgical entropy-coder ablation: arithmetic <= Huffman with the
    # identical model pipeline (prefix codes cannot go below 1 bit/symbol).
    for num_nodes in [9, 13, 17]:
        assert raw[(num_nodes, "dophy")] <= raw[(num_nodes, "huffman")] + 0.5

    # Shape assertions (DESIGN.md): Dophy crushes fixed-width...
    for num_nodes in [4, 6, 9, 13, 17]:
        assert raw[(num_nodes, "dophy")] < 0.6 * raw[(num_nodes, "fixed")]
    # ...and is at or below the prefix codes on these realistic links.
    for num_nodes in [9, 13, 17]:
        assert raw[(num_nodes, "dophy")] <= raw[(num_nodes, "gamma")] * 1.02
    # Size grows with path length for every scheme (sub-linearly for the
    # entropy codes, whose per-packet header amortizes).
    for name in SCHEMES:
        assert raw[(17, name)] > raw[(4, name)] * 1.5
    assert raw[(17, "fixed")] > raw[(4, "fixed")] * 2.5
