"""A7 (extension) — Graceful degradation under control-plane and sink faults.

Two sweeps on the 8-node line scenario:

* **dissemination loss** — model broadcast rounds reach each node with
  probability ``1 - loss``; stale nodes keep encoding against old epochs
  (absorbed by the sink's history window), repair rounds converge the
  stragglers, and the control-plane bill reflects every round actually
  broadcast;
* **annotation corruption** — CRC-escaping bit flips and truncation on
  delivered annotations; the sink attributes every failed decode to a
  cause and salvages consistent hop prefixes.

Expected shape: the fault-free cell reproduces the idealized baseline
exactly; as either fault rate grows, mean link-estimate error rises
*smoothly* (no cliff) and every undecoded packet is accounted for —
decoded + attributed failures always equals deliveries. The run never
crashes at any swept setting.
"""

from repro.analysis.metrics import compare_estimates
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.faults import FaultPlan
from repro.workloads import format_table, line_scenario

from _common import emit, run_once

SEED = 1311
DISSEMINATION_LOSSES = [0.0, 0.15, 0.3, 0.5]
CORRUPTION_RATES = [0.0, 0.01, 0.02, 0.05]


def _run_cell(dissemination_loss: float, corruption_rate: float):
    scenario = line_scenario(8, duration=400.0, traffic_period=4.0)
    config = DophyConfig(
        model_update_period=60.0,
        dissemination_loss=dissemination_loss,
        dissemination_retries=2,
    )
    faults = (
        FaultPlan(
            seed=SEED,
            corruption_rate=corruption_rate,
            truncation_rate=corruption_rate,
        )
        if corruption_rate > 0
        else None
    )
    system = DophySystem(config, faults=faults)
    sim = scenario.make_simulation(SEED, [system])
    result = sim.run()
    report = system.report()
    truth = result.ground_truth.true_loss_map(kind="empirical")
    accuracy = compare_estimates(
        {l: e.loss for l, e in report.estimates.items()},
        truth,
        method="dophy",
        min_support=10,
        support={l: e.n_samples for l, e in report.estimates.items()},
    )
    delivered = len(result.delivered_packets)
    return delivered, report, accuracy


def _experiment():
    loss_rows = [
        (loss, *_run_cell(loss, 0.0)) for loss in DISSEMINATION_LOSSES
    ]
    corruption_rows = [
        (rate, *_run_cell(0.0, rate)) for rate in CORRUPTION_RATES
    ]
    return loss_rows, corruption_rows


def test_a7_fault_tolerance(benchmark):
    loss_rows, corruption_rows = run_once(benchmark, _experiment)

    def table_rows(rows):
        out = []
        for knob, delivered, report, accuracy in rows:
            causes = report.decode_failure_causes
            out.append(
                [
                    knob,
                    delivered,
                    report.packets_decoded,
                    report.decode_failures,
                    causes["unknown_epoch"],
                    causes["truncated"] + causes["corrupt_symbol"],
                    causes["inconsistent_path"],
                    report.salvaged_hops,
                    report.repair_rounds,
                    report.dissemination_bits,
                    accuracy.mae,
                ]
            )
        return out

    headers = [
        "knob",
        "delivered",
        "decoded",
        "failed",
        "unk epoch",
        "trunc+corrupt",
        "bad path",
        "salvaged hops",
        "repairs",
        "dissem bits",
        "MAE",
    ]
    text = format_table(
        headers,
        table_rows(loss_rows),
        title="A7a: degradation vs dissemination loss (8-node line, 400s)",
        precision=4,
    )
    text += "\n\n" + format_table(
        headers,
        table_rows(corruption_rows),
        title="A7b: degradation vs annotation corruption/truncation rate",
        precision=4,
    )
    emit("a7_fault_tolerance", text)

    for rows in (loss_rows, corruption_rows):
        for _, delivered, report, accuracy in rows:
            # Full attribution: every delivery decoded or counted by cause.
            assert report.packets_decoded + report.decode_failures == delivered
            assert report.decode_failures == report.attributed_failures
            assert accuracy.mae is not None
        maes = [accuracy.mae for _, _, _, accuracy in rows]
        # Smooth degradation: error never improves materially with more
        # faults, and never cliffs between adjacent settings.
        for lo, hi in zip(maes, maes[1:]):
            assert hi >= lo - 0.02
            assert hi - lo <= 0.10
        # ...and even the worst cell stays in a usable range.
        assert maes[-1] - maes[0] <= 0.15

    # The fault-free cells of both sweeps are the same run: the idealized
    # path is preserved exactly when every fault knob is zero.
    base_loss = loss_rows[0][2].estimates
    base_corr = corruption_rows[0][2].estimates
    assert {l: e.loss for l, e in base_loss.items()} == {
        l: e.loss for l, e in base_corr.items()
    }

    # Lossy dissemination actually exercises repair and bills per round.
    lossy_reports = [report for loss, _, report, _ in loss_rows if loss > 0]
    assert all(r.repair_rounds > 0 for r in lossy_reports)
    # Corruption failures are attributed, and some evidence is salvaged.
    worst = corruption_rows[-1][2]
    assert worst.decode_failures > 0
    assert worst.salvaged_hops >= 0
