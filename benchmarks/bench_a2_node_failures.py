"""A2 (extension) — Accuracy under node crashes and recoveries.

Topology dynamics without any ETX noise: nodes crash for exponential
downtimes and recover; routes re-form around them and snap back. The
only path churn in this run is failure-induced, so the sweep isolates
how each method copes with *abrupt* (rather than gradual) dynamics.

Expected shape: failure-induced parent churn grows with the number of
episodes, yet Dophy stays flat and several times more accurate than the
end-to-end methods at every level. (The e2e methods' absolute error is
already dominated by their weak end-to-end signal, so extra failure
churn does not measurably worsen it — the measured tables record this.)
"""

from repro.workloads import (
    dophy_approach,
    em_approach,
    failing_rgg_scenario,
    format_table,
    run_comparison,
    tree_ratio_approach,
)

from _common import emit, run_once

FAILURE_COUNTS = [0, 4, 12, 24]
METHODS = ["dophy", "tree_ratio", "em"]


def _experiment():
    out = []
    for n_failures in FAILURE_COUNTS:
        scenario = failing_rgg_scenario(
            60,
            num_failures=n_failures,
            mean_downtime=60.0,
            duration=500.0,
            traffic_period=3.0,
        )
        rows, result = run_comparison(
            scenario,
            [dophy_approach(), tree_ratio_approach(), em_approach()],
            seed=112,
            min_support=30,
        )
        out.append(
            (n_failures, result.routing.total_parent_changes, result.delivery_ratio, rows)
        )
    return out


def test_a2_node_failures(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for n_failures, churn_events, delivery, rows in out:
        row = [n_failures, churn_events, f"{delivery:.1%}"]
        for name in METHODS:
            mae = rows[name].accuracy.mae
            row.append(mae)
            raw[(n_failures, name)] = mae
        table.append(row)
    text = format_table(
        ["failures", "parent changes", "delivery", "dophy MAE", "tree_ratio MAE", "em MAE"],
        table,
        title="A2: accuracy under node crash/recovery dynamics (60-node RGG, 500s)",
        precision=4,
    )
    emit("a2_node_failures", text)

    hi = FAILURE_COUNTS[-1]
    for n_failures in FAILURE_COUNTS:
        for e2e in ["tree_ratio", "em"]:
            assert raw[(n_failures, "dophy")] < raw[(n_failures, e2e)] * 0.6
    # Failure episodes actually produce routing churn...
    churn_by_failures = {n: c for n, c, _, _ in out}
    assert churn_by_failures[hi] > 2 * churn_by_failures[0]
    # ...and Dophy stays flat through it.
    assert raw[(hi, "dophy")] - raw[(0, "dophy")] < 0.02
