"""A4 (extension) — Link-quality class contexts: when do they pay?

Per-class probability tables sharpen the code for heterogeneous links:
good links encode against a near-deterministic model, bad links against
a flat one. The ablation sweeps the class count in two settings:

* a **forced-path chain** with alternating excellent/terrible links —
  every packet must cross both kinds, so the single shared model is a
  blurry mixture and classes win;
* a **routed random deployment** with the same heterogeneous link pool —
  ETX parent selection steers traffic onto the good links, the *used*
  links are homogeneous, and classes buy nothing while dissemination
  cost scales with the class count.

Expected shape: on the chain, annotation bits fall with classes; on the
routed network they stay flat and total overhead strictly grows — the
extension pays exactly when path choice is constrained.
"""

from dataclasses import replace

from repro.core import DophyConfig
from repro.net.link import BernoulliLink, beta_loss_assigner
from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    format_table,
    line_scenario,
    run_comparison,
)

from _common import emit, run_once

CLASS_COUNTS = [1, 2, 4]


def _alternating_assigner(low=0.02, high=0.5):
    def make(u, v, rng):
        return BernoulliLink(low if min(u, v) % 2 == 0 else high)

    return make


def _experiment():
    out = {}
    # Forced heterogeneous paths.
    chain = line_scenario(7, duration=400.0, traffic_period=1.5, max_retries=30)
    chain = replace(chain, link_assigner=_alternating_assigner())
    approaches = [
        dophy_approach(
            f"c{c}",
            DophyConfig(link_classes=c, model_update_period=60.0,
                        path_encoding="assumed"),
        )
        for c in CLASS_COUNTS
    ]
    rows, _ = run_comparison(chain, approaches, seed=116)
    out["chain (forced paths)"] = rows
    # Routed deployment over the same quality pool.
    rgg = dynamic_rgg_scenario(
        60, churn_noise=0.3, duration=400.0, traffic_period=2.0, max_retries=30
    )
    rgg = replace(rgg, link_assigner=beta_loss_assigner(0.8, 4.0, scale=0.9))
    approaches = [
        dophy_approach(
            f"c{c}",
            DophyConfig(link_classes=c, model_update_period=60.0,
                        path_encoding="assumed"),
        )
        for c in CLASS_COUNTS
    ]
    rows, _ = run_comparison(rgg, approaches, seed=116)
    out["routed RGG (free paths)"] = rows
    return out


def test_a4_link_classes(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for setting, rows in out.items():
        for c in CLASS_COUNTS:
            r = rows[f"c{c}"]
            table.append(
                [
                    setting if c == CLASS_COUNTS[0] else "",
                    c,
                    r.overhead.mean_bits_per_packet,
                    r.overhead.control_bits / 1000.0,
                    r.overhead.total_bits / 1000.0,
                ]
            )
            raw[(setting, c)] = r
    text = format_table(
        ["setting", "classes", "ann bits/pkt", "dissem kbits", "total kbits"],
        table,
        title="A4: link-class context models (count annotation only, assumed paths)",
        precision=3,
    )
    emit("a4_link_classes", text)

    chain, rgg = "chain (forced paths)", "routed RGG (free paths)"
    # Forced paths: classes shrink annotations measurably.
    assert (
        raw[(chain, 4)].overhead.mean_bits_per_packet
        < raw[(chain, 1)].overhead.mean_bits_per_packet - 0.5
    )
    # Routed network: no annotation gain (parent selection already
    # homogenized the used links)...
    assert (
        abs(
            raw[(rgg, 4)].overhead.mean_bits_per_packet
            - raw[(rgg, 1)].overhead.mean_bits_per_packet
        )
        < 0.5
    )
    # ...so total overhead strictly grows with the class count there.
    assert (
        raw[(rgg, 1)].overhead.total_bits
        < raw[(rgg, 2)].overhead.total_bits
        < raw[(rgg, 4)].overhead.total_bits
    )
