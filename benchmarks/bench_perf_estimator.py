"""Performance microbenchmarks: the batched MLE solver and incremental windows.

Times the two estimator fast paths this repo ships against their naive
counterparts, on the same evidence:

* ``PerLinkEstimator.estimates()`` (one vectorized batch solve) vs the
  retired per-link scipy solve (kept as ``estimate_scipy``);
* ``SlidingLinkEstimator.timeline()`` (incremental window slide) vs a
  from-scratch estimator rebuild at every query point.

Results go to ``benchmarks/results/BENCH_estimator.json`` so the perf
trajectory accumulates across PRs. The agreement check always runs; the
speedup floors are opt-in (``REPRO_PERF=1``) because single-core CI
containers make wall-clock ratios unreliable.
"""

import json
import os
import time

import numpy as np

from repro.core.estimator import PerLinkEstimator
from repro.core.windowed import SlidingLinkEstimator

from _common import RESULTS_DIR, run_once

N_LINKS = 500
MAX_ATTEMPTS = 8
SAMPLES_PER_LINK = 60
ESCAPE_AT = 3  # counts >= this arrive censored as [ESCAPE_AT, A-1]

SLIDING_OBS = 40_000
SLIDING_WINDOW = 200.0  # ~4k observations in flight per window
SLIDING_QUERIES = 100


def _corpus_estimator(rng):
    """500 links of mixed exact/censored evidence, Dophy escape style."""
    est = PerLinkEstimator(MAX_ATTEMPTS)
    for i in range(N_LINKS):
        link = (i + 1, 0)
        loss = float(rng.uniform(0.05, 0.75))
        attempts = np.minimum(
            rng.geometric(1.0 - loss, size=SAMPLES_PER_LINK), MAX_ATTEMPTS
        )
        for a in attempts:
            c = int(a) - 1
            if c >= ESCAPE_AT:
                est.add_censored(link, ESCAPE_AT, MAX_ATTEMPTS - 1)
            else:
                est.add_exact(link, c)
    return est


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _run():
    rng = np.random.default_rng(42)
    est = _corpus_estimator(rng)

    batched = est.estimates()
    batched_s = _best_of(est.estimates, repeats=5)
    scipy_s = _best_of(
        lambda: {link: est.estimate_scipy(link) for link in est.links()},
        repeats=1,
    )
    worst = max(
        abs(batched[link].loss - est.estimate_scipy(link).loss)
        for link in est.links()
    )

    # Incremental window slide vs a from-scratch rebuild per query point.
    link = (1, 0)
    sliding = SlidingLinkEstimator(max_attempts=MAX_ATTEMPTS, window=SLIDING_WINDOW)
    events = []
    t = 0.0
    for _ in range(SLIDING_OBS):
        t += float(rng.exponential(0.05))
        c = int(min(rng.geometric(0.7), MAX_ATTEMPTS)) - 1
        events.append((t, c))
        sliding.add_exact(link, c, t)
    queries = [float(q) for q in np.linspace(0.0, t, SLIDING_QUERIES)]

    def rebuild_timeline():
        out = []
        for now in queries:
            ref = PerLinkEstimator(MAX_ATTEMPTS)
            for et, ec in events:
                if now - SLIDING_WINDOW < et <= now:
                    ref.add_exact(link, ec)
            e = ref.estimate(link)
            out.append((now, e.loss if e is not None else None))
        return out

    incr_s = _best_of(lambda: sliding.timeline(link, queries), repeats=3)
    rebuild_s = _best_of(rebuild_timeline, repeats=1)
    assert sliding.timeline(link, queries) == rebuild_timeline()

    return {
        "batch": {
            "n_links": N_LINKS,
            "samples_per_link": SAMPLES_PER_LINK,
            "max_attempts": MAX_ATTEMPTS,
            "batched_estimates_s": batched_s,
            "scipy_loop_s": scipy_s,
            "speedup": scipy_s / batched_s,
            "max_abs_disagreement": worst,
        },
        "sliding": {
            "n_observations": SLIDING_OBS,
            "n_queries": SLIDING_QUERIES,
            "window_s": SLIDING_WINDOW,
            "incremental_timeline_s": incr_s,
            "rebuild_timeline_s": rebuild_s,
            "speedup": rebuild_s / incr_s,
        },
    }


def test_perf_estimator(benchmark):
    report = run_once(benchmark, _run)

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_estimator.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{json.dumps(report, indent=2)}\n[written to {out}]")

    # Correctness always: the batched solver is the scipy MLE.
    assert report["batch"]["max_abs_disagreement"] < 1e-6

    if os.environ.get("REPRO_PERF") == "1":
        # Acceptance floors (run on idle multi-core hardware).
        assert report["batch"]["speedup"] >= 5.0, report["batch"]
        assert report["sliding"]["speedup"] >= 5.0, report["sliding"]
