"""F2 — Encoding overhead vs link quality.

Regenerates the overhead-vs-loss figure: mean annotation bits per packet
on a fixed 9-node chain (max 8 hops) as the network-wide link loss level
sweeps from excellent to poor. Assumed-path mode isolates count encoding.

Expected shape: every entropy code's cost rises with loss (counts carry
more information); fixed-width is flat and far above; Dophy tracks the
source entropy, clearly winning at low loss where prefix codes are stuck
at their 1-bit-per-symbol floor.
"""

from repro.coding import EliasGammaCode, GolombRiceCode
from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    format_table,
    line_scenario,
    path_measurement_approach,
    run_comparison,
)

from _common import emit, run_once

LOSS_LEVELS = [0.02, 0.05, 0.1, 0.2, 0.35, 0.5]
SCHEMES = ["dophy", "fixed", "gamma", "rice0"]


def _approaches():
    return [
        dophy_approach(
            "dophy", DophyConfig(aggregation_threshold=3, path_encoding="assumed")
        ),
        path_measurement_approach("fixed", None, path_encoding="assumed"),
        path_measurement_approach("gamma", EliasGammaCode(), path_encoding="assumed"),
        path_measurement_approach("rice0", GolombRiceCode(0), path_encoding="assumed"),
    ]


def _experiment():
    rows = []
    raw = {}
    for loss in LOSS_LEVELS:
        scenario = line_scenario(
            9,
            loss_low=max(0.0, loss - 0.02),
            loss_high=min(0.99, loss + 0.02),
            duration=250.0,
            traffic_period=3.0,
        )
        results, _ = run_comparison(scenario, _approaches(), seed=102)
        row = [f"{loss:.0%}"]
        for name in SCHEMES:
            bits = results[name].overhead.mean_bits_per_packet
            row.append(bits)
            raw[(loss, name)] = bits
        rows.append(row)
    return rows, raw


def test_f2_overhead_vs_quality(benchmark):
    rows, raw = run_once(benchmark, _experiment)
    text = format_table(
        ["mean loss", "dophy", "fixed-width", "elias-gamma", "rice(0)"],
        rows,
        title="F2: annotation size vs link quality (9-node chain, bits/packet)",
        precision=1,
    )
    emit("f2_overhead_vs_quality", text)

    for loss in LOSS_LEVELS:
        # Dophy far below fixed-width at every quality level.
        assert raw[(loss, "dophy")] < 0.65 * raw[(loss, "fixed")]
    # Entropy codes' cost rises with loss; fixed-width stays flat.
    assert raw[(0.5, "dophy")] > raw[(0.02, "dophy")] * 1.3
    assert raw[(0.5, "rice0")] > raw[(0.02, "rice0")] * 1.3
    assert abs(raw[(0.5, "fixed")] - raw[(0.02, "fixed")]) < 2.0
    # At low loss Dophy beats the prefix codes (sub-1-bit symbols).
    assert raw[(0.02, "dophy")] < raw[(0.02, "gamma")]
    assert raw[(0.02, "dophy")] < raw[(0.02, "rice0")]
