"""A5 (extension) — Bad-link detection quality under routing dynamics.

The operational question behind loss tomography: *which links should the
network manager worry about?* Three detectors flag links whose loss
exceeds 30%:

* **dophy** — flag when the point estimate clears the threshold (the
  same criterion the EM detector uses);
* **dophy_confident** — flag only when the 95% CI lower bound clears it
  (operational mode: never cry wolf);
* **boolean** — classical SCFS-style Boolean tomography over end-to-end
  path states and the snapshot topology;
* **em_threshold** — EM tomography's per-link ratios, thresholded.

Expected shape: Dophy's point-estimate detector has the best F1 at every
churn level; its confident mode keeps precision at 1.0 by sacrificing
recall; the end-to-end detectors lose ground as churn grows (Boolean in
particular collapses — retransmissions keep most *paths* "good" even
over frame-lossy links, so it has nothing to reason from).
"""

from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.analysis.detection import detection_metrics
from repro.tomography.boolean import BooleanTomography
from repro.tomography.em import EMTomography
from repro.workloads import dynamic_rgg_scenario, format_table

from _common import emit, run_once

LOSS_THRESHOLD = 0.3
NOISE_LEVELS = [0.0, 0.6, 1.2]


def _flags_dophy(dophy, min_samples=30, *, confident=False):
    flagged = set()
    for link, est in dophy.report().estimates.items():
        if est.n_samples < min_samples:
            continue
        value = est.confidence_interval()[0] if confident else est.loss
        if value > LOSS_THRESHOLD:
            flagged.add(link)
    return flagged


def _flags_em(em, min_support=30):
    tomo = em.solve()
    return {
        link
        for link, loss in tomo.losses.items()
        if loss > LOSS_THRESHOLD and tomo.support.get(link, 0) >= min_support
    }


def _experiment():
    out = []
    for noise in NOISE_LEVELS:
        scenario = dynamic_rgg_scenario(
            50,
            churn_noise=noise,
            duration=500.0,
            traffic_period=3.0,
            loss_low=0.05,
            loss_high=0.55,  # ensure genuinely bad links exist
        )
        dophy = DophySystem(DophyConfig())
        boolean = BooleanTomography(good_path_delivery=0.85)
        em = EMTomography()
        sim = scenario.make_simulation(117, [dophy, boolean, em])
        result = sim.run()
        truth = result.ground_truth.true_loss_map(kind="empirical")
        # Score over links with real traffic (>= 30 exchanges).
        universe = [
            l for l, u in result.ground_truth.link_usage.items() if u.exchanges >= 30
        ]
        truth_used = {l: truth[l] for l in universe if l in truth}
        reports = {
            "dophy": detection_metrics(
                _flags_dophy(dophy) & set(universe), truth_used,
                loss_threshold=LOSS_THRESHOLD, universe=universe,
            ),
            "dophy_confident": detection_metrics(
                _flags_dophy(dophy, confident=True) & set(universe), truth_used,
                loss_threshold=LOSS_THRESHOLD, universe=universe,
            ),
            "boolean": detection_metrics(
                boolean.diagnose().flagged & set(universe), truth_used,
                loss_threshold=LOSS_THRESHOLD, universe=universe,
            ),
            "em_threshold": detection_metrics(
                _flags_em(em) & set(universe), truth_used,
                loss_threshold=LOSS_THRESHOLD, universe=universe,
            ),
        }
        churn = result.churn_rate * 60.0
        out.append((noise, churn, reports))
    return out


def test_a5_bad_link_detection(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for noise, churn, reports in out:
        for name in ["dophy", "dophy_confident", "boolean", "em_threshold"]:
            r = reports[name]
            table.append(
                [
                    f"{noise:g}",
                    churn,
                    name,
                    r.precision,
                    r.recall,
                    r.f1,
                ]
            )
            raw[(noise, name)] = r
    text = format_table(
        ["etx noise", "churn/node/min", "detector", "precision", "recall", "F1"],
        table,
        title=f"A5: detecting links with loss > {LOSS_THRESHOLD:.0%} (50-node dynamic RGG)",
        precision=3,
    )
    emit("a5_bad_link_detection", text)

    for noise in NOISE_LEVELS:
        d = raw[(noise, "dophy")]
        # Point-estimate flags dominate both end-to-end detectors on F1.
        for other in ["boolean", "em_threshold"]:
            assert d.f1 >= raw[(noise, other)].f1
        # Confident mode never cries wolf.
        assert raw[(noise, "dophy_confident")].precision == 1.0
    # The end-to-end detectors degrade as churn grows; Dophy does not.
    assert raw[(NOISE_LEVELS[-1], "em_threshold")].f1 < raw[(0.0, "em_threshold")].f1
    assert raw[(NOISE_LEVELS[-1], "dophy")].f1 >= 0.8 * raw[(0.0, "dophy")].f1
