"""F8 — Convergence: accuracy vs amount of collected traffic.

Runs the static comparison at increasing run lengths and reports each
method's MAE, showing how much traffic each needs to reach a given
accuracy. Dophy extracts one per-link sample from *every* hop of *every*
packet; end-to-end methods get one Bernoulli outcome per packet for a
whole path, so they converge far more slowly.

Expected shape: Dophy's error falls fast and is already below the
end-to-end methods' *final* error with a fraction of the traffic.
"""

from repro.exec import ComparisonTask
from repro.workloads import (
    dophy_approach,
    em_approach,
    format_table,
    static_rgg_scenario,
    tree_ratio_approach,
)

from _common import emit, exec_footer, exec_runner, run_once

DURATIONS = [40.0, 80.0, 160.0, 320.0, 640.0]
METHODS = ["dophy", "tree_ratio", "em"]

#: One run per duration — independent tasks for the execution engine.
RUNNER = exec_runner()


def _experiment():
    tasks = [
        ComparisonTask(
            scenario=static_rgg_scenario(
                50, duration=duration, traffic_period=3.0, max_retries=2
            ),
            approaches=(dophy_approach(), tree_ratio_approach(), em_approach()),
            seed=108,
            min_support=10,
        )
        for duration in DURATIONS
    ]
    results = RUNNER.run_comparisons(tasks)
    return [
        (duration, r.summary.packets_generated, r.rows)
        for duration, r in zip(DURATIONS, results)
    ]


def test_f8_convergence(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for duration, packets, rows in out:
        row = [f"{duration:g}s", packets]
        for name in METHODS:
            mae = rows[name].accuracy.mae
            row.append(mae)
            raw[(duration, name)] = mae
        table.append(row)
    text = format_table(
        ["run length", "packets", "dophy MAE", "tree_ratio MAE", "em MAE"],
        table,
        title="F8: convergence — accuracy vs collected traffic (static 50-node RGG)",
        precision=4,
    )
    emit("f8_convergence", text + "\n" + exec_footer(RUNNER))

    # Dophy improves with more data...
    assert raw[(640.0, "dophy")] < raw[(40.0, "dophy")]
    # ...and with a fraction of the traffic already beats the end-to-end
    # methods' error at the longest run.
    for e2e in ["tree_ratio", "em"]:
        assert raw[(80.0, "dophy")] < raw[(640.0, e2e)]
    # At every run length Dophy is the most accurate.
    for duration in DURATIONS:
        for e2e in ["tree_ratio", "em"]:
            assert raw[(duration, "dophy")] < raw[(duration, e2e)]
