"""A6 (extension) — Accuracy under spatially-correlated interference.

On/off interference sources degrade whole neighbourhoods of links
simultaneously — loss that is correlated across links *and* time, the
harshest violation of the estimators' independence assumptions. The
sweep raises the interferer count; estimators are scored against each
link's realized frame-loss fraction.

Expected shape: Dophy degrades gracefully (its per-hop samples still
estimate each link's realized marginal loss) and stays several times
ahead of the end-to-end methods at every interference level.
"""

from repro.workloads import (
    dophy_approach,
    em_approach,
    format_table,
    interference_rgg_scenario,
    run_comparison,
    tree_ratio_approach,
)

from _common import emit, run_once

INTERFERER_COUNTS = [0, 2, 5, 9]
METHODS = ["dophy", "tree_ratio", "em"]


def _experiment():
    out = []
    for n_interferers in INTERFERER_COUNTS:
        scenario = interference_rgg_scenario(
            50,
            num_interferers=n_interferers,
            duration=400.0,
            traffic_period=3.0,
        )
        rows, result = run_comparison(
            scenario,
            [dophy_approach(), tree_ratio_approach(), em_approach()],
            seed=118,
            min_support=30,
        )
        out.append((n_interferers, result.delivery_ratio, rows))
    return out


def test_a6_interference(benchmark):
    out = run_once(benchmark, _experiment)
    table = []
    raw = {}
    for n_interferers, delivery, rows in out:
        row = [n_interferers, f"{delivery:.1%}"]
        for name in METHODS:
            mae = rows[name].accuracy.mae
            row.append(mae)
            raw[(n_interferers, name)] = mae
        table.append(row)
    text = format_table(
        ["interferers", "delivery", "dophy MAE", "tree_ratio MAE", "em MAE"],
        table,
        title="A6: accuracy under spatially-correlated interference (50-node RGG)",
        precision=4,
    )
    emit("a6_interference", text)

    for n_interferers in INTERFERER_COUNTS:
        d = raw[(n_interferers, "dophy")]
        for e2e in ["tree_ratio", "em"]:
            assert d < raw[(n_interferers, e2e)] * 0.6
        assert d < 0.06  # graceful degradation in absolute terms