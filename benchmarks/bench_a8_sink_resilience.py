"""A8 (extension) — Streaming-sink resilience: quality vs crash and shed rate.

One recorded stream (30-node dynamic RGG, 180 s) is served through the
crash-tolerant streaming sink under two sweeps:

* **shard crash rate** — every (shard, round) coordinate crashes with
  probability ``p``; the supervisor restores from checkpoint + WAL
  replay while the retry budget lasts, then quarantines;
* **overload shed** — the bounded ingest queue is undersized against a
  growing arrival burst under the ``shed`` policy, dropping the newest
  records.

Reported per cell: estimate quality (MAE vs simulator ground truth and
link coverage), alert latency (stream time of the first threshold
alert), and the supervision ledger (crashes, restores, quarantines,
dropped/shed records, stale links).

Expected shape: the zero-fault cell is **bit-identical** to a single
batch estimator fed the same records (asserted field by field); crashes
below the quarantine point change nothing (WAL replay loses no
evidence); past it — and as shed grows — MAE/coverage degrade smoothly
while every lost record and stale link stays accounted for.
"""

from repro.analysis.metrics import compare_estimates
from repro.core.estimator import PerLinkEstimator
from repro.net.faults import ShardFaultPlan
from repro.stream import (
    AlertPolicy,
    MemoryStore,
    RetryPolicy,
    SinkConfig,
    StreamingSink,
    bundle_from_scenario,
    feed_estimator,
)
from repro.workloads import dynamic_rgg_scenario, format_table

from _common import emit, run_once

SEED = 1847
CRASH_RATES = [0.0, 0.05, 0.15, 0.3]
ARRIVAL_BURSTS = [8, 16, 32, 64]
ALERTS = AlertPolicy(loss_threshold=0.2, min_samples=20)


def _bundle():
    scenario = dynamic_rgg_scenario(num_nodes=30).with_config(duration=180.0)
    return bundle_from_scenario(scenario, SEED)


def _config(**overrides):
    base = dict(
        n_shards=4,
        queue_capacity=64,
        arrival_burst=16,
        service_batch=16,
        merge_every=4,
        retry=RetryPolicy(max_restarts=2),
        alerts=ALERTS,
    )
    base.update(overrides)
    return SinkConfig(**base)


def _serve(bundle, config, faults=None):
    sink = StreamingSink(
        bundle.max_attempts, MemoryStore(), config, faults=faults
    )
    first_alert = None
    final = None
    for snapshot in sink.run(bundle.records):
        final = snapshot
        if first_alert is None and snapshot.new_alerts:
            first_alert = snapshot.new_alerts[0].stream_time
    accuracy = compare_estimates(
        {link: est.loss for link, est in final.estimates.items()},
        bundle.true_losses,
        method="stream",
        min_support=10,
        support={
            link: est.n_samples for link, est in final.estimates.items()
        },
    )
    return sink, final, accuracy, first_alert


def _fields(estimates):
    return {
        link: (est.loss, est.stderr, est.n_exact, est.n_censored)
        for link, est in estimates.items()
    }


def _experiment():
    bundle = _bundle()
    batch = PerLinkEstimator(bundle.max_attempts)
    feed_estimator(batch, bundle.records)
    crash_rows = []
    for rate in CRASH_RATES:
        faults = (
            ShardFaultPlan(seed=SEED, crash_rate=rate) if rate > 0 else None
        )
        crash_rows.append((rate, *_serve(bundle, _config(), faults)))
    shed_rows = []
    for burst in ARRIVAL_BURSTS:
        config = _config(
            queue_capacity=16,
            service_batch=8,
            arrival_burst=burst,
            queue_policy="shed",
        )
        shed_rows.append((burst, *_serve(bundle, config)))
    return bundle, _fields(batch.estimates()), crash_rows, shed_rows


def test_a8_sink_resilience(benchmark):
    bundle, batch_fields, crash_rows, shed_rows = run_once(
        benchmark, _experiment
    )

    crash_table = [
        [
            rate,
            sink.stats.crashes,
            sink.stats.restores,
            len(sink.supervisor.quarantined_shards()),
            sink.stats.dropped_quarantined,
            len(final.stale_links),
            accuracy.coverage,
            accuracy.mae,
            "-" if first_alert is None else f"{first_alert:.1f}s",
        ]
        for rate, sink, final, accuracy, first_alert in crash_rows
    ]
    shed_table = [
        [
            burst,
            sink.queue.stats.shed,
            sink.queue.stats.shed / max(1, sink.queue.stats.offered),
            sink.queue.stats.high_water,
            len(final.estimates),
            accuracy.coverage,
            accuracy.mae,
            "-" if first_alert is None else f"{first_alert:.1f}s",
        ]
        for burst, sink, final, accuracy, first_alert in shed_rows
    ]
    text = format_table(
        [
            "crash rate",
            "crashes",
            "restores",
            "quarantined",
            "dropped",
            "stale links",
            "coverage",
            "MAE",
            "first alert",
        ],
        crash_table,
        title="A8a: quality/alert latency vs shard crash rate (30-node RGG, 180s)",
        precision=4,
    )
    text += "\n\n" + format_table(
        [
            "burst",
            "shed",
            "shed frac",
            "high water",
            "links",
            "coverage",
            "MAE",
            "first alert",
        ],
        shed_table,
        title="A8b: quality/alert latency vs overload shed (queue=16, service=8)",
        precision=4,
    )
    emit("a8_sink_resilience", text)

    # The zero-fault cell must be bit-identical to the batch estimator.
    _, zero_sink, zero_final, zero_accuracy, _ = crash_rows[0]
    assert zero_sink.stats.crashes == 0
    assert _fields(zero_final.estimates) == batch_fields
    # Crashes inside the retry budget lose no evidence at all.
    for rate, sink, final, accuracy, _ in crash_rows:
        if not sink.supervisor.quarantined_shards():
            assert _fields(final.estimates) == batch_fields
        else:
            # Degraded, but honestly: dropped evidence is counted and
            # every affected link is flagged stale.
            assert sink.stats.dropped_quarantined > 0
            assert final.stale_links
    # Shedding degrades smoothly: estimates survive at every swept burst.
    for burst, sink, final, accuracy, _ in shed_rows:
        assert final.estimates
        assert accuracy.mae is not None
        stats = sink.queue.stats
        assert stats.accepted + stats.shed == stats.offered
    # More overload, more shed (weakly monotone across the sweep).
    sheds = [sink.queue.stats.shed for _, sink, _, _, _ in shed_rows]
    assert sheds == sorted(sheds)
