"""F4 — Ablation: probability-model update period under link drift.

Dophy's second optimization. Links drift sinusoidally, so the true
retransmission-count distribution moves over time. Nodes start from a
deliberately generic factory prior (expected loss 50%). The sweep runs
the update period from "never" (static model) to every 15 s, reporting
per-packet annotation size, network-wide dissemination cost, and the
total overhead the paper's mechanism is designed to minimize.

Expected shape: annotation bits fall as updates track the drift;
dissemination bits rise inversely with the period; total overhead has an
interior optimum — both "never update" and "update constantly" lose to a
moderate period.
"""

from repro.core import DophyConfig
from repro.workloads import (
    dophy_approach,
    drifting_rgg_scenario,
    format_table,
    run_comparison,
)

from _common import emit, run_once

PERIODS = [None, 15.0, 30.0, 60.0, 120.0, 300.0]


def _experiment():
    scenario = drifting_rgg_scenario(
        40, duration=600.0, traffic_period=1.5, period_range=(80.0, 250.0)
    )
    approaches = [
        dophy_approach(
            "static" if p is None else f"every{p:g}s",
            DophyConfig(model_update_period=p, initial_expected_loss=0.5),
        )
        for p in PERIODS
    ]
    rows, _ = run_comparison(scenario, approaches, seed=104, min_support=30)
    return rows


def test_f4_model_update_ablation(benchmark):
    rows = run_once(benchmark, _experiment)
    names = ["static"] + [f"every{p:g}s" for p in PERIODS if p is not None]
    table = []
    totals = {}
    ann = {}
    dis = {}
    for name in names:
        r = rows[name]
        ann[name] = r.overhead.mean_bits_per_packet
        dis[name] = r.overhead.control_bits
        totals[name] = r.overhead.total_bits
        table.append(
            [
                name,
                ann[name],
                dis[name] / 1000.0,
                totals[name] / 1000.0,
                r.accuracy.mae,
            ]
        )
    text = format_table(
        ["update period", "ann bits/pkt", "dissem kbits", "total kbits", "MAE"],
        table,
        title="F4: model-update ablation (40-node RGG, drifting links, 600s)",
        precision=3,
    )
    emit("f4_model_update_ablation", text)

    # Updates shrink annotations relative to the mismatched static prior.
    assert ann["every15s"] < ann["static"]
    assert ann["every60s"] < ann["static"]
    # Dissemination cost is inverse in the period.
    assert dis["every15s"] > dis["every60s"] > dis["every300s"] > dis["static"] == 0
    # Interior optimum: some finite period beats both extremes.
    best_finite = min(totals[n] for n in names if n != "static")
    assert best_finite < totals["static"]
    assert best_finite < totals["every15s"]
