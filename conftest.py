"""Repo-level pytest configuration."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="Rewrite the golden-trace fixtures under tests/fixtures/golden/ "
        "from the current code instead of comparing against them.",
    )
