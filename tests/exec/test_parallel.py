"""Unit tests of the dispatch machinery itself: ordering, chunking,
crashed-worker retry, per-task timeout, and error propagation.

Worker payload functions must be module-level (the pool pickles them by
qualified name) — the same rule production tasks live under.
"""

import os
import time

import pytest

from repro.exec import ExecutionError, ParallelRunner


def _double(x):
    return 2 * x


def _sleep_then_double(item):
    delay, x = item
    time.sleep(delay)
    return 2 * x


def _crash_once_then_return(item):
    """Kill the worker process on the first attempt; succeed after.

    The flag file records that the first attempt happened, so the retry
    (in a fresh worker) takes the success path.
    """
    flag, x = item
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("crashed")
        os._exit(13)  # simulates a segfault/OOM kill: no exception, no cleanup
    return 2 * x


def _hang_once_then_return(item):
    flag, x = item
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("hung")
        # Long enough to trip the timeout; short enough that abandoned
        # workers don't stall interpreter shutdown.
        time.sleep(2.0)
    return 2 * x


def _raise_value_error(x):
    raise ValueError(f"deterministic failure on {x}")


class TestMapBasics:
    def test_serial_and_parallel_agree_in_order(self):
        items = list(range(8))
        serial = ParallelRunner(jobs=1).map(_double, items)
        parallel = ParallelRunner(jobs=3).map(_double, items)
        assert serial == parallel == [2 * x for x in items]

    def test_order_independent_of_completion_time(self):
        # First item is the slowest; results must still come back in
        # submission order.
        items = [(0.3, 1), (0.0, 2), (0.1, 3), (0.0, 4)]
        out = ParallelRunner(jobs=4).map(_sleep_then_double, items)
        assert out == [2, 4, 6, 8]

    def test_chunked_dispatch(self):
        items = list(range(10))
        runner = ParallelRunner(jobs=2, chunksize=3)
        assert runner.map(_double, items) == [2 * x for x in items]
        assert runner.stats.executed == 10

    def test_empty_input(self):
        assert ParallelRunner(jobs=2).map(_double, []) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, chunksize=0)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, max_retries=-1)
        with pytest.raises(ValueError):
            ParallelRunner(jobs=1, task_timeout=0)


class TestCrashRecovery:
    def test_crashed_worker_is_retried(self, tmp_path):
        flag = str(tmp_path / "crash.flag")
        runner = ParallelRunner(jobs=2, max_retries=2)
        out = runner.map(_crash_once_then_return, [(flag, 5), (flag, 6)])
        assert out == [10, 12]
        assert runner.stats.retries >= 1

    def test_crash_beyond_retry_budget_raises(self, tmp_path):
        # The payload never creates its flag under a bogus path, so the
        # worker dies on every attempt.
        missing_dir_flag = str(tmp_path / "no" / "such" / "dir" / "f.flag")
        runner = ParallelRunner(jobs=2, max_retries=1)
        with pytest.raises(ExecutionError, match="crash"):
            runner.map(_crash_always, [(missing_dir_flag, 1)])


def _crash_always(item):
    os._exit(13)


class TestTimeouts:
    def test_hung_task_is_retried_after_timeout(self, tmp_path):
        flag = str(tmp_path / "hang.flag")
        runner = ParallelRunner(jobs=2, task_timeout=0.5, max_retries=2)
        out = runner.map(_hang_once_then_return, [(flag, 7)])
        assert out == [14]
        assert runner.stats.timeouts >= 1

    def test_always_hanging_task_exhausts_retries(self):
        runner = ParallelRunner(jobs=2, task_timeout=0.3, max_retries=1)
        with pytest.raises(ExecutionError, match="timeout"):
            runner.map(_sleep_then_double, [(2.0, 1)])


class TestErrorPropagation:
    def test_task_exception_is_not_retried(self):
        runner = ParallelRunner(jobs=2, max_retries=5)
        with pytest.raises(ExecutionError, match="ValueError"):
            runner.map(_raise_value_error, [1, 2])
        assert runner.stats.retries == 0

    def test_serial_task_exception(self):
        runner = ParallelRunner(jobs=1)
        with pytest.raises(ValueError):
            runner.map(_raise_value_error, [1])


class TestStats:
    def test_stats_reset_per_call(self):
        runner = ParallelRunner(jobs=1)
        runner.map(_double, [1, 2, 3])
        assert runner.stats.tasks == 3
        assert runner.stats.executed == 3
        runner.map(_double, [1])
        assert runner.stats.tasks == 1
        assert runner.stats.executed == 1

    def test_describe_mentions_core_counters(self):
        runner = ParallelRunner(jobs=1)
        runner.map(_double, [1])
        text = runner.stats.describe()
        assert "tasks=1" in text and "executed=1" in text
