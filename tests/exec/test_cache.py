"""Tests of the content-addressed result cache and the stable hashing
underneath its keys."""

import functools
import os
import pickle
import subprocess
import sys
from dataclasses import dataclass

import pytest

from repro.exec import ResultCache, code_version, stable_describe, stable_digest


@dataclass(frozen=True)
class _Sample:
    a: int
    b: float


def _module_fn(x):
    return x


class TestStableDescribe:
    def test_primitives(self):
        assert stable_describe(None) == "None"
        assert stable_describe(3) == "3"
        assert stable_describe(0.1) == "0.1"
        assert stable_describe("x") == "'x'"
        assert stable_describe(b"\x01") == "bytes:01"

    def test_dict_order_does_not_matter(self):
        assert stable_describe({"a": 1, "b": 2}) == stable_describe({"b": 2, "a": 1})

    def test_list_order_does_matter(self):
        assert stable_describe([1, 2]) != stable_describe([2, 1])

    def test_dataclass_by_fields(self):
        text = stable_describe(_Sample(1, 2.5))
        assert "_Sample" in text and "a=1" in text and "b=2.5" in text

    def test_partial_and_function(self):
        p = functools.partial(_module_fn, 3)
        text = stable_describe(p)
        assert "_module_fn" in text and "3" in text
        assert "test_cache" in stable_describe(_module_fn)

    def test_float_precision_survives(self):
        a, b = 0.1 + 0.2, 0.3
        assert stable_describe(a) != stable_describe(b)

    def test_digest_differs_on_any_part(self):
        assert stable_digest("x", 1) != stable_digest("x", 2)
        assert stable_digest("x", 1) != stable_digest("y", 1)

    def test_digest_stable_across_hash_randomization(self):
        """Cache keys must agree between interpreter invocations even
        though str hashes (and so set/dict iteration orders) differ."""
        code = (
            "from repro.exec import stable_digest;"
            "print(stable_digest({'b': 2.5, 'a': 1}, ('x', 'y'), {'s', 't'}))"
        )
        digests = set()
        for seed in ("0", "1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = (
                os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
            )
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestCodeVersion:
    def test_is_a_digest_and_cached(self):
        v = code_version()
        assert len(v) == 64
        assert code_version() is v  # lru_cache


class TestResultCache:
    def test_store_load_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("unit", 1)
        assert cache.load(key) is None
        cache.store(key, {"value": [1.5, 2.5]}, "unit", 1)
        assert cache.load(key) == {"value": [1.5, 2.5]}
        assert key in cache
        assert len(cache) == 1

    def test_inspect_exposes_description(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("unit", _Sample(4, 0.5))
        cache.store(key, 42, "unit", _Sample(4, 0.5))
        description, result = cache.inspect(key)
        assert "_Sample" in description and "a=4" in description
        assert result == 42
        assert cache.inspect("0" * 64) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("unit", 2)
        cache.store(key, "ok", "unit", 2)
        path = cache._path(key)
        path.write_bytes(b"\x80truncated garbage")
        assert cache.load(key) is None
        assert not path.exists()

    def test_clear_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.store(cache.key_for("unit", i), i, "unit", i)
        stats = cache.stats()
        assert stats["entries"] == 3 and stats["bytes"] > 0
        assert sorted(cache.keys()) == sorted(
            cache.key_for("unit", i) for i in range(3)
        )
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_key_includes_code_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.key_for("unit") == stable_digest(code_version(), "unit")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("unit", 3)
        cache.store(key, list(range(100)), "unit", 3)
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_unpicklable_result_raises_and_leaves_no_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("unit", 4)
        with pytest.raises(Exception):
            cache.store(key, lambda: None, "unit", 4)  # lambdas don't pickle
        assert cache.load(key) is None
