"""The headline guarantee of the execution engine: ``jobs=N`` output is
byte-identical to ``jobs=1`` for every scenario and fault knob, and a
cache-hit replay is byte-identical to cold compute.

The comparison is field-by-field at the replicate level — per-link loss
estimates, support counts, annotation bit lists, failure-taxonomy
counts — not just at the aggregated table level, so a scheduling- or
shared-state-dependent divergence anywhere in a worker shows up as the
exact field that drifted.

``REPRO_TEST_JOBS`` overrides the parallel width (CI runs the suite at
2 on small runners; the default exercises 4).
"""

import os
import time

import pytest

from repro.core.config import DophyConfig
from repro.exec import ComparisonTask, ParallelRunner
from repro.workloads import (
    dophy_approach,
    dynamic_rgg_scenario,
    line_scenario,
    path_measurement_approach,
    run_replicated,
    tree_ratio_approach,
)

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "4"))

#: (label, scenario, approaches) — fault knobs at zero and non-zero.
MATRIX = [
    (
        "line_idealized",
        line_scenario(5, duration=60.0, traffic_period=3.0),
        (dophy_approach(), path_measurement_approach(), tree_ratio_approach()),
    ),
    (
        "line_lossy_dissemination",
        line_scenario(5, duration=60.0, traffic_period=3.0),
        (
            dophy_approach(
                config=DophyConfig(dissemination_loss=0.3, model_update_period=20.0)
            ),
        ),
    ),
    (
        "line_blocked_straggler",
        line_scenario(5, duration=60.0, traffic_period=3.0),
        (
            dophy_approach(
                config=DophyConfig(
                    dissemination_blocked_nodes=(3,), model_update_period=20.0
                )
            ),
        ),
    ),
    (
        "dynamic_rgg_churn",
        dynamic_rgg_scenario(16, churn_noise=0.6, duration=60.0, traffic_period=4.0),
        (dophy_approach(), tree_ratio_approach()),
    ),
    # The array simulation kernel rides the same guarantee: workers and
    # cache keys must treat engine="array" like any other config knob.
    (
        "line_idealized_array_engine",
        line_scenario(5, duration=60.0, traffic_period=3.0).with_config(
            engine="array"
        ),
        (dophy_approach(), path_measurement_approach(), tree_ratio_approach()),
    ),
    (
        "dynamic_rgg_churn_array_engine",
        dynamic_rgg_scenario(
            16, churn_noise=0.6, duration=60.0, traffic_period=4.0
        ).with_config(engine="array"),
        (dophy_approach(), tree_ratio_approach()),
    ),
    # The array engine's accelerations (batched forwarding, incremental
    # shortest paths, GE chain replay) are individually switchable; the
    # all-off configuration must ride the same parallel/cache guarantee
    # as any other knob combination.
    (
        "dynamic_rgg_churn_array_knobs_off",
        dynamic_rgg_scenario(
            16, churn_noise=0.6, duration=60.0, traffic_period=4.0
        ).with_config(
            engine="array",
            batch_forwarding=False,
            incremental_spt=False,
            ge_chain_replay=False,
        ),
        (dophy_approach(), tree_ratio_approach()),
    ),
]

IDS = [m[0] for m in MATRIX]


def _tasks(scenario, approaches, master_seed=42, replicates=4):
    from repro.utils.rng import spawn_seeds

    return [
        ComparisonTask(scenario=scenario, approaches=approaches, seed=seed)
        for seed in spawn_seeds(master_seed, replicates)
    ]


def assert_outcomes_identical(a, b, label):
    """Field-by-field equality of two ComparisonTaskResult lists."""
    assert len(a) == len(b)
    for i, (ra, rb) in enumerate(zip(a, b)):
        ctx = f"{label}, replicate {i}"
        assert ra.summary == rb.summary, ctx
        assert ra.rows.keys() == rb.rows.keys(), ctx
        for name in ra.rows:
            rowa, rowb = ra.rows[name], rb.rows[name]
            assert rowa.accuracy.per_link_errors == rowb.accuracy.per_link_errors, (
                f"{ctx}: per-link errors of {name}"
            )
            assert rowa.accuracy == rowb.accuracy, f"{ctx}: accuracy of {name}"
            assert rowa.overhead == rowb.overhead, f"{ctx}: overhead of {name}"
            assert rowa.delivery_ratio == rowb.delivery_ratio, ctx
            assert rowa.churn_rate == rowb.churn_rate, ctx


class TestParallelEqualsSerial:
    @pytest.mark.parametrize("label,scenario,approaches", MATRIX, ids=IDS)
    def test_jobs_n_equals_jobs_1(self, label, scenario, approaches):
        tasks = _tasks(scenario, approaches)
        serial = ParallelRunner(jobs=1).run_comparisons(tasks)
        parallel = ParallelRunner(jobs=JOBS).run_comparisons(tasks)
        assert_outcomes_identical(serial, parallel, label)

    def test_worker_result_identical_to_in_process(self):
        """The same task executed in a pool worker and in-process yields
        field-identical results (jobs=2 forces the pickle round-trip)."""
        from repro.exec.parallel import _execute_comparison_task

        scenario = line_scenario(5, duration=60.0, traffic_period=3.0)
        task = ComparisonTask(
            scenario=scenario,
            approaches=(
                dophy_approach(
                    config=DophyConfig(
                        dissemination_loss=0.4, model_update_period=15.0
                    )
                ),
            ),
            seed=7,
        )
        inproc = _execute_comparison_task(task)
        pooled = ParallelRunner(jobs=2).map(_execute_comparison_task, [task, task])
        for r in pooled:
            assert_outcomes_identical([inproc], [r], "worker vs in-process")

    def test_repeated_extraction_audits_shared_module_state(self):
        """Running the same seed twice inside one process must reproduce
        every outcome field exactly — if an approach factory or observer
        mutated module-level state, the second pass would diverge."""
        scenario = line_scenario(5, duration=60.0, traffic_period=3.0)
        spec = dophy_approach(
            config=DophyConfig(dissemination_loss=0.4, model_update_period=15.0)
        )

        def one_pass():
            obs = spec.factory()
            sim = scenario.make_simulation(7, [obs])
            result = sim.run()
            return spec.extract(obs, result)

        first, second = one_pass(), one_pass()
        assert first.losses == second.losses
        assert first.support == second.support
        assert first.annotation_bits == second.annotation_bits
        assert first.annotation_hops == second.annotation_hops
        assert first.control_bits == second.control_bits
        assert first.failure_counts == second.failure_counts
        assert "decode_failures" in first.failure_counts

    def test_array_engine_outcomes_equal_event_engine(self):
        """Engine choice is *not* allowed to be a config knob that changes
        results: the array kernel must reproduce the event oracle's
        outcomes field-by-field through the whole exec pipeline (the
        sharp version lives in tests/net/test_fastsim_differential.py)."""
        scenario = dynamic_rgg_scenario(
            16, churn_noise=0.6, duration=60.0, traffic_period=4.0
        )
        approaches = (dophy_approach(), tree_ratio_approach())
        event = ParallelRunner(jobs=1).run_comparisons(_tasks(scenario, approaches))
        array = ParallelRunner(jobs=JOBS).run_comparisons(
            _tasks(scenario.with_config(engine="array"), approaches)
        )
        assert_outcomes_identical(event, array, "array engine vs event oracle")

    @pytest.mark.parametrize("label,scenario,approaches", MATRIX[:2], ids=IDS[:2])
    def test_run_replicated_tables_identical(self, label, scenario, approaches):
        serial = run_replicated(
            scenario, approaches, master_seed=11, replicates=3, jobs=1
        )
        parallel = run_replicated(
            scenario, approaches, master_seed=11, replicates=3, jobs=JOBS
        )
        assert serial == parallel, label


class TestCacheReplay:
    def test_cache_hit_replay_equals_cold_compute(self, tmp_path):
        scenario = dynamic_rgg_scenario(
            16, churn_noise=0.6, duration=60.0, traffic_period=4.0
        )
        approaches = (dophy_approach(), tree_ratio_approach())
        tasks = _tasks(scenario, approaches, master_seed=5, replicates=3)
        cold_runner = ParallelRunner(jobs=JOBS, cache_dir=str(tmp_path))
        cold = cold_runner.run_comparisons(tasks)
        assert cold_runner.stats.executed == 3
        assert cold_runner.stats.cache_hits == 0
        warm_runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        warm = warm_runner.run_comparisons(tasks)
        assert warm_runner.stats.executed == 0, "warm rerun must execute nothing"
        assert warm_runner.stats.cache_hits == 3
        assert_outcomes_identical(cold, warm, "cache replay")

    def test_partial_cache_computes_only_missing(self, tmp_path):
        scenario = line_scenario(4, duration=40.0)
        approaches = (dophy_approach(),)
        first = _tasks(scenario, approaches, master_seed=9, replicates=2)
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        runner.run_comparisons(first)
        extended = _tasks(scenario, approaches, master_seed=9, replicates=4)
        runner.run_comparisons(extended)
        assert runner.stats.cache_hits == 2
        assert runner.stats.executed == 2

    def test_seed_and_config_change_miss_the_cache(self, tmp_path):
        scenario = line_scenario(4, duration=40.0)
        runner = ParallelRunner(jobs=1, cache_dir=str(tmp_path))
        base = ComparisonTask(
            scenario=scenario, approaches=(dophy_approach(),), seed=1
        )
        runner.run_comparisons([base])
        for variant in [
            ComparisonTask(scenario=scenario, approaches=(dophy_approach(),), seed=2),
            ComparisonTask(
                scenario=scenario, approaches=(dophy_approach(),), seed=1,
                min_support=5,
            ),
            ComparisonTask(
                scenario=scenario,
                approaches=(
                    dophy_approach(config=DophyConfig(aggregation_threshold=4)),
                ),
                seed=1,
            ),
            # Engine selection is part of the cache key (results are
            # identical across engines, but a stale-key collision would
            # mask an engine bug; recompute is the conservative choice).
            ComparisonTask(
                scenario=scenario.with_config(engine="array"),
                approaches=(dophy_approach(),),
                seed=1,
            ),
        ]:
            runner.run_comparisons([variant])
            assert runner.stats.cache_hits == 0, variant
            assert runner.stats.executed == 1, variant


class TestSanitizedFingerprints:
    """The determinism matrix under the runtime sanitizer: identical
    seeds yield bit-identical fingerprints (draw-for-draw, pop-for-pop),
    not just identical extracted outcomes."""

    def test_same_seed_fingerprints_identical_per_engine(self):
        from repro.sanitize import diff_fingerprints, sanitize_run

        base = line_scenario(5, duration=60.0, traffic_period=3.0)
        for engine in ("event", "array"):
            scenario = base.with_config(engine=engine)

            def one_pass():
                with sanitize_run(engine) as san:
                    scenario.make_simulation(7).run()
                return san.fingerprint()

            first, second = one_pass(), one_pass()
            divergences = diff_fingerprints(first, second, mode="global")
            assert divergences == [], (
                engine,
                [d.describe() for d in divergences],
            )
            assert first.total_draws() > 0

    def test_engines_fingerprint_equivalent_through_extraction(self):
        from repro.sanitize import diff_fingerprints, sanitize_run

        scenario = dynamic_rgg_scenario(
            16, churn_noise=0.6, duration=60.0, traffic_period=4.0
        )
        spec = dophy_approach()
        fingerprints = {}
        for engine in ("event", "array"):
            scn = scenario.with_config(engine=engine)
            with sanitize_run(engine) as san:
                obs = spec.factory()
                result = scn.make_simulation(7, [obs]).run()
                spec.extract(obs, result)
            fingerprints[engine] = san.fingerprint()
        divergences = diff_fingerprints(
            fingerprints["event"], fingerprints["array"], mode="stream"
        )
        assert divergences == [], [d.describe() for d in divergences]


@pytest.mark.skipif(
    os.environ.get("REPRO_PERF") != "1",
    reason="wall-clock speedup needs >= 4 free cores; set REPRO_PERF=1 to run",
)
def test_parallel_speedup_at_least_3x():
    """Acceptance check: jobs=4 is >= 3x faster than jobs=1 on the
    replicate-heavy 50-node workload (run on multi-core hardware)."""
    scenario = dynamic_rgg_scenario(50, duration=120.0)
    approaches = (dophy_approach(),)
    t0 = time.monotonic()
    serial = run_replicated(
        scenario, approaches, master_seed=7, replicates=16, jobs=1
    )
    t1 = time.monotonic()
    parallel = run_replicated(
        scenario, approaches, master_seed=7, replicates=16, jobs=4
    )
    t2 = time.monotonic()
    assert serial == parallel
    assert (t1 - t0) / (t2 - t1) >= 3.0, (
        f"speedup {(t1 - t0) / (t2 - t1):.2f}x below 3x"
    )
