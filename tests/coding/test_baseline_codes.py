"""Tests for the baseline prefix codes (fixed-width, unary, Elias, Rice)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.baseline_codes import (
    EliasDeltaCode,
    EliasGammaCode,
    FixedWidthCode,
    GolombRiceCode,
    UnaryCode,
    optimal_rice_parameter,
)
from repro.coding.bitio import BitReader

ALL_CODES = [
    FixedWidthCode(8),
    UnaryCode(),
    EliasGammaCode(),
    EliasDeltaCode(),
    GolombRiceCode(0),
    GolombRiceCode(1),
    GolombRiceCode(3),
]


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
def test_roundtrip_small_values(code):
    values = list(range(0, 40))
    writer = code.encode_sequence(values)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert code.decode_sequence(reader, len(values)) == values


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
def test_code_length_matches_encoding(code):
    for v in [0, 1, 2, 5, 17, 63, 200]:
        writer = code.encode_sequence([v])
        assert code.code_length(v) == writer.bit_length


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
def test_rejects_negative(code):
    with pytest.raises(ValueError):
        code.encode_sequence([-1])


@pytest.mark.parametrize("code", ALL_CODES, ids=lambda c: c.name)
def test_rejects_bool(code):
    with pytest.raises(TypeError):
        code.encode_sequence([True])


class TestFixedWidth:
    def test_exact_width(self):
        code = FixedWidthCode(4)
        w = code.encode_sequence([5, 10])
        assert w.bit_length == 8

    def test_overflow_raises(self):
        code = FixedWidthCode(4)
        with pytest.raises(ValueError):
            code.encode_sequence([16])

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            FixedWidthCode(0)


class TestUnary:
    def test_lengths(self):
        code = UnaryCode()
        assert code.code_length(0) == 1
        assert code.code_length(5) == 6


class TestEliasGamma:
    def test_known_codewords(self):
        # gamma over v+1: value 0 -> "1"; value 1 -> "010"; value 2 -> "011".
        code = EliasGammaCode()
        assert code.encode_sequence([0]).to_bits() == [1]
        assert code.encode_sequence([1]).to_bits() == [0, 1, 0]
        assert code.encode_sequence([2]).to_bits() == [0, 1, 1]

    def test_lengths_grow_logarithmically(self):
        code = EliasGammaCode()
        assert code.code_length(0) == 1
        assert code.code_length(1) == 3
        assert code.code_length(7) == 7
        assert code.code_length(1000) == 19


class TestEliasDelta:
    def test_shorter_than_gamma_for_large_values(self):
        gamma, delta = EliasGammaCode(), EliasDeltaCode()
        assert delta.code_length(10_000) < gamma.code_length(10_000)

    def test_value_zero(self):
        code = EliasDeltaCode()
        w = code.encode_sequence([0])
        r = BitReader(w.getvalue(), w.bit_length)
        assert code.decode_value(r) == 0


class TestGolombRice:
    def test_k0_equals_unary(self):
        rice0, unary = GolombRiceCode(0), UnaryCode()
        for v in range(10):
            assert rice0.code_length(v) == unary.code_length(v)

    def test_known_codeword(self):
        # k=2, v=6: quotient 1 -> "10", remainder 2 -> "10".
        code = GolombRiceCode(2)
        assert code.encode_sequence([6]).to_bits() == [1, 0, 1, 0]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            GolombRiceCode(-1)


class TestOptimalRiceParameter:
    def test_small_mean_gives_zero(self):
        assert optimal_rice_parameter(0.05) == 0
        assert optimal_rice_parameter(0.0) == 0

    def test_monotone_in_mean(self):
        ks = [optimal_rice_parameter(m) for m in [0.3, 1.0, 4.0, 16.0, 64.0]]
        assert ks == sorted(ks)
        assert ks[-1] >= 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            optimal_rice_parameter(-1.0)

    def test_chosen_k_is_near_optimal_for_geometric(self):
        """The selected k is within 5% of the best k's expected length."""
        import math

        mean = 3.0
        p_success = 1.0 / (1.0 + mean)

        def expected_length(k):
            # E[len] under geometric(mean), truncated sum.
            total, prob_mass = 0.0, 0.0
            for v in range(2000):
                p = p_success * (1 - p_success) ** v
                total += p * GolombRiceCode(k).code_length(v)
                prob_mass += p
            return total / prob_mass

        chosen = optimal_rice_parameter(mean)
        best = min(range(8), key=expected_length)
        assert expected_length(chosen) <= expected_length(best) * 1.05


@given(
    st.lists(st.integers(min_value=0, max_value=100_000), max_size=30),
)
def test_property_variable_length_codes_roundtrip(values):
    for code in [UnaryCode(), EliasGammaCode(), EliasDeltaCode(), GolombRiceCode(2)]:
        if code.name == "unary" and any(v > 300 for v in values):
            continue  # unary length explodes; skip pathological sizes
        writer = code.encode_sequence(values)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        assert code.decode_sequence(reader, len(values)) == values


@given(st.lists(st.integers(min_value=0, max_value=255), max_size=30))
def test_property_mixed_codes_share_stream(values):
    """Different codes can be interleaved in one stream and still decode."""
    gamma, rice = EliasGammaCode(), GolombRiceCode(1)
    from repro.coding.bitio import BitWriter

    w = BitWriter()
    for i, v in enumerate(values):
        (gamma if i % 2 == 0 else rice).encode_value(w, v)
    r = BitReader(w.getvalue(), w.bit_length)
    out = [(gamma if i % 2 == 0 else rice).decode_value(r) for i in range(len(values))]
    assert out == values
