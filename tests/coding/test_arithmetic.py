"""Tests for the integer arithmetic coder: round-trips, incremental use,
compression optimality, and precision edge cases."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.arithmetic import (
    MAX_MODEL_TOTAL,
    ArithmeticDecoder,
    ArithmeticEncoder,
)
from repro.coding.freq import AdaptiveFrequencyTable, FrequencyTable


def roundtrip(model, symbols):
    enc = ArithmeticEncoder()
    for s in symbols:
        enc.encode_symbol(model, s)
    data, nbits = enc.finish()
    dec = ArithmeticDecoder(data, nbits)
    return [dec.decode_symbol(model) for _ in symbols], nbits


class TestRoundTrip:
    def test_empty_stream(self):
        enc = ArithmeticEncoder()
        data, nbits = enc.finish()
        assert nbits >= 1  # terminal bits only
        ArithmeticDecoder(data, nbits)  # constructing must not raise

    def test_single_symbol(self):
        model = FrequencyTable([1, 1, 1])
        decoded, _ = roundtrip(model, [2])
        assert decoded == [2]

    def test_uniform_model(self):
        model = FrequencyTable.uniform(4)
        seq = [0, 1, 2, 3, 3, 2, 1, 0, 2, 2]
        decoded, _ = roundtrip(model, seq)
        assert decoded == seq

    def test_skewed_model(self):
        model = FrequencyTable([1000, 10, 1])
        seq = [0] * 50 + [1, 0, 2, 0, 0, 1] + [0] * 50
        decoded, _ = roundtrip(model, seq)
        assert decoded == seq

    def test_long_sequence(self):
        model = FrequencyTable([90, 7, 2, 1])
        seq = ([0] * 9 + [1]) * 100 + [2, 3] * 10
        decoded, _ = roundtrip(model, seq)
        assert decoded == seq

    def test_rarest_symbol_only(self):
        model = FrequencyTable([10_000, 1])
        seq = [1] * 20
        decoded, _ = roundtrip(model, seq)
        assert decoded == seq

    def test_per_position_models(self):
        """Different model per position (context modelling) round-trips."""
        models = [
            FrequencyTable([5, 1]),
            FrequencyTable([1, 5]),
            FrequencyTable([1, 1, 8]),
        ]
        seq = [0, 1, 2]
        enc = ArithmeticEncoder()
        for m, s in zip(models, seq):
            enc.encode_symbol(m, s)
        data, nbits = enc.finish()
        dec = ArithmeticDecoder(data, nbits)
        assert [dec.decode_symbol(m) for m in models] == seq

    def test_adaptive_model_roundtrip(self):
        seq = [0, 0, 1, 0, 2, 2, 2, 0, 1, 2, 2, 2, 2]
        enc_model = AdaptiveFrequencyTable(3)
        enc = ArithmeticEncoder()
        for s in seq:
            enc.encode_symbol(enc_model, s)
            enc_model.update(s)
        data, nbits = enc.finish()
        dec_model = AdaptiveFrequencyTable(3)
        dec = ArithmeticDecoder(data, nbits)
        out = []
        for _ in seq:
            s = dec.decode_symbol(dec_model)
            dec_model.update(s)
            out.append(s)
        assert out == seq

    def test_from_encoder_output_helper(self):
        model = FrequencyTable([3, 1])
        enc = ArithmeticEncoder()
        for s in [0, 1, 0]:
            enc.encode_symbol(model, s)
        dec = ArithmeticDecoder.from_encoder_output(enc.finish())
        assert dec.decode_sequence(model, 3) == [0, 1, 0]

    def test_decode_sequence_validates_count(self):
        model = FrequencyTable([1, 1])
        dec = ArithmeticDecoder(b"\x00", 8)
        with pytest.raises(ValueError):
            dec.decode_sequence(model, -1)


class TestIncrementalEncoding:
    """Dophy appends symbols hop by hop; these mirror that life cycle."""

    def test_copy_forks_state(self):
        model = FrequencyTable([4, 1])
        enc = ArithmeticEncoder()
        enc.encode_symbol(model, 0)
        fork = enc.copy()
        fork.encode_symbol(model, 1)
        enc.encode_symbol(model, 0)
        d1 = ArithmeticDecoder.from_encoder_output(enc.finish())
        d2 = ArithmeticDecoder.from_encoder_output(fork.finish())
        assert d1.decode_sequence(model, 2) == [0, 0]
        assert d2.decode_sequence(model, 2) == [0, 1]

    def test_finalized_bit_length_is_nondestructive(self):
        model = FrequencyTable([9, 1])
        enc = ArithmeticEncoder()
        for s in [0, 0, 1]:
            enc.encode_symbol(model, s)
        probe = enc.finalized_bit_length()
        # Still usable afterwards:
        enc.encode_symbol(model, 0)
        data, nbits = enc.finish()
        assert probe >= enc.bit_length or probe >= 1
        dec = ArithmeticDecoder(data, nbits)
        assert dec.decode_sequence(model, 4) == [0, 0, 1, 0]

    def test_finalized_bit_length_matches_actual_finish(self):
        model = FrequencyTable([7, 2, 1])
        enc = ArithmeticEncoder()
        for s in [0, 1, 0, 2, 0]:
            enc.encode_symbol(model, s)
        predicted = enc.finalized_bit_length()
        _, actual = enc.finish()
        assert predicted == actual

    def test_finish_twice_raises(self):
        enc = ArithmeticEncoder()
        enc.finish()
        with pytest.raises(RuntimeError):
            enc.finish()

    def test_encode_after_finish_raises(self):
        enc = ArithmeticEncoder()
        enc.finish()
        with pytest.raises(RuntimeError):
            enc.encode_symbol(FrequencyTable([1, 1]), 0)

    def test_symbols_encoded_counter(self):
        model = FrequencyTable([1, 1])
        enc = ArithmeticEncoder()
        assert enc.symbols_encoded == 0
        enc.encode_symbol(model, 0)
        enc.encode_symbol(model, 1)
        assert enc.symbols_encoded == 2


class TestCompressionQuality:
    def test_skewed_beats_fixed_width(self):
        """A highly skewed source compresses far below log2(n) bits/symbol."""
        model = FrequencyTable([950, 40, 9, 1])
        seq = [0] * 950 + [1] * 40 + [2] * 9 + [3]
        _, nbits = roundtrip(model, seq)
        fixed_bits = len(seq) * 2  # log2(4)
        assert nbits < 0.35 * fixed_bits

    def test_rate_close_to_entropy(self):
        """Measured bits/symbol approaches the model entropy on matched data."""
        freqs = [800, 150, 40, 10]
        model = FrequencyTable(freqs)
        # Deterministic sequence with exactly the model's empirical mix.
        seq = []
        for sym, f in enumerate(freqs):
            seq.extend([sym] * f)
        # Interleave to avoid pathological run structure mattering (it doesn't
        # for arithmetic coding, but keep the test honest).
        seq = seq[::2] + seq[1::2]
        _, nbits = roundtrip(model, seq)
        entropy = model.entropy_bits() * len(seq)
        assert nbits <= entropy + 16  # small constant overhead only

    def test_uniform_source_near_log2(self):
        model = FrequencyTable.uniform(5)
        seq = [i % 5 for i in range(500)]
        _, nbits = roundtrip(model, seq)
        assert abs(nbits / len(seq) - math.log2(5)) < 0.05


class TestPrecisionLimits:
    def test_model_total_cap_enforced_encode(self):
        class Fat:
            total = MAX_MODEL_TOTAL + 1

            def interval(self, s):
                return (0, 1, self.total)

            def symbol_for(self, v):
                return 0

        enc = ArithmeticEncoder()
        with pytest.raises(ValueError):
            enc.encode_symbol(Fat(), 0)

    def test_model_total_cap_enforced_decode(self):
        class Fat:
            total = MAX_MODEL_TOTAL + 1

            def interval(self, s):
                return (0, 1, self.total)

            def symbol_for(self, v):
                return 0

        dec = ArithmeticDecoder(b"\x00\x00\x00\x00\x00")
        with pytest.raises(ValueError):
            dec.decode_symbol(Fat())

    def test_large_model_total_near_cap_roundtrips(self):
        model = FrequencyTable([MAX_MODEL_TOTAL - 3, 1, 1, 1])
        seq = [0, 1, 2, 3, 0]
        decoded, _ = roundtrip(model, seq)
        assert decoded == seq

    def test_empty_interval_symbol_raises(self):
        class Degenerate:
            total = 10

            def interval(self, s):
                return (5, 5, 10)

            def symbol_for(self, v):
                return 0

        enc = ArithmeticEncoder()
        with pytest.raises(ValueError):
            enc.encode_symbol(Degenerate(), 0)


@settings(max_examples=60, deadline=None)
@given(
    freqs=st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=16),
    data=st.data(),
)
def test_property_roundtrip_random_model(freqs, data):
    """Arbitrary model + arbitrary symbol sequence always round-trips."""
    model = FrequencyTable(freqs)
    n = len(freqs)
    seq = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), max_size=120)
    )
    decoded, _ = roundtrip(model, seq)
    assert decoded == seq


@settings(max_examples=30, deadline=None)
@given(
    freqs=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=8),
    seq=st.lists(st.integers(min_value=0, max_value=7), max_size=60),
)
def test_property_incremental_equals_batch(freqs, seq):
    """Copy-then-continue produces the identical codeword as direct encoding."""
    model = FrequencyTable(freqs)
    seq = [s % len(freqs) for s in seq]
    direct = ArithmeticEncoder()
    stepped = ArithmeticEncoder()
    for s in seq:
        direct.encode_symbol(model, s)
        stepped = stepped.copy()  # fork at every hop, as packets do
        stepped.encode_symbol(model, s)
    assert direct.finish() == stepped.finish()
