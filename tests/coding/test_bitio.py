"""Unit and property tests for the bit-level I/O layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer(self):
        w = BitWriter()
        assert w.bit_length == 0
        assert w.byte_length == 0
        assert w.getvalue() == b""
        assert w.to_bits() == []

    def test_write_single_bits(self):
        w = BitWriter()
        for b in [1, 0, 1, 1]:
            w.write_bit(b)
        assert w.bit_length == 4
        assert w.to_bits() == [1, 0, 1, 1]
        # 1011 padded to 10110000
        assert w.getvalue() == bytes([0b10110000])

    def test_write_bit_rejects_non_binary(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_bit(2)
        with pytest.raises(ValueError):
            w.write_bit(-1)

    def test_write_uint_msb_first(self):
        w = BitWriter()
        w.write_uint(0b1011, 4)
        assert w.to_bits() == [1, 0, 1, 1]

    def test_write_uint_with_leading_zeros(self):
        w = BitWriter()
        w.write_uint(3, 8)
        assert w.to_bits() == [0, 0, 0, 0, 0, 0, 1, 1]

    def test_write_uint_overflow_raises(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write_uint(16, 4)

    def test_write_uint_zero_width_ok_for_zero(self):
        w = BitWriter()
        w.write_uint(0, 0)
        assert w.bit_length == 0

    def test_write_unary(self):
        w = BitWriter()
        w.write_unary(3)
        assert w.to_bits() == [1, 1, 1, 0]

    def test_write_unary_zero(self):
        w = BitWriter()
        w.write_unary(0)
        assert w.to_bits() == [0]

    def test_write_unary_negative_raises(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_byte_length_rounds_up(self):
        w = BitWriter()
        w.write_uint(0, 9)
        assert w.byte_length == 2

    def test_copy_is_independent(self):
        w = BitWriter()
        w.write_uint(0xAB, 8)
        clone = w.copy()
        clone.write_bit(1)
        assert w.bit_length == 8
        assert clone.bit_length == 9
        assert w.to_bits() == clone.to_bits()[:8]

    def test_multibyte_value(self):
        w = BitWriter()
        w.write_uint(0xDEAD, 16)
        assert w.getvalue() == bytes([0xDE, 0xAD])


class TestBitReader:
    def test_read_bits_in_order(self):
        r = BitReader(bytes([0b10110000]), bit_length=4)
        assert [r.read_bit() for _ in range(4)] == [1, 0, 1, 1]

    def test_read_past_end_returns_zero(self):
        r = BitReader(bytes([0xFF]), bit_length=2)
        assert r.read_bit() == 1
        assert r.read_bit() == 1
        assert r.read_bit() == 0  # padding
        assert r.exhausted

    def test_bit_length_validation(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", bit_length=9)

    def test_read_uint(self):
        r = BitReader(bytes([0xDE, 0xAD]))
        assert r.read_uint(16) == 0xDEAD

    def test_read_unary(self):
        r = BitReader.from_bits([1, 1, 0, 0])
        assert r.read_unary() == 2
        assert r.read_unary() == 0

    def test_bits_remaining(self):
        r = BitReader(b"\x00\x00", bit_length=10)
        r.read_uint(3)
        assert r.bits_remaining == 7
        assert r.bits_consumed == 3

    def test_from_bits_roundtrip(self):
        bits = [1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1]
        r = BitReader.from_bits(bits)
        assert [r.read_bit() for _ in range(len(bits))] == bits


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
def test_property_bit_roundtrip(bits):
    """Any bit sequence written is read back identically."""
    w = BitWriter()
    w.write_bits(bits)
    r = BitReader(w.getvalue(), w.bit_length)
    assert [r.read_bit() for _ in range(len(bits))] == bits


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=2**32 - 1)),
        max_size=30,
    )
)
def test_property_uint_roundtrip(values):
    """write_uint/read_uint round-trip at each value's natural width."""
    widths = [max(1, v[0].bit_length()) for v in values]
    w = BitWriter()
    for (v,), width in zip(values, widths):
        w.write_uint(v, width)
    r = BitReader(w.getvalue(), w.bit_length)
    for (v,), width in zip(values, widths):
        assert r.read_uint(width) == v


@given(st.lists(st.integers(min_value=0, max_value=50), max_size=40))
def test_property_unary_roundtrip(values):
    w = BitWriter()
    for v in values:
        w.write_unary(v)
    r = BitReader(w.getvalue(), w.bit_length)
    for v in values:
        assert r.read_unary() == v
