"""Tests for static and adaptive frequency tables."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.coding.freq import AdaptiveFrequencyTable, FrequencyTable


class TestFrequencyTable:
    def test_basic_intervals(self):
        t = FrequencyTable([2, 3, 5])
        assert t.total == 10
        assert t.interval(0) == (0, 2, 10)
        assert t.interval(1) == (2, 5, 10)
        assert t.interval(2) == (5, 10, 10)

    def test_symbol_for_covers_all_values(self):
        t = FrequencyTable([2, 3, 5])
        expected = [0, 0, 1, 1, 1, 2, 2, 2, 2, 2]
        assert [t.symbol_for(v) for v in range(10)] == expected

    def test_symbol_for_out_of_range(self):
        t = FrequencyTable([1, 1])
        with pytest.raises(ValueError):
            t.symbol_for(2)
        with pytest.raises(ValueError):
            t.symbol_for(-1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrequencyTable([])

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            FrequencyTable([1, 0, 2])

    def test_uniform(self):
        t = FrequencyTable.uniform(4)
        assert t.probabilities() == [0.25] * 4

    def test_uniform_requires_positive(self):
        with pytest.raises(ValueError):
            FrequencyTable.uniform(0)

    def test_from_counts_smoothing(self):
        t = FrequencyTable.from_counts([10, 0, 0])
        assert t.frequency(1) == 1  # smoothed, still encodable
        assert t.frequency(0) == 11

    def test_from_counts_rejects_zero_smoothing(self):
        with pytest.raises(ValueError):
            FrequencyTable.from_counts([1, 2], smoothing=0)

    def test_from_probabilities(self):
        t = FrequencyTable.from_probabilities([0.9, 0.09, 0.01], precision=1000)
        probs = t.probabilities()
        assert probs[0] > probs[1] > probs[2] > 0
        assert abs(probs[0] - 0.9) < 0.02

    def test_from_probabilities_all_zero_falls_back_uniform(self):
        t = FrequencyTable.from_probabilities([0.0, 0.0])
        assert t.probabilities() == [0.5, 0.5]

    def test_from_probabilities_rejects_negative(self):
        with pytest.raises(ValueError):
            FrequencyTable.from_probabilities([0.5, -0.1])

    def test_entropy_uniform(self):
        t = FrequencyTable.uniform(8)
        assert math.isclose(t.entropy_bits(), 3.0)

    def test_entropy_deterministic_near_zero(self):
        t = FrequencyTable([1000, 1])
        assert t.entropy_bits() < 0.02

    def test_expected_code_length_is_cross_entropy(self):
        # Coding with the true distribution equals its entropy.
        t = FrequencyTable([1, 1, 2])
        truth = t.probabilities()
        assert math.isclose(t.expected_code_length(truth), t.entropy_bits())

    def test_expected_code_length_mismatch_exceeds_entropy(self):
        model = FrequencyTable([1, 1])
        truth = [0.9, 0.1]
        h = -sum(p * math.log2(p) for p in truth)
        assert model.expected_code_length(truth) > h

    def test_expected_code_length_length_mismatch(self):
        with pytest.raises(ValueError):
            FrequencyTable([1, 1]).expected_code_length([1.0])

    def test_serialized_size(self):
        t = FrequencyTable.uniform(5)
        assert t.serialized_size_bits(bits_per_frequency=12) == 8 + 5 * 12

    def test_equality_and_hash(self):
        a = FrequencyTable([1, 2, 3])
        b = FrequencyTable([1, 2, 3])
        c = FrequencyTable([1, 2, 4])
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestAdaptiveFrequencyTable:
    def test_starts_uniform(self):
        t = AdaptiveFrequencyTable(4)
        assert t.total == 4
        assert all(t.frequency(s) == 1 for s in range(4))

    def test_update_shifts_mass(self):
        t = AdaptiveFrequencyTable(3, increment=10)
        t.update(1)
        assert t.frequency(1) == 11
        assert t.total == 13
        lo, hi, total = t.interval(1)
        assert (hi - lo) == 11 and total == 13

    def test_intervals_partition_total(self):
        t = AdaptiveFrequencyTable(5, increment=7)
        for s in [0, 2, 2, 4, 1, 2]:
            t.update(s)
        edges = [t.interval(s) for s in range(5)]
        assert edges[0][0] == 0
        for prev, cur in zip(edges, edges[1:]):
            assert prev[1] == cur[0]
        assert edges[-1][1] == t.total

    def test_symbol_for_matches_intervals(self):
        t = AdaptiveFrequencyTable(4, increment=5)
        for s in [3, 3, 0, 1]:
            t.update(s)
        for sym in range(4):
            lo, hi, _ = t.interval(sym)
            for v in (lo, hi - 1):
                assert t.symbol_for(v) == sym

    def test_rescale_keeps_symbols_encodable(self):
        t = AdaptiveFrequencyTable(3, increment=1000, max_total=5000)
        for _ in range(100):
            t.update(0)
        assert t.total <= 5000 + 1000
        assert all(t.frequency(s) >= 1 for s in range(3))

    def test_snapshot_freezes_state(self):
        t = AdaptiveFrequencyTable(3, increment=2)
        t.update(2)
        snap = t.snapshot()
        t.update(0)
        assert snap.frequency(2) == 3
        assert snap.frequency(0) == 1  # pre-update value

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AdaptiveFrequencyTable(0)
        with pytest.raises(ValueError):
            AdaptiveFrequencyTable(2, increment=0)

    def test_symbol_out_of_range(self):
        t = AdaptiveFrequencyTable(2)
        with pytest.raises(ValueError):
            t.update(2)
        with pytest.raises(ValueError):
            t.interval(-1)


@given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=20))
def test_property_static_intervals_partition(freqs):
    """Static-table intervals tile [0, total) exactly."""
    t = FrequencyTable(freqs)
    cursor = 0
    for s in range(t.num_symbols):
        lo, hi, total = t.interval(s)
        assert lo == cursor and hi > lo and total == t.total
        cursor = hi
    assert cursor == t.total


@given(
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=12),
    st.data(),
)
def test_property_symbol_for_inverts_interval(freqs, data):
    t = FrequencyTable(freqs)
    value = data.draw(st.integers(min_value=0, max_value=t.total - 1))
    sym = t.symbol_for(value)
    lo, hi, _ = t.interval(sym)
    assert lo <= value < hi


@given(
    st.integers(min_value=1, max_value=10),
    st.lists(st.integers(min_value=0, max_value=9), max_size=60),
)
def test_property_adaptive_consistency(n, updates):
    """Adaptive table keeps interval/symbol_for consistent after any update sequence."""
    t = AdaptiveFrequencyTable(n, increment=3)
    for u in updates:
        t.update(u % n)
    cursor = 0
    for s in range(n):
        lo, hi, total = t.interval(s)
        assert lo == cursor and total == t.total
        assert t.symbol_for(lo) == s
        assert t.symbol_for(hi - 1) == s
        cursor = hi
    assert cursor == t.total
