"""Tests for the canonical Huffman coder."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.bitio import BitReader
from repro.coding.freq import FrequencyTable
from repro.coding.huffman import HuffmanCode


class TestConstruction:
    def test_uniform_four_symbols_two_bits(self):
        code = HuffmanCode(FrequencyTable.uniform(4))
        assert all(code.code_length(s) == 2 for s in range(4))

    def test_skewed_gives_short_code_to_common_symbol(self):
        code = HuffmanCode(FrequencyTable([100, 10, 5, 1]))
        assert code.code_length(0) == 1
        assert code.code_length(3) >= 3

    def test_single_symbol(self):
        code = HuffmanCode(FrequencyTable([7]))
        assert code.code_length(0) == 1  # degenerate alphabet still needs a bit

    def test_kraft_equality(self):
        """Huffman codes satisfy Kraft with equality (full binary tree)."""
        code = HuffmanCode(FrequencyTable([13, 7, 4, 2, 1, 1]))
        assert sum(2.0 ** -code.code_length(s) for s in range(6)) == pytest.approx(1.0)

    def test_canonical_codes_are_prefix_free(self):
        code = HuffmanCode(FrequencyTable([40, 30, 15, 10, 5]))
        words = [
            format(code._codes[s][0], f"0{code._codes[s][1]}b") for s in range(5)
        ]
        for i, a in enumerate(words):
            for j, b in enumerate(words):
                if i != j:
                    assert not b.startswith(a)

    def test_expected_length_within_one_bit_of_entropy(self):
        table = FrequencyTable([500, 200, 150, 100, 50])
        code = HuffmanCode(table)
        h = table.entropy_bits()
        assert h <= code.expected_length() < h + 1.0

    def test_expected_length_mismatched_distribution(self):
        code = HuffmanCode(FrequencyTable([1, 1]))
        with pytest.raises(ValueError):
            code.expected_length([1.0])


class TestRoundTrip:
    def test_basic(self):
        code = HuffmanCode(FrequencyTable([10, 4, 2, 1]))
        seq = [0, 1, 0, 3, 2, 0, 0, 1]
        w = code.encode_sequence(seq)
        assert code.decode_sequence(BitReader(w.getvalue(), w.bit_length), len(seq)) == seq

    def test_from_probabilities(self):
        code = HuffmanCode.from_probabilities([0.7, 0.2, 0.1])
        seq = [0, 0, 2, 1, 0]
        w = code.encode_sequence(seq)
        assert code.decode_sequence(BitReader(w.getvalue(), w.bit_length), len(seq)) == seq

    def test_negative_count_rejected(self):
        code = HuffmanCode(FrequencyTable([1, 1]))
        with pytest.raises(ValueError):
            code.decode_sequence(BitReader(b""), -1)


class TestVsArithmetic:
    def test_arithmetic_beats_huffman_on_skewed_source(self):
        """Below-one-bit symbols: the structural prefix-code floor."""
        from repro.coding.arithmetic import ArithmeticDecoder, ArithmeticEncoder

        table = FrequencyTable([950, 40, 9, 1])
        code = HuffmanCode(table)
        seq = [0] * 960 + [1] * 30 + [2] * 9 + [3]
        huff_bits = code.encode_sequence(seq).bit_length
        enc = ArithmeticEncoder()
        for s in seq:
            enc.encode_symbol(table, s)
        _, arith_bits = enc.finish()
        assert huff_bits >= len(seq)  # >= 1 bit/symbol, always
        assert arith_bits < 0.5 * huff_bits

    def test_huffman_near_arithmetic_on_uniform(self):
        from repro.coding.arithmetic import ArithmeticEncoder

        table = FrequencyTable.uniform(4)
        code = HuffmanCode(table)
        seq = [i % 4 for i in range(400)]
        huff_bits = code.encode_sequence(seq).bit_length
        enc = ArithmeticEncoder()
        for s in seq:
            enc.encode_symbol(table, s)
        _, arith_bits = enc.finish()
        assert abs(huff_bits - arith_bits) < 8  # both at ~2 bits/symbol


@settings(max_examples=40, deadline=None)
@given(
    freqs=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
    data=st.data(),
)
def test_property_roundtrip(freqs, data):
    code = HuffmanCode(FrequencyTable(freqs))
    seq = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(freqs) - 1), max_size=80)
    )
    w = code.encode_sequence(seq)
    out = code.decode_sequence(BitReader(w.getvalue(), w.bit_length), len(seq))
    assert out == seq
