"""Tests for the direct path-measurement baseline."""

import pytest

from repro.coding.baseline_codes import EliasGammaCode, GolombRiceCode
from repro.core.config import DophyConfig
from repro.core.dophy import DophySystem
from repro.net.link import uniform_loss_assigner
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.tomography.path_measurement import PathMeasurement


def run(observers, seed=41, duration=200.0, assigner=None):
    sim = CollectionSimulation(
        line_topology(5),
        seed=seed,
        config=SimulationConfig(
            duration=duration,
            traffic_period=4.0,
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        link_assigner=assigner or uniform_loss_assigner(0.05, 0.3),
        observers=list(observers),
    )
    return sim.run()


class TestPathMeasurement:
    def test_estimates_match_truth(self):
        pm = PathMeasurement()
        result = run([pm])
        report = pm.report()
        truth = result.ground_truth.true_loss_map(kind="empirical")
        for link, est in report.estimates.items():
            if est.n_samples >= 100:
                assert abs(est.loss - truth[link]) < 0.08

    def test_default_code_is_fixed_width(self):
        pm = PathMeasurement()
        run([pm])
        assert pm.count_code.name.startswith("fixed")
        # 31 possible attempts -> 5-bit field
        assert pm.count_code.width == 5

    def test_custom_code(self):
        pm = PathMeasurement(count_code=EliasGammaCode())
        run([pm])
        assert pm.report().code_name == "elias_gamma"

    def test_overhead_accounting_positive(self):
        pm = PathMeasurement()
        run([pm])
        report = pm.report()
        assert report.total_annotation_bits > 0
        assert report.mean_bits_per_hop > pm.count_code.width  # + path ids

    def test_gamma_cheaper_than_fixed_on_good_links(self):
        fixed = PathMeasurement()
        gamma = PathMeasurement(count_code=EliasGammaCode())
        run([fixed, gamma], assigner=uniform_loss_assigner(0.0, 0.08))
        assert (
            gamma.report().mean_bits_per_hop < fixed.report().mean_bits_per_hop
        )

    def test_invalid_path_encoding(self):
        with pytest.raises(ValueError):
            PathMeasurement(path_encoding="magic")

    def test_report_before_attach(self):
        with pytest.raises(RuntimeError):
            PathMeasurement().report()


class TestDophyVsPathMeasurement:
    """The paper's overhead headline: same evidence, far fewer bits."""

    def test_same_evidence_same_estimates(self):
        dophy = DophySystem(DophyConfig())
        pm = PathMeasurement()
        run([dophy, pm])
        d_est = dophy.report().estimates
        p_est = pm.report().estimates
        assert set(d_est) == set(p_est)
        for link in d_est:
            assert d_est[link].loss == pytest.approx(p_est[link].loss, abs=1e-9)
            assert d_est[link].n_samples == p_est[link].n_samples

    def test_dophy_uses_fewer_bits(self):
        dophy = DophySystem(DophyConfig(model_update_period=None))
        pm = PathMeasurement()
        run([dophy, pm], assigner=uniform_loss_assigner(0.02, 0.15))
        d_bits = dophy.report().mean_bits_per_hop
        p_bits = pm.report().mean_bits_per_hop
        assert d_bits < p_bits

    def test_dophy_beats_rice_too(self):
        dophy = DophySystem(DophyConfig(model_update_period=None,
                                        initial_expected_loss=0.1))
        rice = PathMeasurement(count_code=GolombRiceCode(0))
        run([dophy, rice], assigner=uniform_loss_assigner(0.02, 0.15))
        assert (
            dophy.report().mean_bits_per_hop < rice.report().mean_bits_per_hop
        )
