"""Tests for Boolean (bad-link identification) tomography."""

import pytest

from repro.analysis.detection import detection_metrics
from repro.net.link import BernoulliLink, Channel
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology, topology_from_edges
from repro.tomography.boolean import BooleanTomography
from repro.utils.rng import RngRegistry


def run_network(models, topo, observers, seed=51, duration=400.0, max_retries=1):
    channel = Channel(topo, models, RngRegistry(seed))
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=SimulationConfig(
            duration=duration,
            traffic_period=2.0,
            mac=MacConfig(max_retries=max_retries),
            routing=RoutingConfig(etx_noise_std=0.0),
        ),
        channel=channel,
        observers=list(observers),
    )
    return sim.run()


def symmetric_models(topo, losses):
    models = {}
    for (u, v), loss in losses.items():
        models[(u, v)] = BernoulliLink(loss)
        models[(v, u)] = BernoulliLink(loss)
    return models


class TestDiagnosis:
    def test_identifies_the_one_bad_link(self):
        # Chain 0-1-2-3: link 2-3 is terrible, rest excellent.
        topo = line_topology(4)
        models = symmetric_models(
            topo, {(0, 1): 0.02, (1, 2): 0.02, (2, 3): 0.7}
        )
        boolean = BooleanTomography(good_path_delivery=0.8)
        run_network(models, topo, [boolean])
        diagnosis = boolean.diagnose()
        assert (3, 2) in diagnosis.flagged
        assert (1, 0) in diagnosis.exonerated
        assert (2, 1) in diagnosis.exonerated
        assert diagnosis.good_paths >= 2
        assert diagnosis.bad_paths >= 1

    def test_all_good_network_flags_nothing(self):
        topo = line_topology(4)
        models = symmetric_models(
            topo, {(0, 1): 0.02, (1, 2): 0.02, (2, 3): 0.02}
        )
        boolean = BooleanTomography(good_path_delivery=0.8)
        run_network(models, topo, [boolean], max_retries=3)
        diagnosis = boolean.diagnose()
        assert diagnosis.flagged == set()
        assert diagnosis.bad_paths == 0

    def test_shared_bad_link_blames_common_segment(self):
        # Y topology: 0-1, 1-2, 1-3. Link 0-1 bad: both origins 2,3 suffer.
        topo = topology_from_edges([(0, 1), (1, 2), (1, 3)])
        models = symmetric_models(
            topo, {(0, 1): 0.7, (1, 2): 0.02, (1, 3): 0.02}
        )
        boolean = BooleanTomography(good_path_delivery=0.8)
        run_network(models, topo, [boolean])
        diagnosis = boolean.diagnose()
        # Greedy cover picks the shared culprit, not the two leaf links.
        assert (1, 0) in diagnosis.flagged
        assert (2, 1) not in diagnosis.flagged
        assert (3, 1) not in diagnosis.flagged

    def test_detection_metrics_integration(self):
        topo = line_topology(5)
        losses = {(0, 1): 0.02, (1, 2): 0.6, (2, 3): 0.02, (3, 4): 0.02}
        models = symmetric_models(topo, losses)
        boolean = BooleanTomography(good_path_delivery=0.8)
        result = run_network(models, topo, [boolean])
        truth = result.ground_truth.true_loss_map(kind="empirical")
        diagnosis = boolean.diagnose()
        report = detection_metrics(
            diagnosis.flagged, truth, loss_threshold=0.3
        )
        assert report.recall == 1.0  # the bad link is found
        assert report.precision >= 0.5

    def test_solve_maps_to_coarse_ratios(self):
        topo = line_topology(4)
        models = symmetric_models(topo, {(0, 1): 0.02, (1, 2): 0.02, (2, 3): 0.7})
        boolean = BooleanTomography(good_path_delivery=0.8)
        run_network(models, topo, [boolean])
        tomo = boolean.solve()
        assert tomo.method == "boolean_scfs"
        assert set(tomo.losses.values()) <= {0.0, 1.0}

    def test_validation(self):
        with pytest.raises(ValueError):
            BooleanTomography(good_path_delivery=1.5)
        with pytest.raises(ValueError):
            BooleanTomography(min_packets_per_origin=0)

    def test_min_packets_gate(self):
        topo = line_topology(3)
        models = symmetric_models(topo, {(0, 1): 0.02, (1, 2): 0.7})
        boolean = BooleanTomography(min_packets_per_origin=10**6)
        run_network(models, topo, [boolean], duration=100.0)
        diagnosis = boolean.diagnose()
        assert diagnosis.flagged == set()
        assert diagnosis.good_paths == 0 and diagnosis.bad_paths == 0
