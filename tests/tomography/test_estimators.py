"""Tests for the classical tomography estimators (static and dynamic regimes)."""

import pytest

from repro.net.link import uniform_loss_assigner
from repro.net.mac import MacConfig
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import grid_topology, line_topology, random_geometric_topology
from repro.tomography.em import EMTomography
from repro.tomography.linear import LinearTomography
from repro.tomography.mle_tree import TreeRatioTomography
from repro.tomography.base import PathSnapshotPolicy


def run_with(observers, topo, seed, *, duration=400.0, noise=0.0, max_retries=2,
             loss_lo=0.2, loss_hi=0.5, traffic_period=2.0):
    """Static-ish run with a tight retry cap so end-to-end losses are plentiful."""
    sim = CollectionSimulation(
        topo,
        seed=seed,
        config=SimulationConfig(
            duration=duration,
            traffic_period=traffic_period,
            mac=MacConfig(max_retries=max_retries),
            routing=RoutingConfig(etx_noise_std=noise, parent_switch_threshold=0.3),
        ),
        link_assigner=uniform_loss_assigner(loss_lo, loss_hi),
        observers=list(observers),
    )
    return sim.run()


def errors_vs_truth(result, losses, min_support=None, support=None):
    truth = result.ground_truth.true_loss_map(kind="empirical")
    errs = []
    for link, est in losses.items():
        if link not in truth:
            continue
        if min_support and support and support.get(link, 0) < min_support:
            continue
        errs.append(abs(est - truth[link]))
    return errs


ESTIMATORS = [TreeRatioTomography, LinearTomography, EMTomography]


@pytest.mark.parametrize("cls", ESTIMATORS, ids=lambda c: c.__name__)
class TestStaticAccuracy:
    def test_recovers_losses_on_static_line(self, cls):
        obs = cls()
        result = run_with([obs], line_topology(4), seed=31)
        tomo = obs.solve()
        errs = errors_vs_truth(result, tomo.losses)
        assert errs, "no overlapping links estimated"
        assert sum(errs) / len(errs) < 0.12

    def test_result_has_method_name(self, cls):
        obs = cls()
        run_with([obs], line_topology(3), seed=32, duration=100.0)
        tomo = obs.solve()
        assert tomo.method
        assert all(0.0 <= v <= 1.0 for v in tomo.losses.values())


class TestTreeRatio:
    def test_estimates_every_tree_link(self):
        obs = TreeRatioTomography()
        result = run_with([obs], line_topology(5), seed=33)
        tomo = obs.solve()
        assert set(tomo.losses) == {(1, 0), (2, 1), (3, 2), (4, 3)}

    def test_support_counts_origin_packets(self):
        obs = TreeRatioTomography()
        result = run_with([obs], line_topology(3), seed=34, duration=100.0)
        tomo = obs.solve()
        assert all(n > 0 for n in tomo.support.values())


class TestLinear:
    def test_no_data_graceful(self):
        obs = LinearTomography()
        tomo = obs.solve()
        assert tomo.losses == {} and not tomo.converged

    def test_min_packets_threshold_validated(self):
        with pytest.raises(ValueError):
            LinearTomography(min_packets_per_equation=0)

    def test_windowed_snapshots_used(self):
        obs = LinearTomography(PathSnapshotPolicy(period=60.0))
        result = run_with([obs], grid_topology(3, 3), seed=35, duration=300.0)
        tomo = obs.solve()
        assert tomo.losses
        errs = errors_vs_truth(result, tomo.losses)
        assert sum(errs) / len(errs) < 0.2


class TestEM:
    def test_no_data_graceful(self):
        obs = EMTomography()
        tomo = obs.solve()
        assert tomo.losses == {} and not tomo.converged

    def test_converges_flag(self):
        obs = EMTomography(max_iterations=200)
        run_with([obs], line_topology(3), seed=36, duration=100.0)
        tomo = obs.solve()
        assert tomo.converged

    def test_validation(self):
        with pytest.raises(ValueError):
            EMTomography(max_iterations=0)
        with pytest.raises(ValueError):
            EMTomography(tolerance=0.0)

    def test_em_beats_or_matches_ratio_on_static_grid(self):
        """EM uses per-packet info; ratio only aggregates — EM should not be
        substantially worse on a static multi-path topology."""
        em, ratio = EMTomography(), TreeRatioTomography()
        result = run_with(
            [em, ratio], grid_topology(3, 3, diagonal=True), seed=37, duration=500.0
        )
        em_errs = errors_vs_truth(result, em.solve().losses)
        ratio_errs = errors_vs_truth(result, ratio.solve().losses)
        assert sum(em_errs) / len(em_errs) <= sum(ratio_errs) / len(ratio_errs) + 0.05


class TestDynamicsDegradeClassicalApproaches:
    """The paper's central claim, seen from the baseline side."""

    def run_both_regimes(self, cls, seed):
        def mean_error(noise):
            obs = cls()
            topo = random_geometric_topology(25, seed=seed)
            result = run_with(
                [obs], topo, seed=seed, noise=noise, duration=400.0,
                loss_lo=0.1, loss_hi=0.4,
            )
            errs = errors_vs_truth(result, obs.solve().losses)
            return sum(errs) / len(errs) if errs else float("inf")

        return mean_error(0.0), mean_error(1.0)

    @pytest.mark.parametrize("cls", ESTIMATORS, ids=lambda c: c.__name__)
    def test_error_grows_with_churn(self, cls):
        static_err, dynamic_err = self.run_both_regimes(cls, seed=38)
        assert dynamic_err > static_err
