"""Tests for the shared end-to-end observation machinery."""

import pytest

from repro.net.link import uniform_loss_assigner
from repro.net.packet import Packet
from repro.net.routing import RoutingConfig
from repro.net.simulation import CollectionSimulation, SimulationConfig
from repro.net.topology import line_topology
from repro.tomography.base import (
    EndToEndObserver,
    PathSnapshotPolicy,
    hop_success_to_frame_loss,
)


class TestHopSuccessConversion:
    def test_perfect_hop(self):
        assert hop_success_to_frame_loss(1.0, 31) == 0.0

    def test_dead_hop(self):
        assert hop_success_to_frame_loss(0.0, 31) == 1.0

    def test_inverts_arq(self):
        # frame loss p -> hop success 1 - p^A -> back to p
        p, A = 0.4, 5
        s = 1 - p**A
        assert hop_success_to_frame_loss(s, A) == pytest.approx(p)

    def test_single_attempt_identity(self):
        assert hop_success_to_frame_loss(0.7, 1) == pytest.approx(0.3)

    def test_clamps_out_of_range(self):
        assert hop_success_to_frame_loss(1.2, 3) == 0.0
        assert hop_success_to_frame_loss(-0.5, 3) == 1.0

    def test_invalid_attempts(self):
        with pytest.raises(ValueError):
            hop_success_to_frame_loss(0.5, 0)


class TestSnapshotPolicy:
    def test_default_is_single_snapshot(self):
        assert PathSnapshotPolicy().period is None

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            PathSnapshotPolicy(period=0.0)


class TestEndToEndObserver:
    def run_observer(self, policy=None, duration=60.0):
        obs = EndToEndObserver(policy)
        sim = CollectionSimulation(
            line_topology(4),
            seed=1,
            config=SimulationConfig(
                duration=duration,
                traffic_period=5.0,
                routing=RoutingConfig(etx_noise_std=0.0),
            ),
            link_assigner=uniform_loss_assigner(0.05, 0.2),
            observers=[obs],
        )
        result = sim.run()
        return obs, result

    def test_collects_delivery_ratios(self):
        obs, result = self.run_observer()
        ratios = obs.delivery_ratios()
        assert set(ratios) == {1, 2, 3}
        for r in ratios.values():
            assert 0.0 <= r <= 1.0

    def test_packet_observations_match_ground_truth(self):
        obs, result = self.run_observer()
        delivered_count = sum(1 for _, _, d, _ in obs.packet_observations if d)
        assert delivered_count == result.ground_truth.packets_delivered

    def test_assumed_links_on_line(self):
        obs, _ = self.run_observer()
        assert obs.assumed_links(3) == ((3, 2), (2, 1), (1, 0))
        assert obs.assumed_links(1) == ((1, 0),)

    def test_single_snapshot_free(self):
        obs, _ = self.run_observer()
        assert obs.snapshots_taken == 1
        assert obs.control_overhead_bits() == 0

    def test_periodic_snapshots_cost_bits(self):
        obs, _ = self.run_observer(PathSnapshotPolicy(period=10.0), duration=60.0)
        assert obs.snapshots_taken >= 6
        assert obs.control_overhead_bits() > 0

    def test_windows_advance_with_snapshots(self):
        obs, _ = self.run_observer(PathSnapshotPolicy(period=15.0), duration=60.0)
        windows = obs.windowed_observations()
        assert len(windows) >= 3

    def test_solve_is_abstract(self):
        with pytest.raises(NotImplementedError):
            EndToEndObserver().solve()


class TestOriginStats:
    """Delivery ratios count only resolved (delivered or dropped) packets.

    Regression: ``resolved`` used to return ``generated``, so packets
    still in flight at evaluation time deflated every delivery ratio.
    """

    def _packet(self, seq):
        return Packet(origin=5, seqno=seq, created_at=0.0)

    def _observer(self):
        obs = EndToEndObserver()
        obs._assumed_paths = {5: (5, 0)}
        return obs

    def test_pending_packets_excluded_from_delivery_ratio(self):
        obs = self._observer()
        for seq in range(10):
            obs.on_packet_created(self._packet(seq), 0.0)
        for seq in range(4):
            obs.on_packet_delivered(self._packet(seq), 1.0)
        for seq in range(4, 6):
            obs.on_packet_dropped(self._packet(seq), 1.0)
        stats = obs._stats[5]
        assert stats.generated == 10
        assert stats.resolved == 6  # 4 delivered + 2 dropped; 4 in flight
        assert obs.delivery_ratios()[5] == pytest.approx(4 / 6)

    def test_all_pending_yields_no_ratio(self):
        obs = self._observer()
        obs.on_packet_created(self._packet(0), 0.0)
        assert obs.delivery_ratios() == {}
